"""The paper's running example: annotated parallel mergesort.

Section 2.3's code fragment splits a list into halves sorted by child
threads; the `at_share(child, parent, 1.0)` annotations tell the runtime
that each child's state is fully contained in the parent's, so when the
parent resumes after its joins, the locality scheduler dispatches it on
the processor whose cache the children just filled.

This example sorts 100,000 real integers (Table 4's configuration) under
each policy, on one cpu and on the 8-cpu E5000, verifies the array is
actually sorted, and reports misses/cycles.

Run:  python examples/mergesort_locality.py
"""

from repro import E5000_8CPU, FCFSScheduler, Machine, Runtime, ULTRA1, make_crt, make_lff
from repro.sim.report import format_table
from repro.workloads import MergeParams, MergeWorkload


def run(config, scheduler, annotate=True):
    machine = Machine(config)
    runtime = Runtime(machine, scheduler)
    workload = MergeWorkload(MergeParams(), annotate=annotate)
    workload.build(runtime)
    runtime.run()
    assert workload.verify_sorted(), "the sort must actually sort"
    return machine, runtime


def main():
    rows = []
    for config in (ULTRA1, E5000_8CPU):
        base_cycles = base_misses = None
        for factory in (FCFSScheduler, make_lff, make_crt):
            scheduler = factory()
            machine, runtime = run(config, scheduler)
            misses, cycles = machine.total_l2_misses(), machine.time()
            if base_cycles is None:
                base_misses, base_cycles = misses, cycles
            rows.append(
                (
                    config.name,
                    scheduler.name,
                    misses,
                    f"{100 * (1 - misses / base_misses):.0f}%",
                    f"{base_cycles / cycles:.2f}x",
                    runtime.context_switches,
                )
            )
        # the ablation: locality scheduling without the annotations
        machine, runtime = run(config, make_lff(), annotate=False)
        rows.append(
            (
                config.name,
                "lff (no annotations)",
                machine.total_l2_misses(),
                f"{100 * (1 - machine.total_l2_misses() / base_misses):.0f}%",
                f"{base_cycles / machine.time():.2f}x",
                runtime.context_switches,
            )
        )
    print(
        format_table(
            ["machine", "policy", "E-misses", "eliminated", "speedup", "switches"],
            rows,
            title="Annotated mergesort, 100k elements "
            "(paper section 2.3 / Table 4)",
        )
    )


if __name__ == "__main__":
    main()
