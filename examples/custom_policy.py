"""Writing a custom scheduling policy against the public interface.

The paper's Active Threads has a "scheduling event mechanism ... designed
to support a variety of specialized scheduling polices" [33]; this
repository's equivalent is :class:`repro.sched.base.Scheduler`.  This
example implements a *miss-budget* policy from scratch -- threads that
missed heavily in their last interval are rescheduled sooner, a naive
inversion of LFF that needs only the counter value -- and races it
against the built-ins on the tasks benchmark.

The point is the plumbing: a policy receives exactly what real hardware
and the runtime provide (per-interval miss counts, readiness events) and
returns dispatch decisions plus its own instruction costs.

Run:  python examples/custom_policy.py
"""

import heapq
from typing import Optional, Tuple

from repro import FCFSScheduler, Machine, Runtime, ULTRA1, make_crt, make_lff
from repro.sched.base import Scheduler
from repro.sim.report import format_table
from repro.threads.thread import ActiveThread, ThreadState
from repro.workloads import TasksParams, TasksWorkload


class MissBudgetScheduler(Scheduler):
    """Dispatch the runnable thread with the most misses last interval.

    A deliberately simple policy: no sharing graph, no footprint algebra,
    just the raw counter reading per thread.  It chases reload transients
    instead of avoiding them -- useful as a foil for LFF/CRT, and as a
    minimal template for new policies.
    """

    name = "miss-budget"

    def __init__(self) -> None:
        self._last_misses = {}
        self._heap = []
        self._counter = 0
        self._ready = 0

    def attach(self, runtime) -> None:
        self.runtime = runtime

    def thread_ready(self, thread: ActiveThread) -> int:
        self._counter += 1
        score = self._last_misses.get(thread.tid, 0)
        heapq.heappush(
            self._heap, (-score, self._counter, thread, thread.ready_seq)
        )
        self._ready += 1
        return 5

    def thread_blocked(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> int:
        if finished:
            self._last_misses.pop(thread.tid, None)
        else:
            self._last_misses[thread.tid] = misses
        return 2

    def pick(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        while self._heap:
            _score, _c, thread, seq = heapq.heappop(self._heap)
            cost += 8
            if thread.state is ThreadState.READY and thread.ready_seq == seq:
                self._ready -= 1
                return thread, cost
        return None, cost

    def has_runnable(self) -> bool:
        return self._ready > 0


def run(scheduler):
    machine = Machine(ULTRA1)
    runtime = Runtime(machine, scheduler)
    workload = TasksWorkload(TasksParams())
    workload.build(runtime)
    runtime.run()
    return machine


def main():
    rows = []
    base = None
    for scheduler in (
        FCFSScheduler(),
        MissBudgetScheduler(),
        make_lff(),
        make_crt(),
    ):
        machine = run(scheduler)
        misses, cycles = machine.total_l2_misses(), machine.time()
        if base is None:
            base = (misses, cycles)
        rows.append(
            (
                scheduler.name,
                misses,
                f"{100 * (1 - misses / base[0]):.0f}%",
                f"{base[1] / cycles:.2f}x",
            )
        )
    print(
        format_table(
            ["policy", "E-misses", "eliminated", "speedup"],
            rows,
            title="A custom policy vs the built-ins (tasks, 1 cpu)",
        )
    )
    print(
        "\nChasing misses re-runs the threads that just paid their reload"
        "\ntransient -- by accident, a weak form of affinity; the model-"
        "\ndriven policies remain far ahead."
    )


if __name__ == "__main__":
    main()
