"""Explore the shared-state cache model directly (paper section 2.4).

Prints the three cases' trajectories, cross-checks the closed form
against the Appendix's Markov chain, and traces a real application's
observed footprint against the prediction -- everything the model offers,
without a scheduler in sight.

Run:  python examples/footprint_model.py
"""

import numpy as np

from repro import SharedStateModel
from repro.core.markov import expected_footprint_markov, stationary_distribution
from repro.sim import run_monitored
from repro.sim.report import format_series, format_table
from repro.workloads import BarnesLike


def model_cases():
    model = SharedStateModel(8192)
    misses = np.asarray([0, 1000, 4000, 16000, 64000])
    rows = []
    for label, values in (
        ("case 1: running, S0=0", model.expected_running(0, misses)),
        ("case 2: independent, S0=4000", model.expected_independent(4000, misses)),
        ("case 3: dependent, q=.5, S0=1000",
         model.expected_dependent(1000, 0.5, misses)),
        ("case 3: dependent, q=.5, S0=7000",
         model.expected_dependent(7000, 0.5, misses)),
    ):
        rows.append([label] + [f"{v:.0f}" for v in np.asarray(values)])
    print(
        format_table(
            ["case"] + [f"n={n}" for n in misses],
            rows,
            title="Expected footprints [lines], N = 8192",
        )
    )


def markov_check():
    n_cache, q, s0 = 64, 0.4, 10
    model = SharedStateModel(n_cache)
    print("\nClosed form vs Markov chain (N=64, q=0.4, S0=10):")
    for n in (0, 10, 50, 200):
        closed = model.expected_dependent(s0, q, n)
        exact = expected_footprint_markov(n_cache, q, s0, n)
        print(f"  n={n:4d}: closed={closed:8.4f}  markov={exact:8.4f}  "
              f"diff={abs(closed - exact):.2e}")
    pi = stationary_distribution(n_cache, q)
    mean = float(pi @ np.arange(n_cache + 1))
    print(f"  stationary mean = {mean:.4f} (asymptote qN = {q * n_cache:.1f})")


def real_application_trace():
    print("\nBarnes-Hut work thread: observed vs predicted footprint")
    result = run_monitored(BarnesLike())
    print("  observed :", format_series(result.misses, result.observed, 8))
    print("  predicted:", format_series(result.misses, result.predicted, 8))
    print(f"  final predicted/observed ratio: {result.final_ratio:.2f} "
          "(the paper's mild C-app overestimation)")


def main():
    model_cases()
    markov_check()
    real_application_trace()


if __name__ == "__main__":
    main()
