"""Quickstart: schedule fine-grained threads for cache locality.

Creates a simulated UltraSPARC-1, runs a set of wake/touch/block threads
whose combined state exceeds the E-cache, and compares the baseline FCFS
scheduler against the paper's two locality policies (LFF and CRT).

Run:  python examples/quickstart.py
"""

from repro import FCFSScheduler, Machine, Runtime, ULTRA1, make_crt, make_lff
from repro.sim.report import format_table
from repro.threads import Compute, Sleep, Touch

NUM_THREADS = 64
FOOTPRINT_LINES = 200  # per thread; 64 * 200 >> the 8192-line E-cache
PERIODS = 10


def run(scheduler):
    machine = Machine(ULTRA1)
    runtime = Runtime(machine, scheduler)

    for i in range(NUM_THREADS):
        state = runtime.alloc_lines(f"state-{i}", FOOTPRINT_LINES)

        def body(state=state):
            for _ in range(PERIODS):
                yield Touch(state.lines())  # work on this thread's state
                yield Compute(2_000)  # ... and some arithmetic
                yield Sleep(20_000)  # block, as fine-grained threads do

        runtime.at_create(body, name=f"worker-{i}")

    runtime.run()
    return machine


def main():
    rows = []
    baseline = None
    for scheduler in (FCFSScheduler(), make_lff(), make_crt()):
        machine = run(scheduler)
        misses = machine.total_l2_misses()
        cycles = machine.time()
        if baseline is None:
            baseline = (misses, cycles)
        rows.append(
            (
                scheduler.name,
                misses,
                f"{100 * (1 - misses / baseline[0]):.0f}%",
                f"{baseline[1] / cycles:.2f}x",
            )
        )
    print(
        format_table(
            ["policy", "E-cache misses", "eliminated", "speedup vs FCFS"],
            rows,
            title="Locality scheduling on a simulated Ultra-1",
        )
    )


if __name__ == "__main__":
    main()
