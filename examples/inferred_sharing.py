"""Scheduling unmodified threads: sharing inferred at runtime.

The paper's section 7 asks whether sharing could be identified "entirely
at runtime to handle, for instance, the existing unmodified POSIX and
Java Threads application bases", sketching a CML-style hardware device.
This example runs producer/consumer pairs -- a pattern whose write
invalidations blind the counters-only model -- in four configurations and
shows the inference recovering much of the user-annotation benefit with
zero programmer involvement.

Run:  python examples/inferred_sharing.py
"""

from repro.experiments.inference_exp import (
    format_inference_comparison,
    run_inference_comparison,
)


def main():
    results = run_inference_comparison()
    print(format_inference_comparison(results))
    print(
        "\nThe inferred edges are ordinary at_share() coefficients written"
        "\ninto the same dependency graph user annotations populate; the"
        "\nLFF/CRT machinery is unchanged."
    )


if __name__ == "__main__":
    main()
