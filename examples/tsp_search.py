"""Branch-and-bound TSP under locality scheduling.

Each subspace of the solution space is explored by its own thread with a
freshly heap-allocated adjacency matrix (compulsory misses no scheduler
can avoid -- why the paper's 1-cpu elimination is only ~12%).  Threads
contend on the allocator lock and the shared incumbent, and the parent ->
child annotations record the matrix each child reads at start-up.

On the 8-cpu E5000, most of the locality win is counter-driven: after a
thread blocks on a lock, the footprint model brings it back to the
processor that still caches its matrices.

Run:  python examples/tsp_search.py
"""

from repro import E5000_8CPU, FCFSScheduler, Machine, Runtime, ULTRA1, make_crt, make_lff
from repro.sim.report import format_table
from repro.workloads import TspParams, TspWorkload


def run(config, scheduler):
    machine = Machine(config)
    runtime = Runtime(machine, scheduler)
    workload = TspWorkload(TspParams())
    workload.build(runtime)
    runtime.run()
    assert workload.best_tour is not None
    assert sorted(workload.best_tour) == list(range(workload.params.num_cities))
    return machine, workload


def main():
    rows = []
    for config in (ULTRA1, E5000_8CPU):
        base = None
        for factory in (FCFSScheduler, make_lff, make_crt):
            scheduler = factory()
            machine, workload = run(config, scheduler)
            misses, cycles = machine.total_l2_misses(), machine.time()
            if base is None:
                base = (misses, cycles)
            rows.append(
                (
                    config.name,
                    scheduler.name,
                    workload.threads_created,
                    f"{workload.best_cost:.0f}",
                    misses,
                    f"{100 * (1 - misses / base[0]):.0f}%",
                    f"{base[1] / cycles:.2f}x",
                )
            )
    print(
        format_table(
            [
                "machine",
                "policy",
                "threads",
                "best tour",
                "E-misses",
                "eliminated",
                "speedup",
            ],
            rows,
            title="Branch-and-bound TSP (every policy searches identical work)",
        )
    )
    costs = {row[3] for row in rows}
    assert len(costs) == 1, "equal work: every policy finds the same tour"
    print(
        "\nNote: the best tour is identical across policies -- pruning uses"
        "\na static bound, so every schedule explores the same tree."
    )


if __name__ == "__main__":
    main()
