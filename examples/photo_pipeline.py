"""The photo workload: neighbour-row sharing, and when FCFS wins.

One thread retouches each pixmap row, reading a window of neighbour rows
published through per-row semaphores.  Annotations encode window overlap:
"the closer the corresponding row numbers, the more prefetched state is
reused" (paper section 5).

Two findings are reproduced here:

1. with threads created in *row order* on one cpu, plain FCFS is already
   near-optimal and the locality policies' heavier machinery makes them
   marginally slower (the paper's photo anomaly: -1% misses, 0.97x);
2. with threads created in *tiled order* on the 8-cpu E5000, neighbour
   rows remain queued when a row finishes, and the annotation-driven
   scheduler clusters row bands per processor for a large win.

Run:  python examples/photo_pipeline.py
"""

import numpy as np

from repro import E5000_8CPU, FCFSScheduler, Machine, Runtime, ULTRA1, make_lff
from repro.sim.report import format_table
from repro.workloads import PhotoParams, PhotoWorkload


def run(config, scheduler, creation_order):
    machine = Machine(config)
    runtime = Runtime(machine, scheduler)
    workload = PhotoWorkload(PhotoParams(), creation_order=creation_order)
    workload.build(runtime)
    runtime.run()
    # the filter really ran: output equals the window mean
    row = workload.params.height // 2
    halo = workload.params.halo
    window = workload.image[row - halo : row + halo + 1].astype(np.uint16)
    expected = (window.sum(axis=0) // window.shape[0]).astype(np.uint8)
    assert np.array_equal(workload.output[row], expected)
    return machine


def main():
    rows = []
    for config, order in (
        (ULTRA1, "row"),
        (E5000_8CPU, "row"),
        (E5000_8CPU, "tiled"),
    ):
        base = None
        for factory in (FCFSScheduler, make_lff):
            machine = run(config, factory(), order)
            misses, cycles = machine.total_l2_misses(), machine.time()
            if base is None:
                base = (misses, cycles)
            rows.append(
                (
                    config.name,
                    order,
                    factory().name,
                    misses,
                    f"{100 * (1 - misses / base[0]):.0f}%",
                    f"{base[1] / cycles:.2f}x",
                )
            )
    print(
        format_table(
            ["machine", "creation", "policy", "E-misses", "eliminated", "speedup"],
            rows,
            title="Photo: softening filter with neighbour-row sharing",
        )
    )


if __name__ == "__main__":
    main()
