"""Tests for the extension experiments (fairness, inference) and the
wait-time accounting they rely on."""

import pytest

from repro.experiments.fairness import format_fairness_sweep, run_fairness_sweep
from repro.experiments.inference_exp import (
    build_producer_consumer,
    format_inference_comparison,
    run_inference_comparison,
)
from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.threads.events import Compute, Sleep
from repro.threads.runtime import Runtime
from repro.workloads import TasksParams


class TestWaitAccounting:
    def test_queued_thread_accumulates_wait(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))

        def long_runner():
            yield Compute(50_000)

        def latecomer():
            yield Compute(10)

        rt.at_create(long_runner)
        tid = rt.at_create(latecomer)
        rt.run()
        stats = rt.thread(tid).stats
        assert stats.wait_cycles >= 50_000
        assert stats.max_wait_cycles >= 50_000

    def test_sleeping_does_not_count_as_waiting(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))

        def sleeper():
            yield Sleep(100_000)
            yield Compute(10)

        tid = rt.at_create(sleeper)
        rt.run()
        # woke on an idle machine: dispatched nearly immediately
        assert rt.thread(tid).stats.max_wait_cycles < 10_000

    def test_wait_resets_between_episodes(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))

        def periodic():
            for _ in range(3):
                yield Compute(100)
                yield Sleep(1000)

        tid = rt.at_create(periodic)
        rt.run()
        stats = rt.thread(tid).stats
        assert stats.max_wait_cycles <= stats.wait_cycles


class TestFairnessSweep:
    def test_sweep_structure(self):
        results = run_fairness_sweep(
            boosts=(0, 4),
            config=SMALL,
            params=TasksParams(num_tasks=12, footprint_lines=40, periods=5),
        )
        assert set(results) == {"fcfs", "lff", "lff boost=4"}
        for stats in results.values():
            assert stats["misses"] > 0
            assert stats["max_wait"] >= 0

    def test_lff_starves_more_than_fcfs(self):
        results = run_fairness_sweep(
            boosts=(0,),
            config=SMALL,
            params=TasksParams(num_tasks=16, footprint_lines=40, periods=6),
        )
        assert results["lff"]["max_wait"] > results["fcfs"]["max_wait"]

    def test_formatting(self):
        results = run_fairness_sweep(
            boosts=(0,),
            config=SMALL,
            params=TasksParams(num_tasks=8, footprint_lines=30, periods=3),
        )
        text = format_fairness_sweep(results)
        assert "max wait" in text


class TestInferenceExperiment:
    def test_producer_consumer_builds_and_runs(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        build_producer_consumer(rt, pairs=2, buffer_lines=40, rounds=3)
        rt.run()
        assert all(not t.alive for t in rt.threads.values())

    def test_annotations_create_edges(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        build_producer_consumer(
            rt, pairs=2, buffer_lines=40, rounds=3, annotate=True
        )
        assert rt.graph.num_edges() == 4  # two per pair

    def test_comparison_smoke(self, smp_config):
        results = run_inference_comparison(config=smp_config)
        assert set(results) == {"fcfs", "lff", "lff+annotations",
                                "lff+inference"}
        text = format_inference_comparison(results)
        assert "inferred edges" in text
