"""Smoke tests for the experiment modules (full runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4c, run_fig4d
from repro.experiments.fig7 import adaptive_prediction
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table5 import PAPER_TABLE5
from repro.sim.metrics import MonitoredResult


class TestFig4:
    def test_executing_thread_accuracy(self):
        curves = run_fig4a(initial_footprints=(0,), touches=6_000)
        assert curves[0].mean_relative_error < 0.05

    def test_independent_decay_accuracy(self):
        curves = run_fig4b(initial_footprints=(4000,), touches=6_000)
        assert curves[0].mean_relative_error < 0.05
        # it actually decays
        assert curves[0].observed[-1] < curves[0].observed[0]

    def test_dependent_half_shared(self):
        curves = run_fig4c(initial_footprints=(1000,), touches=8_000)
        assert curves[0].mean_relative_error < 0.08

    def test_dependent_converges_toward_qn(self):
        curves = run_fig4d(coefficients=(0.5,), touches=30_000)
        curve = curves[0]
        asymptote = 0.5 * 8192
        # the tail should be near the asymptote
        assert abs(curve.observed[-1] - asymptote) < 0.25 * asymptote


class TestTable3:
    def test_independent_cost_is_zero(self):
        results = run_table3(num_lines=512, threads=16, rounds=10)
        for policy in ("lff", "crt"):
            assert results[policy]["independent"] == 0.0
            assert 0 < results[policy]["blocking"] < 12
            assert 0 < results[policy]["dependent"] < 12

    def test_formatting(self):
        text = format_table3(run_table3(num_lines=512, threads=8, rounds=5))
        assert "Table 3" in text
        assert "lff" in text and "crt" in text


class TestFig7Adaptive:
    def test_adaptive_prediction_freezes_after_burst(self):
        # synthetic trace: high MPI for 100 samples, then near-zero
        misses = np.concatenate(
            [np.arange(100) * 50, 5000 + np.arange(200)]
        )
        instructions = np.arange(300) * 1000
        result = MonitoredResult(
            app="synthetic",
            language="c",
            cache_lines=8192,
            misses=misses,
            observed=np.zeros(300, dtype=np.int64),
            predicted=np.zeros(300),
            instructions=instructions,
        )
        adaptive = adaptive_prediction(result, mpi_threshold=25.0, window=20)
        # once frozen, the prediction stops growing
        assert adaptive[-1] == pytest.approx(adaptive[-50])

    def test_paper_reference_numbers_present(self):
        assert PAPER_TABLE5["tasks"]["perf_1cpu"] == 2.38
        assert PAPER_TABLE5["photo"]["elim_1cpu"] == -1.0
