"""Tests for ground-truth footprint tracing."""

import numpy as np
import pytest

from repro.sim.tracer import FootprintTracer


class TestObservedFootprints:
    def test_counts_resident_state_lines(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(10))
        machine.touch(0, np.arange(10))
        assert tracer.observed(0, 1) == 10

    def test_ignores_lines_outside_state(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(10))
        machine.touch(0, np.arange(20, 40))
        assert tracer.observed(0, 1) == 0

    def test_shared_lines_count_for_all_owners(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(10))
        tracer.on_state_declared(2, np.arange(5, 15))
        machine.touch(0, np.arange(5, 10))  # in both states
        assert tracer.observed(0, 1) == 5
        assert tracer.observed(0, 2) == 5

    def test_flush_zeroes_footprints(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(10))
        machine.touch(0, np.arange(10))
        machine.flush_all()
        assert tracer.observed(0, 1) == 0

    def test_eviction_decrements(self, machine):
        tracer = FootprintTracer(machine)
        n = machine.config.l2_lines
        tracer.on_state_declared(1, np.arange(4))
        machine.touch(0, np.arange(4))
        # walk enough distinct lines to evict the state
        big = machine.address_space.allocate_lines("big", 8 * n)
        for start in range(0, 8 * n, 512):
            machine.touch(0, big.lines()[start : start + 512])
        assert tracer.observed(0, 1) < 4

    def test_per_cpu_isolation(self, smp):
        tracer = FootprintTracer(smp)
        tracer.on_state_declared(1, np.arange(10))
        smp.touch(2, np.arange(10))
        assert tracer.observed(2, 1) == 10
        assert tracer.observed(0, 1) == 0

    def test_invalidation_decrements(self, smp):
        tracer = FootprintTracer(smp)
        tracer.on_state_declared(1, np.arange(10))
        smp.touch(0, np.arange(10))
        smp.touch(1, np.arange(10))
        smp.touch(1, np.arange(10), write=True)  # invalidates cpu0 copies
        assert tracer.observed(0, 1) == 0
        assert tracer.observed(1, 1) == 10

    def test_consistency_check(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(50))
        tracer.on_state_declared(2, np.arange(25, 75))
        rng = np.random.default_rng(0)
        for _ in range(30):
            machine.touch(0, rng.integers(0, 400, size=64).astype(np.int64))
        assert tracer.check_consistency(0)

    def test_observed_all(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(5))
        machine.touch(0, np.arange(5))
        assert tracer.observed_all(0) == {1: 5}

    def test_redeclaration_is_idempotent(self, machine):
        tracer = FootprintTracer(machine)
        tracer.on_state_declared(1, np.arange(5))
        tracer.on_state_declared(1, np.arange(5))
        machine.touch(0, np.arange(5))
        assert tracer.observed(0, 1) == 5
