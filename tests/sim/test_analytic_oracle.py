"""The analytic-vs-simulated oracle sweep (the CI gate's test body).

Runs every fixture workload under both backends and asserts the
per-interval miss-count relative error stays within the pinned
per-workload bounds (``repro.sim.oracle.ORACLE_BOUNDS``).  A modelling
regression in :mod:`repro.machine.analytic` -- survival maths off,
clock drift, emission bias -- lands far outside the bounds; a change
that merely shifts an error *within* its bound is fine and expected.
"""

import json

import pytest

from repro.sim.oracle import (
    ORACLE_BOUNDS,
    ORACLE_WORKLOADS,
    cross_check,
    format_oracle,
    run_oracle,
)


@pytest.fixture(scope="module")
def sweep():
    """One sweep shared by the assertions (each run is ~seconds)."""
    return run_oracle()


class TestOracleSweep:
    def test_every_fixture_has_a_pinned_bound(self):
        assert set(ORACLE_BOUNDS) == set(ORACLE_WORKLOADS)

    def test_all_workloads_within_pinned_bounds(self, sweep):
        failures = [
            f"{name}: relerr {r['interval_relerr']:.3f} > bound {r['bound']}"
            for name, r in sweep.items()
            if r["interval_relerr"] > r["bound"]
        ]
        assert not failures, "\n" + format_oracle(sweep) + "\n" + "\n".join(
            failures
        )

    def test_ground_truth_is_backend_invariant(self, sweep):
        # the backend prices misses; it must never change what the
        # programs did (refs, instructions, final thread states)
        assert all(r["signature_equal"] for r in sweep.values())

    def test_interval_tapes_align_on_one_cpu_fcfs(self, sweep):
        # 1-cpu bare FCFS dispatch order is miss-independent, so the
        # interval sequences should align and the comparison should be
        # the fine-grained per-interval one, not the per-thread fallback
        assert all(r["intervals_aligned"] for r in sweep.values())

    def test_errors_are_not_vacuously_zero(self, sweep):
        # the sweep must actually exercise the approximation: if every
        # error were 0.0 the fixtures would be too trivial to gate on
        assert any(r["interval_relerr"] > 0.01 for r in sweep.values())

    def test_tasks_is_near_exact(self, sweep):
        # disjoint footprints reused at miss-distance ~0: the closed
        # form's exact regime, pinned tightly so drift is loud
        assert sweep["tasks"]["interval_relerr"] <= 0.05


class TestOracleReport:
    def test_report_written_and_loadable(self, tmp_path):
        path = tmp_path / "reports" / "analytic_oracle.json"
        results = run_oracle(
            workloads={"tasks": ORACLE_WORKLOADS["tasks"]},
            report_path=str(path),
        )
        report = json.loads(path.read_text())
        assert report["bounds"] == ORACLE_BOUNDS
        assert report["results"]["tasks"]["ok"] == results["tasks"]["ok"]
        assert report["config"]["num_cpus"] == 1

    def test_cross_check_unpinned_workload_has_no_bound(self):
        result = cross_check("tasks-alias", ORACLE_WORKLOADS["tasks"])
        assert result["bound"] is None
        assert result["ok"]  # unpinned: only the signature gates

    def test_format_is_one_row_per_workload(self):
        results = run_oracle(
            workloads={"tasks": ORACLE_WORKLOADS["tasks"]},
        )
        text = format_oracle(results)
        assert "tasks" in text
        assert len(text.splitlines()) == 3  # title + header + one row
