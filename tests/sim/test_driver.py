"""Tests for the experiment drivers."""

import numpy as np
import pytest

from repro.machine.configs import SMALL, ULTRA1
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_lff
from repro.sim.driver import run_monitored, run_performance
from repro.workloads import MergeMonitored, TasksParams, TasksWorkload


class TestRunPerformance:
    def test_returns_complete_result(self):
        result = run_performance(
            TasksWorkload(TasksParams(num_tasks=8, periods=3)),
            SMALL,
            FCFSScheduler(model_scheduler_memory=False),
        )
        assert result.workload == "tasks"
        assert result.scheduler == "fcfs"
        assert result.l2_misses > 0
        assert result.cycles > 0
        assert result.context_switches > 0

    def test_steals_captured_for_locality(self):
        result = run_performance(
            TasksWorkload(TasksParams(num_tasks=8, periods=3)),
            SMALL,
            make_lff(model_scheduler_memory=False),
        )
        assert result.steals >= 0

    def test_same_seed_is_deterministic(self):
        results = [
            run_performance(
                TasksWorkload(TasksParams(num_tasks=8, periods=3)),
                SMALL,
                FCFSScheduler(model_scheduler_memory=False),
                seed=3,
            ).l2_misses
            for _ in range(2)
        ]
        assert results[0] == results[1]


class TestRunMonitored:
    def test_trace_structure(self):
        result = run_monitored(MergeMonitored(num_elements=4000), config=ULTRA1)
        assert result.misses.size == result.observed.size
        assert result.misses.size == result.predicted.size
        assert result.misses.size == result.instructions.size

    def test_prediction_is_case1_from_zero(self):
        """The work thread's state is flushed, so the prediction starts at
        S0 = 0: E = N (1 - k^n)."""
        result = run_monitored(MergeMonitored(num_elements=4000), config=ULTRA1)
        n_cache = result.cache_lines
        k = (n_cache - 1) / n_cache
        expected = n_cache * (1 - k ** result.misses[-1].astype(float))
        assert result.predicted[-1] == pytest.approx(expected, rel=1e-9)

    def test_misses_counted_from_work_phase_start(self):
        result = run_monitored(MergeMonitored(num_elements=4000), config=ULTRA1)
        # first sample reflects only the first touch batch, not the init
        assert result.misses[0] < result.misses[-1]
        assert result.misses[0] >= 0
