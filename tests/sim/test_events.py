"""The event queue and the event-driven engine (``repro.sim.events``).

Covers the queue's deterministic ``(time, seq, tid)`` ordering (including
a hypothesis proof that pop order is independent of heap insertion
order), the semantics of each :class:`EventKind`, and the audited
step-count complexity claims: the event engine's faithful loop
iterations are O(executed events), where the stepped loop pays O(cpus)
idle iterations per busy step.  Bit-parity between the engines is pinned
separately, cell by cell, in ``test_engine_parity.py``.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched import SCHEDULERS
from repro.sched.fcfs import FCFSScheduler
from repro.sim.events import Event, EventKind, EventQueue
from repro.threads.errors import StepBudgetExceeded
from repro.threads.events import Compute, Sleep
from repro.threads.runtime import Runtime
from repro.workloads.server import ServerParams, ServerWorkload


# -- the queue ----------------------------------------------------------------


#: (time, tid) pairs; times collide often so tie-breaking is exercised
_EVENT_SPECS = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 7)), max_size=40
)


class TestEventQueue:
    @given(specs=_EVENT_SPECS)
    def test_pop_order_is_the_key_order(self, specs):
        """Pops come back sorted by (time, seq, tid), nothing dropped."""
        queue = EventQueue()
        keys = []
        for time, tid in specs:
            event = queue.schedule(time, EventKind.THREAD_WAKEUP, tid)
            keys.append(event.sort_key())
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.sort_key())
        assert popped == sorted(keys)
        assert queue.pushes == len(specs)
        assert queue.pops == len(specs)

    @given(specs=_EVENT_SPECS, data=st.data())
    def test_pop_order_ignores_heap_insertion_order(self, specs, data):
        """The same event set heapified in any insertion order pops
        identically: the total order never falls back to heap layout."""
        events = [
            Event(time, seq, tid, EventKind.THREAD_WAKEUP, None)
            for seq, (time, tid) in enumerate(specs)
        ]
        shuffled = data.draw(st.permutations(events))
        heap = []
        for event in shuffled:
            heapq.heappush(heap, event)
        popped = [heapq.heappop(heap).sort_key() for _ in range(len(heap))]
        assert popped == sorted(e.sort_key() for e in events)

    def test_schedule_order_breaks_time_ties(self):
        queue = EventQueue()
        first = queue.schedule(100, EventKind.THREAD_WAKEUP, 9)
        second = queue.schedule(100, EventKind.THREAD_WAKEUP, 1)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancel_is_lazy_and_skipped(self):
        queue = EventQueue()
        keep = queue.schedule(1, EventKind.THREAD_WAKEUP, 1)
        drop = queue.schedule(2, EventKind.THREAD_WAKEUP, 2)
        tail = queue.schedule(3, EventKind.THREAD_WAKEUP, 3)
        queue.cancel(drop)
        assert len(queue) == 3  # cancellation does not touch the heap
        assert queue.pop() is keep
        assert queue.pop() is tail
        assert queue.pop() is None

    def test_peek_and_next_time_skip_cancelled(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert queue.next_time() is None
        head = queue.schedule(5, EventKind.THREAD_WAKEUP, 1)
        queue.schedule(9, EventKind.THREAD_WAKEUP, 2)
        queue.cancel(head)
        assert queue.next_time() == 9
        assert queue.peek().tid == 2

    def test_emit_logs_without_scheduling(self):
        queue = EventQueue()
        queue.enable_log(limit=2)
        for tid in range(3):
            queue.emit(10 + tid, EventKind.THREAD_BLOCK, tid)
        assert len(queue) == 0  # emitted events never enter the heap
        assert [e.tid for e in queue.log] == [0, 1]  # bounded log
        # emitted events consume sequence numbers: a later scheduled
        # event still sorts after them at equal times
        event = queue.schedule(10, EventKind.THREAD_WAKEUP, 9)
        assert event.seq > 3


# -- event kinds, end to end --------------------------------------------------


def _new_runtime(cpus: int = 1, engine: str = "stepped", **kwargs) -> Runtime:
    machine = Machine(SMALL.with_cpus(cpus), seed=7)
    return Runtime(
        machine,
        FCFSScheduler(model_scheduler_memory=False),
        engine=engine,
        **kwargs,
    )


class TestEventKinds:
    @pytest.mark.parametrize("engine", Runtime.ENGINES)
    def test_quantum_expire_preempts_long_intervals(self, engine):
        runtime = _new_runtime(engine=engine, quantum=500)

        def body():
            for _ in range(4):
                yield Compute(1_000)

        runtime.at_create(body, name="a")
        runtime.at_create(body, name="b")
        runtime.run()
        assert runtime.preemptions > 0
        assert all(not t.alive for t in runtime.threads.values())
        # the preemption is a forced context switch, so the two threads
        # interleave instead of running back to back
        assert runtime.context_switches > 2

    def test_quantum_expire_is_generation_guarded(self):
        """An expiry armed for an earlier dispatch of the same thread on
        the same cpu must not preempt a later dispatch."""
        runtime = _new_runtime(quantum=600)

        def sleeper():
            yield Compute(100)
            yield Sleep(5_000)  # outlives the armed expiry
            yield Compute(100)

        runtime.at_create(sleeper, name="sleeper")
        runtime.run()
        assert runtime.preemptions == 0

    @pytest.mark.parametrize("engine", Runtime.ENGINES)
    def test_sched_tick_fires_periodically_while_live(self, engine):
        runtime = _new_runtime(engine=engine)
        fires = []

        def body():
            yield Compute(5_000)

        runtime.at_create(body, name="worker")
        runtime.schedule_tick(1_000, lambda rt, now: fires.append(now))
        runtime.run()
        assert fires
        assert fires == [1_000 * (i + 1) for i in range(len(fires))]
        # ticks stop once the last thread dies (no infinite reschedule)
        assert fires[-1] <= runtime.machine.time() + 1_000

    @pytest.mark.parametrize("engine", Runtime.ENGINES)
    def test_rt_period_start_early_wakes_and_invalidates_timer(
        self, engine
    ):
        runtime = _new_runtime(engine=engine)

        def body():
            yield Compute(10)
            yield Sleep(50_000)
            yield Compute(10)

        tid = runtime.at_create(body, name="rt")
        runtime.at_periodic(tid, 2_000)
        runtime.run()
        # the period boundary woke the sleeper long before its timer ...
        assert runtime.early_wakeups >= 1
        assert runtime.machine.time() < 50_000
        # ... and bumped ready_seq, so the stale sleep timer was lazily
        # invalidated rather than waking the thread twice
        assert runtime.timer_wakeups == 0

    def test_timer_wakeups_audited(self):
        runtime = _new_runtime()

        def body():
            for _ in range(3):
                yield Sleep(100)

        runtime.at_create(body, name="napper")
        runtime.run()
        assert runtime.timer_wakeups == 3


# -- step-count complexity (the audited counters) -----------------------------


def _run_server(engine, num_requests, cpus, sleep=200_000):
    params = ServerParams(
        num_requests=num_requests,
        sleep_cycles=sleep,
        stagger_cycles=3_000,
    )
    machine = Machine(SMALL.with_cpus(cpus), seed=0)
    runtime = Runtime(machine, SCHEDULERS["lff"](), engine=engine)
    ServerWorkload(params).build(runtime)
    runtime.run()
    return runtime


class TestStepComplexity:
    @given(
        num_requests=st.integers(8, 24),
        cpus=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=8, deadline=None)
    def test_event_engine_faithful_steps_are_o_events(
        self, num_requests, cpus
    ):
        """Faithful iterations scale with executed events, not with
        cpus x elapsed quanta: every idle iteration the stepped loop
        would burn a scheduler call on is replayed as a virtual step."""
        runtime = _run_server("event", num_requests, cpus)
        assert runtime.loop_steps <= 2 * runtime.events_executed + cpus

    def test_stepped_loop_pays_idle_iterations_the_event_engine_skips(
        self,
    ):
        stepped = _run_server("stepped", 24, 8)
        event = _run_server("event", 24, 8)
        assert stepped.events_executed == event.events_executed
        # the stepped loop burns several idle iterations per event ...
        assert stepped.loop_steps >= 5 * stepped.events_executed
        # ... which the event engine converts into O(1) virtual steps,
        # conserving the total number of replayed iterations
        assert event.loop_steps <= 2 * event.events_executed + 8
        assert event.virtual_steps > 0
        assert (
            event.loop_steps + event.virtual_steps == stepped.loop_steps
        )

    def test_step_counts_independent_of_sleep_duration(self):
        """Blocked time is jumped, not simulated: quadrupling the sleep
        gap changes no step counter in either engine."""
        short = _run_server("event", 24, 8, sleep=200_000)
        long = _run_server("event", 24, 8, sleep=800_000)
        assert short.loop_steps == long.loop_steps
        assert short.virtual_steps == long.virtual_steps
        assert short.events_executed == long.events_executed

    def test_budget_exception_leaves_resumable_bit_exact_state(self):
        """StepBudgetExceeded mid-run (the watchdog's chunking) flushes
        deferred virtual-step state; resuming completes bit-identically
        to an uninterrupted run."""
        chunked = _run_server("event", 12, 4)  # reference, uninterrupted

        params = ServerParams(
            num_requests=12, sleep_cycles=200_000, stagger_cycles=3_000
        )
        machine = Machine(SMALL.with_cpus(4), seed=0)
        runtime = Runtime(machine, SCHEDULERS["lff"](), engine="event")
        ServerWorkload(params).build(runtime)
        budget = 50
        while True:
            try:
                runtime.run(max_events=budget)
            except StepBudgetExceeded:
                budget += 50
            else:
                break
        ref = chunked.machine
        assert machine.time() == ref.time()
        assert machine.total_l2_misses() == ref.total_l2_misses()
        assert machine.total_instructions() == ref.total_instructions()
        assert runtime.context_switches == chunked.context_switches
        assert runtime.events_executed == chunked.events_executed
