"""Tests for trace recording and offline analyses."""

import numpy as np
import pytest

from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sim.trace import (
    ReferenceTraceRecorder,
    TraceBudgetExceeded,
    TracingRuntimeAdapter,
    footprint_curve_from_trace,
    reuse_distance_histogram,
    working_set_sizes,
)
from repro.threads.events import Compute, Touch
from repro.threads.runtime import Runtime


class TestRecorder:
    def test_records_in_program_order(self):
        recorder = ReferenceTraceRecorder()
        recorder.record(1, np.asarray([5, 6]))
        recorder.record(1, np.asarray([7]))
        assert recorder.trace(1).tolist() == [5, 6, 7]

    def test_threads_separated(self):
        recorder = ReferenceTraceRecorder()
        recorder.record(1, np.asarray([5]))
        recorder.record(2, np.asarray([9]))
        assert recorder.trace(1).tolist() == [5]
        assert recorder.trace(2).tolist() == [9]
        assert recorder.threads() == [1, 2]

    def test_unknown_thread_empty(self):
        assert ReferenceTraceRecorder().trace(42).size == 0

    def test_strict_budget_raises(self):
        recorder = ReferenceTraceRecorder(max_total_refs=2)
        with pytest.raises(TraceBudgetExceeded):
            recorder.record(1, np.asarray([1, 2, 3]))

    def test_lenient_budget_truncates(self):
        recorder = ReferenceTraceRecorder(max_total_refs=2, strict=False)
        recorder.record(1, np.asarray([1, 2]))
        recorder.record(1, np.asarray([3]))
        assert recorder.truncated
        assert recorder.trace(1).tolist() == [1, 2]

    def test_storage_accounting(self):
        recorder = ReferenceTraceRecorder()
        recorder.record(1, np.arange(10))
        assert recorder.storage_bytes == 80

    def test_runtime_adapter_captures_touches(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        recorder = ReferenceTraceRecorder()
        TracingRuntimeAdapter(rt, recorder)
        region = rt.alloc_lines("r", 8)

        def body():
            yield Touch(region.lines())
            yield Compute(10)
            yield Touch(region.lines()[:3])

        tid = rt.at_create(body)
        rt.run()
        assert recorder.trace(tid).size == 11


class TestFootprintReplay:
    def test_distinct_lines_grow_footprint(self):
        xs, ys = footprint_curve_from_trace(np.arange(10), cache_lines=16)
        assert ys[-1] == 10
        assert xs[-1] == 10

    def test_hits_do_not_sample(self):
        trace = np.asarray([1, 1, 1, 2])
        xs, ys = footprint_curve_from_trace(trace, cache_lines=16)
        assert xs.tolist() == [1, 2]  # two misses only

    def test_self_conflict_keeps_footprint_flat(self):
        trace = np.asarray([1, 17, 1, 17])  # same index in a 16-line cache
        xs, ys = footprint_curve_from_trace(trace, cache_lines=16)
        assert xs.size == 4  # every access misses
        assert ys.max() == 1  # but only one line ever resident

    def test_empty_trace(self):
        xs, ys = footprint_curve_from_trace(np.empty(0), cache_lines=16)
        assert xs.size == 0

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            footprint_curve_from_trace(np.arange(3), cache_lines=0)


class TestReuseDistances:
    def test_cold_references(self):
        h = reuse_distance_histogram(np.asarray([1, 2, 3]))
        assert h == {-1: 3}

    def test_immediate_reuse_distance_zero(self):
        h = reuse_distance_histogram(np.asarray([1, 1]))
        assert h[0] == 1

    def test_distance_counts_unique_intervening(self):
        h = reuse_distance_histogram(np.asarray([1, 2, 3, 1]))
        assert h[2] == 1  # lines 2, 3 between uses of 1

    def test_max_distance_bucket(self):
        h = reuse_distance_histogram(
            np.asarray([1, 2, 3, 4, 1]), max_distance=2
        )
        assert h[2] == 1  # the distance-3 reuse lumped into bucket 2


class TestWorkingSets:
    def test_constant_stream(self):
        sizes = working_set_sizes(np.asarray([7] * 10), window=4)
        assert sizes.tolist() == [1] * 7

    def test_distinct_stream(self):
        sizes = working_set_sizes(np.arange(6), window=3)
        assert sizes.tolist() == [3, 3, 3, 3]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            working_set_sizes(np.arange(3), window=0)

    def test_short_trace(self):
        assert working_set_sizes(np.arange(2), window=5).size == 0
