"""Tests for CSV/JSON exporters."""

import csv

import numpy as np
import pytest

from repro.sim.export import (
    curves_to_csv,
    load_json,
    monitored_to_csv,
    perf_results_to_csv,
    to_json,
)
from repro.sim.metrics import MonitoredResult, PerfResult


@pytest.fixture
def monitored():
    return MonitoredResult(
        app="demo",
        language="c",
        cache_lines=256,
        misses=np.asarray([0, 10, 20]),
        observed=np.asarray([0, 9, 17]),
        predicted=np.asarray([0.0, 9.8, 18.9]),
        instructions=np.asarray([0, 100, 200]),
    )


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestMonitoredCsv:
    def test_roundtrip(self, monitored, tmp_path):
        out = tmp_path / "trace.csv"
        monitored_to_csv(monitored, out)
        rows = read_csv(out)
        assert rows[0] == ["misses", "observed", "predicted", "instructions"]
        assert rows[1] == ["0", "0", "0.0", "0"]
        assert len(rows) == 4


class TestPerfCsv:
    def test_flattens_with_baselines(self, tmp_path):
        base = PerfResult("w", "fcfs", 1, 200, 1000, 100, 150, 5)
        fast = PerfResult("w", "lff", 1, 100, 1000, 40, 150, 5)
        out = tmp_path / "perf.csv"
        perf_results_to_csv({"w": {"fcfs": base, "lff": fast}}, out)
        rows = read_csv(out)
        assert len(rows) == 3
        lff_row = rows[2]
        assert lff_row[0] == "w"
        assert float(lff_row[-2]) == pytest.approx(0.6)  # eliminated
        assert float(lff_row[-1]) == pytest.approx(2.0)  # speedup


class TestCurvesCsv:
    def test_long_form(self, tmp_path):
        from repro.experiments.fig4 import Curve

        curve = Curve(
            "S0=0",
            misses=np.asarray([0, 5]),
            observed=np.asarray([0, 4]),
            predicted=np.asarray([0.0, 4.9]),
        )
        out = tmp_path / "curves.csv"
        curves_to_csv({"a": curve}, out)
        rows = read_csv(out)
        assert rows[1][0] == "a"
        assert len(rows) == 3


class TestJson:
    def test_numpy_and_dataclass_roundtrip(self, tmp_path):
        payload = {
            "arr": np.asarray([1, 2, 3]),
            "scalar": np.float64(1.5),
            "result": PerfResult("w", "lff", 1, 100, 1000, 40, 150, 5),
        }
        out = tmp_path / "data.json"
        to_json(payload, out)
        loaded = load_json(out)
        assert loaded["arr"] == [1, 2, 3]
        assert loaded["scalar"] == 1.5
        assert loaded["result"]["l2_misses"] == 40
