"""Tests for metrics containers and derived series."""

import numpy as np
import pytest

from repro.sim.metrics import MonitoredResult, PerfResult, mpi_series
from repro.sim.report import format_series, format_table


def perf(misses, cycles, **kwargs):
    defaults = dict(
        workload="w",
        scheduler="s",
        num_cpus=1,
        cycles=cycles,
        instructions=1000,
        l2_misses=misses,
        l2_refs=misses * 2,
        context_switches=5,
    )
    defaults.update(kwargs)
    return PerfResult(**defaults)


class TestPerfResult:
    def test_misses_eliminated(self):
        base = perf(1000, 100)
        better = perf(300, 50)
        assert better.misses_eliminated_vs(base) == pytest.approx(0.7)

    def test_negative_elimination_when_worse(self):
        base = perf(1000, 100)
        worse = perf(1100, 120)
        assert worse.misses_eliminated_vs(base) < 0

    def test_zero_base_misses(self):
        base = perf(0, 100)
        assert perf(10, 100).misses_eliminated_vs(base) == 0.0

    def test_speedup(self):
        base = perf(1000, 200)
        faster = perf(1000, 100)
        assert faster.speedup_vs(base) == pytest.approx(2.0)

    def test_mpi(self):
        assert perf(100, 1).mpi == pytest.approx(0.1)


class TestMonitoredResult:
    def make(self, observed, predicted):
        n = len(observed)
        return MonitoredResult(
            app="a",
            language="c",
            cache_lines=256,
            misses=np.arange(n),
            observed=np.asarray(observed, dtype=np.int64),
            predicted=np.asarray(predicted, dtype=float),
            instructions=np.arange(n) * 10,
        )

    def test_mae(self):
        result = self.make([10, 20], [12, 18])
        assert result.mean_absolute_error == pytest.approx(2.0)

    def test_final_ratio(self):
        result = self.make([10, 20], [12, 30])
        assert result.final_ratio == pytest.approx(1.5)

    def test_final_ratio_zero_observed(self):
        result = self.make([0, 0], [5, 5])
        assert result.final_ratio == float("inf")

    def test_overestimation_sign(self):
        over = self.make([10, 10], [20, 20])
        under = self.make([20, 20], [10, 10])
        assert over.overestimation > 0
        assert under.overestimation < 0

    def test_empty_trace(self):
        result = self.make([], [])
        assert result.mean_absolute_error == 0.0


class TestMpiSeries:
    def test_constant_rate(self):
        instr = np.arange(0, 1000, 10)
        misses = np.arange(0, 100, 1)  # 1 miss per 10 instructions
        xs, mpi = mpi_series(instr, misses, window=5)
        assert np.allclose(mpi, 100.0)  # per 1000 instructions

    def test_burst_then_quiet(self):
        instr = np.arange(0, 2000, 10)
        misses = np.concatenate([np.arange(100), np.full(100, 99)])
        _xs, mpi = mpi_series(instr, misses, window=10)
        assert mpi[0] > mpi[-1]

    def test_short_series_empty(self):
        xs, mpi = mpi_series(np.arange(3), np.arange(3), window=5)
        assert xs.size == 0


class TestReportFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [(1, 2.5), (10, 3.25)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out
        assert "10" in out

    def test_format_series_samples(self):
        out = format_series(list(range(100)), list(range(100)), max_points=5)
        assert out.startswith("(0")
        assert "(99" in out  # final point always included

    def test_format_series_empty(self):
        assert "empty" in format_series([], [])
