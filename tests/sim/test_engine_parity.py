"""Golden-parity matrix: ``--engine event`` is bit-identical to stepped.

Every cell of the (policy x workload x cpus) matrix runs the same
workload under both engines and compares the *full* observable state --
global time, per-cpu cycle and instruction counters, PIC registers,
miss totals, context switches, executed events, timer wakeups, the
per-thread result signatures, and the scheduler's own pick/steal/heap
statistics.  Any drift anywhere fails the cell; the CI ``engine-parity``
job runs exactly this file and uploads the diff artifact written to
``$ENGINE_PARITY_DIFF`` when a cell fails.
"""

import os

import pytest

from repro.faults.campaign import campaign_workloads
from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched import SCHEDULERS
from repro.threads.runtime import Runtime
from repro.workloads.server import ServerParams, ServerWorkload

POLICIES = ("fcfs", "lff", "crt")
CPU_COUNTS = (1, 2, 4)
WORKLOADS = campaign_workloads("smoke")


def _full_state(runtime, machine, scheduler):
    """Everything the parity guarantee covers, as a comparable dict."""
    state = {
        "time": machine.time(),
        "clocks": tuple(p.cycles for p in machine.cpus),
        "instructions": tuple(p.instructions for p in machine.cpus),
        "pics": tuple(
            tuple(pic.value for pic in cpu.counters._pics)
            for cpu in machine.cpus
        ),
        "misses": machine.total_l2_misses(),
        "context_switches": runtime.context_switches,
        "events": runtime.events_executed,
        "timer_wakeups": runtime.timer_wakeups,
        "early_wakeups": runtime.early_wakeups,
        "preemptions": runtime.preemptions,
        "threads": tuple(
            sorted(
                (
                    t.name,
                    t.stats.refs,
                    t.stats.instructions,
                    t.stats.misses,
                    t.stats.wait_cycles,
                    t.stats.migrations,
                    t.state.value,
                )
                for t in runtime.threads.values()
            )
        ),
    }
    for attr in ("_picks", "steals", "demotions", "compactions"):
        if hasattr(scheduler, attr):
            state[attr] = getattr(scheduler, attr)
    if hasattr(scheduler, "heaps"):
        state["heap_ops"] = tuple(
            (h.pushes, h.pops) for h in scheduler.heaps
        )
    return state


def _run_cell(policy, build, cpus, engine, **runtime_kwargs):
    machine = Machine(SMALL.with_cpus(cpus), seed=0)
    scheduler = SCHEDULERS[policy]()
    runtime = Runtime(machine, scheduler, engine=engine, **runtime_kwargs)
    build(runtime)
    runtime.run()
    return _full_state(runtime, machine, scheduler)


def _assert_parity(cell, stepped, event):
    if stepped == event:
        return
    drifted = sorted(k for k in stepped if stepped[k] != event[k])
    path = os.environ.get("ENGINE_PARITY_DIFF")
    if path:
        with open(path, "a") as fh:
            fh.write(f"MISMATCH {cell}\n")
            for key in drifted:
                fh.write(
                    f"  {key}:\n"
                    f"    stepped = {stepped[key]!r}\n"
                    f"    event   = {event[key]!r}\n"
                )
    pytest.fail(
        f"{cell}: engines drifted in {', '.join(drifted)}; "
        f"stepped={[stepped[k] for k in drifted]!r} "
        f"event={[event[k] for k in drifted]!r}"
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("policy", POLICIES)
def test_engine_parity(policy, workload):
    factory = WORKLOADS[workload]
    for cpus in CPU_COUNTS:
        cell = f"{policy}/{workload}/cpus={cpus}"
        stepped = _run_cell(
            policy, lambda rt: factory().build(rt), cpus, "stepped"
        )
        event = _run_cell(
            policy, lambda rt: factory().build(rt), cpus, "event"
        )
        _assert_parity(cell, stepped, event)


@pytest.mark.parametrize("policy", POLICIES)
def test_engine_parity_sparse_server(policy):
    """The engine's home turf: deep parking and long virtual spans."""
    params = ServerParams(
        num_requests=24, sleep_cycles=250_000, stagger_cycles=4_000
    )

    def build(runtime):
        ServerWorkload(params).build(runtime)

    for cpus in (2, 8):
        cell = f"{policy}/server/cpus={cpus}"
        stepped = _run_cell(policy, build, cpus, "stepped")
        event = _run_cell(policy, build, cpus, "event")
        _assert_parity(cell, stepped, event)


@pytest.mark.parametrize("policy", POLICIES)
def test_engine_parity_with_quantum_and_periodic(policy):
    """QUANTUM_EXPIRE and RT_PERIOD_START cells: forced preemption and
    early wakeups must land on identical cycles in both engines."""

    def build(runtime):
        from repro.threads.events import Compute, Sleep

        def worker(i):
            def body():
                yield Compute(400)
                yield Sleep(6_000)
                yield Compute(400)

            return body

        for i in range(6):
            tid = runtime.at_create(worker(i), name=f"w{i}")
            if i % 2 == 0:
                runtime.at_periodic(tid, 1_500)

    for cpus in (1, 2):
        cell = f"{policy}/quantum+rt/cpus={cpus}"
        stepped = _run_cell(policy, build, cpus, "stepped", quantum=700)
        event = _run_cell(policy, build, cpus, "event", quantum=700)
        _assert_parity(cell, stepped, event)


def test_diff_artifact_written_on_mismatch(tmp_path, monkeypatch):
    """The CI artifact plumbing itself: a drifted cell writes the diff."""
    diff = tmp_path / "parity-diff.txt"
    monkeypatch.setenv("ENGINE_PARITY_DIFF", str(diff))
    stepped = {"time": 100, "misses": 5}
    event = {"time": 100, "misses": 6}
    with pytest.raises(pytest.fail.Exception):
        _assert_parity("fcfs/example/cpus=2", stepped, event)
    text = diff.read_text()
    assert "MISMATCH fcfs/example/cpus=2" in text
    assert "misses" in text and "time" not in text.split("MISMATCH")[1]
