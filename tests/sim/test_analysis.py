"""Tests for post-run analysis."""

import numpy as np
import pytest

from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sim.analysis import (
    cpu_summaries,
    load_imbalance,
    overhead_fraction,
    remote_miss_fraction,
    run_report,
    scheduler_overhead_cycles,
    thread_summaries,
)
from repro.threads.events import Compute, Sleep, Touch
from repro.threads.runtime import Runtime


@pytest.fixture
def finished_run(smp):
    rt = Runtime(smp, FCFSScheduler(model_scheduler_memory=False))
    regions = [rt.alloc_lines(f"r{i}", 30) for i in range(4)]

    def body(region):
        def gen():
            for _ in range(3):
                yield Touch(region.lines())
                yield Compute(500)
                yield Sleep(2000)
        return gen

    for i, r in enumerate(regions):
        rt.at_create(body(r), name=f"w{i}")
    rt.run()
    return smp, rt


class TestThreadSummaries:
    def test_one_row_per_thread(self, finished_run):
        _machine, rt = finished_run
        rows = thread_summaries(rt)
        assert len(rows) == 4
        assert [r.tid for r in rows] == sorted(r.tid for r in rows)

    def test_counts_match_thread_stats(self, finished_run):
        _machine, rt = finished_run
        row = thread_summaries(rt)[0]
        thread = rt.threads[row.tid]
        assert row.refs == thread.stats.refs
        assert row.misses == thread.stats.misses

    def test_miss_rate(self, finished_run):
        _machine, rt = finished_run
        row = thread_summaries(rt)[0]
        assert 0.0 <= row.miss_rate <= 1.0


class TestCpuSummaries:
    def test_one_row_per_cpu(self, finished_run):
        machine, _rt = finished_run
        rows = cpu_summaries(machine)
        assert len(rows) == machine.config.num_cpus

    def test_totals_match_machine(self, finished_run):
        machine, _rt = finished_run
        rows = cpu_summaries(machine)
        assert sum(r.misses for r in rows) == machine.total_l2_misses()

    def test_local_plus_remote_is_total(self, finished_run):
        machine, _rt = finished_run
        for row in cpu_summaries(machine):
            assert row.local_misses + row.remote_misses == row.misses


class TestDerivedMetrics:
    def test_load_imbalance_at_least_one(self, finished_run):
        machine, _rt = finished_run
        assert load_imbalance(machine) >= 1.0

    def test_remote_fraction_bounds(self, finished_run):
        machine, _rt = finished_run
        assert 0.0 <= remote_miss_fraction(machine) <= 1.0

    def test_remote_fraction_zero_on_uniprocessor(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        region = rt.alloc_lines("r", 20)

        def body():
            yield Touch(region.lines())

        rt.at_create(body)
        rt.run()
        assert remote_miss_fraction(machine) == 0.0

    def test_overhead_scales_with_switches(self, finished_run):
        _machine, rt = finished_run
        assert scheduler_overhead_cycles(rt) > 0
        assert 0.0 < overhead_fraction(rt) < 1.0


class TestRunReport:
    def test_report_contains_sections(self, finished_run):
        machine, rt = finished_run
        text = run_report(machine, rt)
        assert "Run summary" in text
        assert "Per-cpu totals" in text
        assert "Heaviest" in text

    def test_report_top_limits_rows(self, finished_run):
        machine, rt = finished_run
        text = run_report(machine, rt, top=2)
        assert "Heaviest 2 threads" in text
