"""Tests for the four performance applications (Table 4)."""

import numpy as np
import pytest

from repro.machine.configs import ULTRA1
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.threads.runtime import Runtime
from repro.workloads import (
    MergeParams,
    MergeWorkload,
    PhotoParams,
    PhotoWorkload,
    TasksParams,
    TasksWorkload,
    TspParams,
    TspWorkload,
)


def run(workload, config=ULTRA1, seed=0):
    machine = Machine(config, seed=seed)
    runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
    workload.build(runtime)
    runtime.run()
    return machine, runtime


class TestTasks:
    def test_thread_count_and_completion(self):
        wl = TasksWorkload(TasksParams(num_tasks=16, periods=3))
        machine, runtime = run(wl)
        assert len(wl.tids) == 16
        assert all(not runtime.thread(t).alive for t in wl.tids)

    def test_period_structure(self):
        params = TasksParams(num_tasks=4, periods=5, footprint_lines=20)
        wl = TasksWorkload(params)
        machine, runtime = run(wl)
        thread = runtime.thread(wl.tids[0])
        # one interval per period (each Sleep ends an interval) + final
        assert thread.stats.intervals == params.periods + 1
        assert thread.stats.refs == params.periods * params.footprint_lines

    def test_paper_scale_parameters(self):
        paper = TasksParams.paper_scale()
        assert paper.num_tasks == 1024
        assert paper.periods == 100
        assert paper.footprint_lines == 100


class TestMerge:
    def test_actually_sorts(self):
        wl = MergeWorkload(MergeParams(num_elements=3000, leaf_cutoff=64))
        run(wl)
        assert wl.verify_sorted()

    def test_thread_tree_size(self):
        wl = MergeWorkload(MergeParams(num_elements=1600, leaf_cutoff=100))
        _machine, runtime = run(wl)
        # 16 leaves -> 31 nodes -> 30 created by parents + 1 root
        assert len(runtime.threads) == 31

    def test_annotations_present_by_default(self):
        wl = MergeWorkload(MergeParams(num_elements=800, leaf_cutoff=100))
        machine = Machine(ULTRA1, seed=0)
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        wl.build(runtime)
        edges = []

        observed = {"max_edges": 0}
        original_share = runtime.graph.share

        def counting_share(src, dst, q):
            original_share(src, dst, q)
            observed["max_edges"] = max(
                observed["max_edges"], runtime.graph.num_edges()
            )

        runtime.graph.share = counting_share
        runtime.run()
        assert observed["max_edges"] > 0

    def test_annotations_can_be_disabled(self):
        wl = MergeWorkload(
            MergeParams(num_elements=800, leaf_cutoff=100), annotate=False
        )
        machine = Machine(ULTRA1, seed=0)
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        wl.build(runtime)
        runtime.run()
        assert wl.verify_sorted()

    def test_deterministic_across_runs(self):
        results = []
        for _ in range(2):
            wl = MergeWorkload(MergeParams(num_elements=2000, leaf_cutoff=100))
            machine, _ = run(wl)
            results.append(machine.total_l2_misses())
        assert results[0] == results[1]


class TestPhoto:
    def test_filter_output_is_window_mean(self):
        params = PhotoParams(width=128, height=32, halo=2)
        wl = PhotoWorkload(params)
        run(wl)
        row = 10
        window = wl.image[row - 2 : row + 3].astype(np.uint16)
        expected = (window.sum(axis=0) // window.shape[0]).astype(np.uint8)
        assert np.array_equal(wl.output[row], expected)

    def test_edge_rows_use_clamped_windows(self):
        params = PhotoParams(width=64, height=16, halo=2)
        wl = PhotoWorkload(params)
        run(wl)
        window = wl.image[0:3].astype(np.uint16)
        expected = (window.sum(axis=0) // window.shape[0]).astype(np.uint8)
        assert np.array_equal(wl.output[0], expected)

    def test_one_thread_per_row(self):
        params = PhotoParams(width=64, height=12)
        wl = PhotoWorkload(params)
        _machine, runtime = run(wl)
        assert len(wl.row_tids) == 12

    def test_tiled_creation_produces_same_output(self):
        params = PhotoParams(width=64, height=24)
        row_wl = PhotoWorkload(params, creation_order="row")
        run(row_wl)
        tiled_wl = PhotoWorkload(params, creation_order="tiled")
        run(tiled_wl)
        assert np.array_equal(row_wl.output, tiled_wl.output)

    def test_annotation_span_is_window_overlap(self):
        params = PhotoParams(width=64, height=32, halo=2)
        wl = PhotoWorkload(params)
        machine = Machine(ULTRA1, seed=0)
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        wl.build(runtime)
        mid = wl.row_tids[16]
        # distance 4 = 2*halo still overlaps; distance 5 does not
        assert runtime.graph.coefficient(mid, wl.row_tids[20]) > 0
        assert runtime.graph.coefficient(mid, wl.row_tids[21]) == 0


class TestTsp:
    def test_finds_a_valid_tour(self):
        params = TspParams(num_cities=16, branch_levels=4)
        wl = TspWorkload(params)
        run(wl)
        assert wl.best_tour is not None
        assert sorted(wl.best_tour) == list(range(16))
        assert wl.best_cost > 0

    def test_tour_cost_matches_distances(self):
        params = TspParams(num_cities=12, branch_levels=4)
        wl = TspWorkload(params)
        run(wl)
        tour = wl.best_tour
        total = sum(
            wl.dist[tour[i], tour[(i + 1) % len(tour)]]
            for i in range(len(tour))
        )
        assert total == pytest.approx(wl.best_cost)

    def test_thread_budget_respected(self):
        params = TspParams(num_cities=30, branch_levels=8, max_threads=25)
        wl = TspWorkload(params)
        _machine, runtime = run(wl)
        assert wl.threads_created <= 25 + 2  # budget plus the final branch pair

    def test_tree_is_schedule_invariant(self):
        """Static-bound pruning: every policy explores the same tree and
        finds the same tour (the paper's equal-work methodology)."""
        from repro.sched.locality import make_lff
        from repro.machine.smp import Machine as _Machine
        outcomes = []
        for scheduler in (
            FCFSScheduler(model_scheduler_memory=False),
            make_lff(model_scheduler_memory=False),
        ):
            wl = TspWorkload(TspParams(num_cities=14, branch_levels=4))
            machine = _Machine(ULTRA1, seed=0)
            runtime = Runtime(machine, scheduler)
            wl.build(runtime)
            runtime.run()
            outcomes.append((wl.threads_created, round(wl.best_cost, 6)))
        assert outcomes[0] == outcomes[1]

    def test_bound_never_exceeds_best(self):
        """The bound is admissible: the best tour cost is at least the
        root lower bound."""
        params = TspParams(num_cities=14, branch_levels=4)
        wl = TspWorkload(params)
        run(wl)
        root_bound = wl._lower_bound([0], 0.0)
        assert wl.best_cost >= root_bound

    def test_deterministic(self):
        costs = []
        for _ in range(2):
            wl = TspWorkload(TspParams(num_cities=14, branch_levels=4))
            run(wl)
            costs.append(wl.best_cost)
        assert costs[0] == costs[1]
