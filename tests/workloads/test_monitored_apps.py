"""Tests for the monitored (Figure 5-7) applications."""

import numpy as np
import pytest

from repro.machine.configs import ULTRA1
from repro.sim.driver import run_monitored
from repro.workloads import (
    ANOMALOUS_APPS,
    MONITORED_APPS,
    BarnesLike,
    MergeMonitored,
    RaytraceLike,
    TypecheckerLike,
)
from repro.workloads.splash import _slab_lines, _strided_slabs


@pytest.mark.parametrize("name", sorted(MONITORED_APPS))
def test_monitored_app_produces_trace(name):
    app_cls = MONITORED_APPS[name]
    # shrink each app for speed
    shrink = {
        "barnes": dict(num_bodies=300, arena_pages=8, timesteps=1),
        "fmm": dict(grid=8, arena_pages=8),
        "ocean": dict(grid=48, sweeps=1, arena_pages=8),
        "merge": dict(num_elements=5000),
        "photo": dict(width=256, height=64),
        "tsp": dict(num_cities=16, num_nodes=16),
    }
    result = run_monitored(app_cls(**shrink[name]))
    assert result.misses.size > 0
    assert np.all(np.diff(result.misses) >= 0)  # cumulative
    assert np.all(result.observed >= 0)
    assert result.predicted[-1] <= result.cache_lines


@pytest.mark.parametrize("name", sorted(ANOMALOUS_APPS))
def test_anomalous_apps_overestimate(name):
    """Figure 7's defining property: predicted substantially above
    observed."""
    shrink = {
        "raytrace": dict(num_objects=12, num_rays=150, bounces=8),
        "typechecker": dict(
            num_types=400, ast_nodes=2500, arena_span_pages=12
        ),
    }
    result = run_monitored(ANOMALOUS_APPS[name](**shrink[name]))
    assert result.final_ratio > 1.2


def test_merge_monitored_really_sorts():
    app = MergeMonitored(num_elements=4000)
    run_monitored(app)
    assert np.all(np.diff(app.data) >= 0)


class TestBarnesTree:
    def test_all_bodies_in_tree(self):
        app = BarnesLike(num_bodies=200, arena_pages=0)
        counted = []

        def collect(node):
            counted.extend(node.bodies)
            for child in node.children:
                if child is not None:
                    collect(child)

        app.positions = np.random.default_rng(0).uniform(size=(200, 2))
        app.root = app._new_node(0.5, 0.5, 0.5)
        for i in range(200):
            app._insert(i)
        collect(app.root)
        assert sorted(counted) == list(range(200))

    def test_leaf_capacity_respected(self):
        app = BarnesLike(num_bodies=300, arena_pages=0)
        app.positions = np.random.default_rng(1).uniform(size=(300, 2))
        app.root = app._new_node(0.5, 0.5, 0.5)
        for i in range(300):
            app._insert(i)

        def check(node, depth):
            if not node.is_internal:
                assert (
                    len(node.bodies) <= app.leaf_capacity
                    or depth >= app.max_depth
                )
                return
            assert node.bodies == []
            for child in node.children:
                if child is not None:
                    check(child, depth + 1)

        check(app.root, 0)

    def test_coincident_points_terminate(self):
        app = BarnesLike(num_bodies=10, arena_pages=0)
        app.positions = np.full((10, 2), 0.3)  # all identical
        app.root = app._new_node(0.5, 0.5, 0.5)
        for i in range(10):
            app._insert(i)  # must not recurse forever

    def test_mass_conserved(self):
        app = BarnesLike(num_bodies=150, arena_pages=0)
        app.positions = np.random.default_rng(2).uniform(size=(150, 2))
        app.root = app._new_node(0.5, 0.5, 0.5)
        for i in range(150):
            app._insert(i)
        app._summarise(app.root)
        assert app.root.mass == pytest.approx(150.0)

    def test_walk_visits_root(self):
        app = BarnesLike(num_bodies=100, arena_pages=0)
        app.positions = np.random.default_rng(3).uniform(size=(100, 2))
        app.root = app._new_node(0.5, 0.5, 0.5)
        for i in range(100):
            app._insert(i)
        app._summarise(app.root)
        visited = app._walk(0.5, 0.5)
        assert app.root.index in visited


class TestSlabHelpers:
    def test_strided_slabs_have_gaps(self, machine):
        space = machine.address_space
        slabs = _strided_slabs(space, "s", num_pages=3, stride_pages=4)
        assert len(slabs) == 3
        page = space.page_bytes
        assert slabs[1].base - slabs[0].base == 4 * page

    def test_slab_lines_maps_flat_indices(self, machine):
        space = machine.address_space
        slabs = _strided_slabs(space, "s2", num_pages=2, stride_pages=2)
        lpp = slabs[0].num_lines
        lines = _slab_lines(slabs, np.asarray([0, lpp, lpp + 1]))
        assert lines[0] == slabs[0].first_line
        assert lines[1] == slabs[1].first_line
        assert lines[2] == slabs[1].first_line + 1

    def test_slab_lines_wrap(self, machine):
        space = machine.address_space
        slabs = _strided_slabs(space, "s3", num_pages=2, stride_pages=2)
        capacity = 2 * slabs[0].num_lines
        wrapped = _slab_lines(slabs, np.asarray([capacity]))
        assert wrapped[0] == slabs[0].first_line


class TestRaytrace:
    def test_rays_really_intersect(self):
        app = RaytraceLike(num_objects=8, num_rays=10, bounces=5)
        rng = np.random.default_rng(0)
        app.centers = rng.uniform(-5, 5, size=(8, 3))
        origin = app.centers[0] - np.asarray([10.0, 0.0, 0.0])
        direction = np.asarray([1.0, 0.0, 0.0])
        hits = app._trace(origin, direction)
        assert 0 in hits  # the sphere dead ahead is hit first

    def test_bounce_count_bounded(self):
        app = RaytraceLike(num_objects=8, num_rays=10, bounces=3)
        rng = np.random.default_rng(0)
        app.centers = rng.uniform(-1, 1, size=(8, 3))
        hits = app._trace(np.zeros(3), np.asarray([1.0, 0.0, 0.0]))
        assert len(hits) <= 3


class TestTypechecker:
    def test_subtype_forest_is_acyclic(self):
        app = TypecheckerLike(num_types=100, ast_nodes=10)
        # parents precede children by construction
        parents = np.array(
            [-1] + [0] * 99
        )  # not the app's, just shape-check the invariant below
        machine_parents = app.parents
        if machine_parents is None:
            import numpy as _np

            rng = _np.random.default_rng(app.seed)
            machine_parents = _np.array(
                [-1] + [int(rng.integers(i)) for i in range(1, app.num_types)]
            )
        assert machine_parents[0] == -1
        assert all(
            machine_parents[i] < i for i in range(1, len(machine_parents))
        )
