"""Tests for the closed-form shared-state cache model (paper section 2.4)."""

import math

import numpy as np
import pytest

from repro.core.model import SharedStateModel


@pytest.fixture
def m():
    return SharedStateModel(256)


class TestBasics:
    def test_k_definition(self, m):
        assert m.k == 255 / 256

    def test_decay_matches_power(self, m):
        assert m.decay(10) == pytest.approx(m.k**10)

    def test_decay_vectorised(self, m):
        out = m.decay(np.asarray([0, 1, 2]))
        assert out[0] == pytest.approx(1.0)
        assert out[2] == pytest.approx(m.k**2)

    def test_decay_huge_n_underflows_to_zero(self, m):
        assert m.decay(10**7) == pytest.approx(0.0)

    def test_negative_misses_rejected(self, m):
        with pytest.raises(ValueError):
            m.decay(-1)

    def test_tiny_cache_rejected(self):
        with pytest.raises(ValueError):
            SharedStateModel(1)


class TestCase1Running:
    def test_formula(self, m):
        n_cache = 256
        expected = n_cache - (n_cache - 50) * m.k**10
        assert m.expected_running(50, 10) == pytest.approx(expected)

    def test_zero_misses_keeps_footprint(self, m):
        assert m.expected_running(100, 0) == pytest.approx(100)

    def test_growth_is_monotone_in_misses(self, m):
        values = [m.expected_running(0, n) for n in range(0, 500, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_asymptote_is_full_cache(self, m):
        assert m.expected_running(0, 10**6) == pytest.approx(256)

    def test_footprint_validation(self, m):
        with pytest.raises(ValueError):
            m.expected_running(300, 1)
        with pytest.raises(ValueError):
            m.expected_running(-1, 1)


class TestCase2Independent:
    def test_formula(self, m):
        assert m.expected_independent(100, 10) == pytest.approx(100 * m.k**10)

    def test_decay_is_monotone(self, m):
        values = [m.expected_independent(200, n) for n in range(0, 500, 50)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_decays_to_zero(self, m):
        assert m.expected_independent(200, 10**6) == pytest.approx(0.0)

    def test_zero_footprint_stays_zero(self, m):
        assert m.expected_independent(0, 100) == 0.0


class TestCase3Dependent:
    def test_reduces_to_case1_at_q1(self, m):
        assert m.expected_dependent(50, 1.0, 30) == pytest.approx(
            m.expected_running(50, 30)
        )

    def test_reduces_to_case2_at_q0(self, m):
        assert m.expected_dependent(50, 0.0, 30) == pytest.approx(
            m.expected_independent(50, 30)
        )

    def test_converges_to_q_times_n(self, m):
        assert m.expected_dependent(10, 0.4, 10**6) == pytest.approx(0.4 * 256)

    def test_grows_when_below_asymptote(self, m):
        assert m.expected_dependent(10, 0.5, 100) > 10

    def test_decays_when_above_asymptote(self, m):
        assert m.expected_dependent(200, 0.5, 100) < 200

    def test_fixed_point_at_asymptote(self, m):
        qn = 0.5 * 256
        assert m.expected_dependent(qn, 0.5, 1000) == pytest.approx(qn)

    def test_invalid_q_rejected(self, m):
        with pytest.raises(ValueError):
            m.expected_dependent(10, 1.5, 1)
        with pytest.raises(ValueError):
            m.expected_dependent(10, -0.1, 1)


class TestDerived:
    def test_asymptote(self, m):
        assert m.asymptote(0.25) == 64.0
        with pytest.raises(ValueError):
            m.asymptote(2.0)

    def test_misses_to_decay_half_life(self, m):
        n_half = m.misses_to_decay(0.5)
        assert m.expected_independent(100, n_half) == pytest.approx(50, rel=1e-6)

    def test_misses_to_decay_validation(self, m):
        with pytest.raises(ValueError):
            m.misses_to_decay(0.0)

    def test_reload_transient_plus_remaining_is_initial(self, m):
        transient = m.reload_transient(100, 50)
        remaining = m.expected_independent(100, 50)
        assert transient + remaining == pytest.approx(100)

    def test_cache_reload_ratio_bounds(self, m):
        assert m.cache_reload_ratio(100, 100) == pytest.approx(0.0)
        assert m.cache_reload_ratio(100, 0) == pytest.approx(1.0)
        assert m.cache_reload_ratio(0, 0) == 0.0  # convention

    def test_cache_reload_ratio_vectorised(self, m):
        out = m.cache_reload_ratio(np.asarray([100.0, 50.0]), np.asarray([50.0, 50.0]))
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(0.0)


class TestMissesToReach:
    def test_inverts_the_closed_form(self, m):
        n = m.misses_to_reach(target=100, initial=20, q=0.8)
        assert m.expected_dependent(20, 0.8, n) == pytest.approx(100, rel=1e-9)

    def test_decay_direction(self, m):
        """Also works for footprints shrinking toward the asymptote."""
        n = m.misses_to_reach(target=150, initial=250, q=0.5)
        assert m.expected_dependent(250, 0.5, n) == pytest.approx(150, rel=1e-9)

    def test_unreachable_target_rejected(self, m):
        with pytest.raises(ValueError):
            m.misses_to_reach(target=200, initial=20, q=0.5)  # above qN=128
        with pytest.raises(ValueError):
            m.misses_to_reach(target=20, initial=20, q=0.5)  # not strict
