"""Tests for the at_share dependency graph."""

import pytest

from repro.core.sharing import SharingGraph


class TestShare:
    def test_edge_recorded(self, graph):
        graph.share(1, 2, 0.5)
        assert graph.coefficient(1, 2) == 0.5

    def test_edges_are_directed(self, graph):
        graph.share(1, 2, 0.5)
        assert graph.coefficient(2, 1) == 0.0

    def test_unannotated_pairs_are_zero(self, graph):
        assert graph.coefficient(7, 8) == 0.0

    def test_reannotation_changes_weight(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(1, 2, 0.9)
        assert graph.coefficient(1, 2) == 0.9
        assert graph.num_edges() == 1

    def test_zero_weight_removes_edge(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(1, 2, 0.0)
        assert (1, 2) not in graph
        assert graph.num_edges() == 0

    def test_self_edge_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.share(1, 1, 0.5)

    def test_out_of_range_weight_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.share(1, 2, 1.5)
        with pytest.raises(ValueError):
            graph.share(1, 2, -0.1)


class TestQueries:
    def test_dependents_are_edge_destinations(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(1, 3, 0.25)
        assert dict(graph.dependents(1)) == {2: 0.5, 3: 0.25}
        assert graph.dependents(2) == []

    def test_dependencies_are_edge_sources(self, graph):
        graph.share(1, 3, 0.5)
        graph.share(2, 3, 0.25)
        assert dict(graph.dependencies(3)) == {1: 0.5, 2: 0.25}

    def test_out_degree(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(1, 3, 0.5)
        assert graph.out_degree(1) == 2
        assert graph.out_degree(9) == 0

    def test_edges_iteration(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(3, 4, 0.1)
        assert sorted(graph.edges()) == [(1, 2, 0.5), (3, 4, 0.1)]

    def test_contains(self, graph):
        graph.share(1, 2, 0.5)
        assert (1, 2) in graph
        assert (2, 1) not in graph


class TestRemoveThread:
    def test_removes_all_incident_edges(self, graph):
        graph.share(1, 2, 0.5)
        graph.share(3, 1, 0.4)
        graph.share(3, 4, 0.2)
        graph.remove_thread(1)
        assert graph.num_edges() == 1
        assert (3, 4) in graph
        assert graph.dependents(1) == []
        assert graph.dependencies(1) == []

    def test_removing_unknown_thread_is_noop(self, graph):
        graph.share(1, 2, 0.5)
        graph.remove_thread(99)
        assert graph.num_edges() == 1

    def test_mergesort_annotation_pattern(self, graph):
        """The paper's example: children fully shared with the parent."""
        parent, left, right = 1, 2, 3
        graph.share(left, parent, 1.0)
        graph.share(right, parent, 1.0)
        # when a child runs, the parent is its (only) dependent
        assert graph.dependents(left) == [(parent, 1.0)]
        # the parent's activity affects no one (no prefetch for children)
        assert graph.dependents(parent) == []
