"""Tests for the LFF and CRT log-space priority schemes (sections 4.1-4.2)."""

import math

import pytest

from repro.core.model import SharedStateModel
from repro.core.priorities import (
    CRTScheme,
    LFFScheme,
    PrecomputedTables,
)
from repro.core.sharing import SharingGraph


def make(scheme_cls, num_lines=256, num_cpus=1, graph=None):
    model = SharedStateModel(num_lines)
    return scheme_cls(model, graph or SharingGraph(), num_cpus)


class TestPrecomputedTables:
    def test_pow_k_matches_math(self):
        t = PrecomputedTables(256)
        assert t.pow_k(10) == pytest.approx((255 / 256) ** 10)

    def test_pow_k_zero(self):
        t = PrecomputedTables(256)
        assert t.pow_k(0) == 1.0

    def test_pow_k_beyond_table_is_zero(self):
        t = PrecomputedTables(256, max_power=10)
        assert t.pow_k(11) == 0.0

    def test_pow_k_negative_rejected(self):
        t = PrecomputedTables(256)
        with pytest.raises(ValueError):
            t.pow_k(-1)

    def test_log_footprint_matches_math(self):
        t = PrecomputedTables(256)
        assert t.log_footprint(100) == pytest.approx(math.log(100))

    def test_log_footprint_rounds(self):
        t = PrecomputedTables(256)
        assert t.log_footprint(99.6) == pytest.approx(math.log(100))

    def test_log_footprint_clamps(self):
        t = PrecomputedTables(256)
        assert t.log_footprint(0.0) == 0.0  # log(1)
        assert t.log_footprint(500.0) == pytest.approx(math.log(256))


class TestSchemeCommon:
    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_footprint_tracks_model(self, scheme_cls):
        scheme = make(scheme_cls)
        model = scheme.model
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        assert scheme.current_footprint(0, 1) == pytest.approx(
            model.expected_running(0, 40), rel=1e-6
        )

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_independent_threads_cost_zero(self, scheme_cls):
        scheme = make(scheme_cls)
        scheme.ensure_entry(0, 2)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        assert scheme.cost.independent == 0
        assert scheme.cost.blocking_updates == 1
        assert scheme.cost.dependent_updates == 0

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_independent_priority_unchanged(self, scheme_cls):
        scheme = make(scheme_cls)
        entry2 = scheme.ensure_entry(0, 2)
        before = entry2.priority
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        assert scheme.entry(0, 2).priority == before
        assert scheme.entry(0, 2).version == entry2.version

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_dependent_updates_touch_only_dependents(self, scheme_cls):
        graph = SharingGraph()
        graph.share(1, 2, 0.5)
        scheme = make(scheme_cls, graph=graph)
        scheme.ensure_entry(0, 3)
        v3 = scheme.entry(0, 3).version
        scheme.on_dispatch(0, 1)
        touched = scheme.on_block(0, 1, 40)
        assert touched == 2  # blocker + one dependent
        assert scheme.entry(0, 2) is not None
        assert scheme.entry(0, 3).version == v3

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_version_bumps_on_update(self, scheme_cls):
        scheme = make(scheme_cls)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 10)
        v1 = scheme.entry(0, 1).version
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 10)
        assert scheme.entry(0, 1).version == v1 + 1

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_forget(self, scheme_cls):
        scheme = make(scheme_cls)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 10)
        scheme.forget(1)
        assert scheme.entry(0, 1) is None
        assert scheme.current_footprint(0, 1) == 0.0

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_block_without_dispatch_rejected(self, scheme_cls):
        scheme = make(scheme_cls)
        with pytest.raises(RuntimeError):
            scheme.on_block(0, 1, 5)

    @pytest.mark.parametrize("scheme_cls", [LFFScheme, CRTScheme])
    def test_table_size_mismatch_rejected(self, scheme_cls):
        model = SharedStateModel(256)
        with pytest.raises(ValueError):
            scheme_cls(model, SharingGraph(), 1, tables=PrecomputedTables(128))


class TestLFFOrdering:
    def test_priority_order_equals_footprint_order(self):
        """p_A < p_B iff E[F_A] < E[F_B] at any common instant."""
        graph = SharingGraph()
        graph.share(1, 2, 0.5)
        scheme = make(LFFScheme, graph=graph)
        scheme.ensure_entry(0, 3)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 120)
        scheme.on_dispatch(0, 3)
        scheme.on_block(0, 3, 60)
        tids = [1, 2, 3]
        by_priority = sorted(tids, key=lambda t: scheme.entry(0, t).priority)
        by_footprint = sorted(tids, key=lambda t: scheme.current_footprint(0, t))
        assert by_priority == by_footprint

    def test_stale_priorities_remain_comparable(self):
        """Entries written at different miss counts order correctly
        without being rewritten (the whole point of the scheme)."""
        scheme = make(LFFScheme)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 100)  # big footprint, written at m=100
        for _ in range(5):  # five more intervals decay thread 1
            scheme.on_dispatch(0, 2)
            scheme.on_block(0, 2, 30)
        # thread 2's entry is fresh, thread 1's is stale
        fp1 = scheme.current_footprint(0, 1)
        fp2 = scheme.current_footprint(0, 2)
        p1 = scheme.entry(0, 1).priority
        p2 = scheme.entry(0, 2).priority
        assert (p1 < p2) == (fp1 < fp2)


class TestCRTOrdering:
    def test_blocker_priority_is_minus_m_log_k(self):
        scheme = make(CRTScheme)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 50)
        expected = 50 * -scheme.tables.log_k
        assert scheme.entry(0, 1).priority == pytest.approx(expected)

    def test_priority_order_matches_reload_ratio(self):
        """Higher priority = lower expected cache-reload ratio."""
        graph = SharingGraph()
        graph.share(1, 2, 0.6)
        scheme = make(CRTScheme, graph=graph)
        # give both 1 and 3 footprints and last-execution baselines
        scheme.on_dispatch(0, 3)
        scheme.on_block(0, 3, 80)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 60)

        def ratio(tid):
            entry = scheme.entry(0, tid)
            if entry.last_footprint == 0:
                return 0.0
            current = scheme.current_footprint(0, tid)
            return (entry.last_footprint - current) / entry.last_footprint

        tids = [1, 3]
        by_priority = sorted(
            tids, key=lambda t: scheme.entry(0, t).priority, reverse=True
        )
        by_ratio = sorted(tids, key=ratio)
        assert by_priority == by_ratio

    def test_last_footprint_set_on_block(self):
        scheme = make(CRTScheme)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        entry = scheme.entry(0, 1)
        assert entry.last_footprint == pytest.approx(entry.footprint)


class TestTable3Costs:
    def test_lff_costs_are_single_digit(self):
        graph = SharingGraph()
        graph.share(1, 2, 0.5)
        scheme = make(LFFScheme, graph=graph)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        costs = scheme.cost.per_update()
        assert 0 < costs["blocking"] < 10
        assert 0 < costs["dependent"] < 10
        assert costs["independent"] == 0.0

    def test_crt_blocking_cheaper_than_dependent(self):
        graph = SharingGraph()
        graph.share(1, 2, 0.5)
        scheme = make(CRTScheme, graph=graph)
        scheme.on_dispatch(0, 1)
        scheme.on_block(0, 1, 40)
        costs = scheme.cost.per_update()
        assert costs["blocking"] < costs["dependent"]
