"""Tests for the Appendix Markov-chain derivation."""

import numpy as np
import pytest

from repro.core.markov import (
    dependent_transition_matrix,
    distribution_after,
    expected_footprint_markov,
    stationary_distribution,
)
from repro.core.model import SharedStateModel


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        m = dependent_transition_matrix(20, 0.3)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_tridiagonal(self):
        m = dependent_transition_matrix(10, 0.5)
        for i in range(11):
            for j in range(11):
                if abs(i - j) > 1:
                    assert m[i, j] == 0.0

    def test_paper_transition_probabilities(self):
        n, q, i = 16, 0.25, 5
        m = dependent_transition_matrix(n, q)
        assert m[i, i + 1] == pytest.approx(q * (n - i) / n)
        assert m[i, i - 1] == pytest.approx((1 - q) * i / n)
        assert m[i, i] == pytest.approx(q * i / n + (1 - q) * (n - i) / n)

    def test_q1_never_shrinks(self):
        m = dependent_transition_matrix(8, 1.0)
        assert np.all(np.diag(m, k=-1) == 0.0)

    def test_q0_never_grows(self):
        m = dependent_transition_matrix(8, 0.0)
        assert np.all(np.diag(m, k=1) == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dependent_transition_matrix(0, 0.5)
        with pytest.raises(ValueError):
            dependent_transition_matrix(8, 1.5)


class TestExpectationEqualsClosedForm:
    """The Appendix telescoping: E_n[F_C] = qN - (qN - S_C) k^n."""

    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.75, 1.0])
    @pytest.mark.parametrize("initial", [0, 10, 32])
    def test_matches_model(self, q, initial):
        n_cache, misses = 32, 40
        model = SharedStateModel(n_cache)
        exact = expected_footprint_markov(n_cache, q, initial, misses)
        closed = model.expected_dependent(float(initial), q, misses)
        assert exact == pytest.approx(closed, abs=1e-9)

    def test_matrix_power_agrees_with_recurrence(self):
        n_cache, q, initial, misses = 12, 0.4, 3, 15
        m = dependent_transition_matrix(n_cache, q)
        power = np.linalg.matrix_power(m, misses)
        by_matrix = float(power[initial] @ np.arange(n_cache + 1))
        by_recurrence = expected_footprint_markov(n_cache, q, initial, misses)
        assert by_matrix == pytest.approx(by_recurrence, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_footprint_markov(8, 0.5, 9, 1)
        with pytest.raises(ValueError):
            expected_footprint_markov(8, 0.5, 1, -1)


class TestDistribution:
    def test_distribution_sums_to_one(self):
        pi = distribution_after(16, 0.3, 4, 25)
        assert pi.sum() == pytest.approx(1.0)

    def test_point_mass_at_zero_misses(self):
        pi = distribution_after(16, 0.3, 4, 0)
        assert pi[4] == pytest.approx(1.0)

    def test_mean_matches_expectation(self):
        n_cache, q, s0, misses = 16, 0.6, 2, 30
        pi = distribution_after(n_cache, q, s0, misses)
        mean = float(pi @ np.arange(n_cache + 1))
        assert mean == pytest.approx(
            expected_footprint_markov(n_cache, q, s0, misses), abs=1e-9
        )


class TestStationary:
    def test_is_binomial_mean(self):
        n_cache, q = 64, 0.3
        pi = stationary_distribution(n_cache, q)
        mean = float(pi @ np.arange(n_cache + 1))
        assert mean == pytest.approx(q * n_cache)

    def test_invariant_under_transition(self):
        n_cache, q = 24, 0.45
        pi = stationary_distribution(n_cache, q)
        m = dependent_transition_matrix(n_cache, q)
        assert np.allclose(pi @ m, pi, atol=1e-12)

    def test_degenerate_q(self):
        pi0 = stationary_distribution(8, 0.0)
        assert pi0[0] == pytest.approx(1.0)
        pi1 = stationary_distribution(8, 1.0)
        assert pi1[-1] == pytest.approx(1.0)


class TestFootprintSpread:
    def test_zero_misses_zero_spread(self):
        from repro.core.markov import footprint_std

        assert footprint_std(32, 0.5, 10, 0) == pytest.approx(0.0)

    def test_converges_to_binomial_spread(self):
        from repro.core.markov import footprint_std

        n_cache, q = 64, 0.3
        long_run = footprint_std(n_cache, q, 5, 2000)
        assert long_run == pytest.approx(
            np.sqrt(n_cache * q * (1 - q)), rel=0.05
        )

    def test_spread_small_relative_to_cache(self):
        """The justification for scheduling on expectations: the relative
        spread shrinks as 1/sqrt(N)."""
        from repro.core.markov import footprint_std

        small = footprint_std(64, 0.5, 0, 5000) / 64
        large = footprint_std(512, 0.5, 0, 50_000) / 512
        assert large < small
