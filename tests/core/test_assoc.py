"""Tests for the W-way associative model extension."""

import numpy as np
import pytest

from repro.core.assoc import AssocTables, AssociativeStateModel
from repro.core.model import SharedStateModel
from repro.machine.cache import SetAssociativeCache


class TestReduction:
    """W = 1 must reduce exactly to the paper's direct-mapped model."""

    @pytest.mark.parametrize("misses", [0, 1, 10, 100, 1000])
    def test_case2_equals_direct_mapped(self, misses):
        assoc = AssociativeStateModel(256, 1)
        direct = SharedStateModel(256)
        assert assoc.expected_independent(100, misses) == pytest.approx(
            direct.expected_independent(100, misses), rel=1e-9
        )

    @pytest.mark.parametrize("q", [0.0, 0.3, 1.0])
    def test_case3_equals_direct_mapped(self, q):
        assoc = AssociativeStateModel(256, 1)
        direct = SharedStateModel(256)
        assert assoc.expected_dependent(50, q, 80) == pytest.approx(
            direct.expected_dependent(50, q, 80), rel=1e-9
        )


class TestSurvival:
    def test_survival_at_zero_misses_is_one(self):
        model = AssociativeStateModel(256, 4)
        assert model.survival(0) == pytest.approx(1.0)

    def test_survival_decreases_with_misses(self):
        model = AssociativeStateModel(256, 4)
        values = [model.survival(n) for n in (0, 100, 500, 2000)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_more_ways_survive_longer_at_moderate_pressure(self):
        """LRU protection: while per-set miss pressure stays below the
        W-1 tolerance, survival grows with associativity."""
        n = 100
        values = [
            AssociativeStateModel(256, w).survival(n) for w in (1, 2, 4)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_ordering_inverts_under_heavy_pressure(self):
        """With few sets, heavy traffic concentrates: very high
        associativity eventually survives *worse* -- the trade-off the
        closed form captures."""
        n = 2000
        assert (
            AssociativeStateModel(256, 16).survival(n)
            < AssociativeStateModel(256, 2).survival(n)
        )

    def test_survival_vectorised(self):
        model = AssociativeStateModel(256, 2)
        out = model.survival(np.asarray([0, 10, 100]))
        assert out.shape == (3,)
        assert out[0] == pytest.approx(1.0)

    def test_negative_misses_rejected(self):
        with pytest.raises(ValueError):
            AssociativeStateModel(256, 2).survival(-1)


class TestValidation:
    def test_ways_must_divide_lines(self):
        with pytest.raises(ValueError):
            AssociativeStateModel(256, 3)

    def test_footprint_range_checked(self):
        model = AssociativeStateModel(256, 2)
        with pytest.raises(ValueError):
            model.expected_independent(300, 10)
        with pytest.raises(ValueError):
            model.expected_dependent(10, 1.5, 10)

    def test_num_sets(self):
        assert AssociativeStateModel(256, 4).num_sets == 64


class TestAgainstSimulation:
    def test_beats_direct_mapped_model_on_assoc_cache(self):
        """The extension's reason to exist: on a 4-way cache its decay
        prediction is closer to simulated truth than the paper's k**n."""
        n_lines, ways = 256, 4
        num_sets = n_lines // ways
        rng = np.random.default_rng(1)
        # one sleeper line per set: the clean regime of the derivation
        sleeper = np.arange(10_000, 10_000 + num_sets)
        survived = []
        misses = 150
        for _ in range(30):
            cache = SetAssociativeCache(n_lines * 64, 64, ways=ways)
            cache.access(sleeper)
            walk = rng.integers(20_000, 500_000, size=misses).astype(np.int64)
            cache.access(walk)
            resident = set(cache.resident_lines().tolist())
            survived.append(len(resident & set(sleeper.tolist())))
        truth = float(np.mean(survived))
        assoc = AssociativeStateModel(n_lines, ways).expected_independent(
            num_sets, misses
        )
        direct = SharedStateModel(n_lines).expected_independent(
            num_sets, misses
        )
        assert abs(assoc - truth) < abs(direct - truth)

    def test_half_life_longer_with_ways(self):
        h1 = AssociativeStateModel(256, 1).half_life()
        h4 = AssociativeStateModel(256, 4).half_life()
        assert h4 > h1


class TestAssocTables:
    def test_lookup_matches_model(self):
        tables = AssocTables(256, 4, max_misses=500)
        model = AssociativeStateModel(256, 4)
        for n in (0, 50, 499):
            assert tables.survival(n) == pytest.approx(model.survival(n))

    def test_beyond_horizon_is_zero(self):
        tables = AssocTables(256, 4, max_misses=100)
        assert tables.survival(101) == 0.0

    def test_negative_rejected(self):
        tables = AssocTables(256, 2, max_misses=10)
        with pytest.raises(ValueError):
            tables.survival(-1)

    def test_table_overhead_reported(self):
        tables = AssocTables(256, 4, max_misses=1000)
        assert tables.table_bytes == 1001 * 8
