"""PrecomputedTables at the boundaries, cross-checked against math.log.

The priority schemes lean on two lookup tables (section 4.1): powers of
``k = (N-1)/N`` and logs of integer footprints.  These tests pin the
edge behaviour the schemes silently rely on -- n = 0, indices at and
past the table end, and footprints clamped into [1, N] -- against direct
``math.log`` / ``math.pow`` computation.
"""

import math

import pytest

from repro.core.model import SharedStateModel
from repro.core.priorities import LFFScheme, PrecomputedTables
from repro.core.sharing import SharingGraph


class TestPowK:
    def test_n_zero_is_exactly_one(self):
        for num_lines in (2, 3, 16, 256):
            assert PrecomputedTables(num_lines).pow_k(0) == 1.0

    def test_matches_direct_math_across_the_table(self):
        tables = PrecomputedTables(16)
        k = 15.0 / 16.0
        for n in (1, 2, 7, 100, tables.max_power):
            assert tables.pow_k(n) == pytest.approx(
                math.pow(k, n), rel=1e-12
            )

    def test_last_table_entry_then_zero(self):
        tables = PrecomputedTables(8)
        assert tables.max_power == 16 * 8
        assert tables.pow_k(tables.max_power) > 0.0
        assert tables.pow_k(tables.max_power + 1) == 0.0
        assert tables.pow_k(10**9) == 0.0

    def test_beyond_table_cutoff_is_a_sound_approximation(self):
        """k**(max_power) is already ~1e-7, so treating everything past
        the table as 0 underestimates by a negligible amount."""
        tables = PrecomputedTables(64)
        k = 63.0 / 64.0
        assert math.pow(k, tables.max_power) < 1e-6

    def test_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            PrecomputedTables(8).pow_k(-1)


class TestLogFootprint:
    def test_matches_math_log_on_every_integer(self):
        tables = PrecomputedTables(32)
        for footprint in range(1, 33):
            assert tables.log_footprint(footprint) == pytest.approx(
                math.log(footprint), rel=1e-12
            )

    def test_zero_footprint_clamps_to_one(self):
        tables = PrecomputedTables(8)
        assert tables.log_footprint(0.0) == pytest.approx(math.log(1))
        assert tables.log_footprint(-3.0) == pytest.approx(math.log(1))

    def test_above_table_clamps_to_n(self):
        tables = PrecomputedTables(8)
        assert tables.log_footprint(8.0) == pytest.approx(math.log(8))
        assert tables.log_footprint(9.7) == pytest.approx(math.log(8))
        assert tables.log_footprint(10**6) == pytest.approx(math.log(8))

    def test_fractional_footprints_round_to_nearest_line(self):
        tables = PrecomputedTables(16)
        assert tables.log_footprint(3.4) == pytest.approx(math.log(3))
        assert tables.log_footprint(3.6) == pytest.approx(math.log(4))


class TestConstruction:
    def test_q_like_extremes_of_k(self):
        """The smallest legal cache (N=2, k=1/2) and a large one agree
        with direct math at both ends of the table."""
        small = PrecomputedTables(2)
        assert small.k == 0.5
        assert small.pow_k(1) == 0.5
        assert small.pow_k(small.max_power) == pytest.approx(
            0.5 ** small.max_power
        )
        big = PrecomputedTables(256)
        assert big.log_k == pytest.approx(math.log(255 / 256))

    def test_single_line_cache_rejected(self):
        with pytest.raises(ValueError):
            PrecomputedTables(1)

    def test_custom_max_power_honoured(self):
        tables = PrecomputedTables(8, max_power=4)
        assert tables.pow_k(4) > 0.0
        assert tables.pow_k(5) == 0.0


class TestSchemeAtQExtremes:
    """LFF priorities at q = 0 and q = 1, cross-checked against direct
    math through the same tables the paper precomputes."""

    def test_q_one_dependent_matches_case_1_math(self):
        num_lines, n, k = 16, 8, 15.0 / 16.0
        graph = SharingGraph()
        graph.share(1, 2, 1.0)
        scheme = LFFScheme(SharedStateModel(num_lines), graph, num_cpus=1)
        scheme.on_dispatch(0, 1)
        assert scheme.on_block(0, 1, interval_misses=n) == 2
        expected_fp = num_lines - num_lines * math.pow(k, n)  # s0 = 0
        entry = scheme.entry(0, 2)
        assert entry.footprint == pytest.approx(expected_fp, rel=1e-12)
        expected_priority = math.log(round(expected_fp)) - n * math.log(k)
        assert entry.priority == pytest.approx(expected_priority, rel=1e-12)

    def test_q_zero_means_no_edge_and_no_touch(self):
        """``share(q=0)`` removes the edge entirely, so the 'dependent'
        is independent: the O(d) update must leave it bit-identical."""
        graph = SharingGraph()
        graph.share(1, 2, 0.5)
        graph.share(1, 2, 0.0)  # re-annotation to q=0 deletes the edge
        assert graph.dependents(1) == []
        scheme = LFFScheme(SharedStateModel(16), graph, num_cpus=1)
        scheme.on_dispatch(0, 2)
        scheme.on_block(0, 2, interval_misses=4)
        before = (scheme.entry(0, 2).priority, scheme.entry(0, 2).version)
        scheme.on_dispatch(0, 1)
        assert scheme.on_block(0, 1, interval_misses=8) == 1
        assert (
            scheme.entry(0, 2).priority,
            scheme.entry(0, 2).version,
        ) == before
