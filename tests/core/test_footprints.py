"""Tests for the lazy-decay footprint estimator."""

import pytest

from repro.core.footprints import FootprintEstimator
from repro.core.model import SharedStateModel
from repro.core.sharing import SharingGraph


@pytest.fixture
def est(model, graph):
    return FootprintEstimator(model, graph, num_cpus=2)


class TestBlockerUpdates:
    def test_matches_case1(self, est, model):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        assert est.footprint(0, 1) == pytest.approx(model.expected_running(0, 40))

    def test_successive_intervals_compose(self, est, model):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        first = est.footprint(0, 1)
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 10)
        assert est.footprint(0, 1) == pytest.approx(
            model.expected_running(first, 10)
        )

    def test_block_without_dispatch_rejected(self, est):
        with pytest.raises(RuntimeError):
            est.on_block(0, 1, 5)

    def test_block_wrong_thread_rejected(self, est):
        est.on_dispatch(0, 1)
        with pytest.raises(RuntimeError):
            est.on_block(0, 2, 5)

    def test_negative_misses_rejected(self, est):
        est.on_dispatch(0, 1)
        with pytest.raises(ValueError):
            est.on_block(0, 1, -1)


class TestLazyDecay:
    def test_independent_thread_decays(self, est, model):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        s = est.footprint(0, 1)
        est.on_dispatch(0, 2)
        est.on_block(0, 2, 25)
        assert est.footprint(0, 1) == pytest.approx(
            model.expected_independent(s, 25)
        )

    def test_unknown_thread_has_zero_footprint(self, est):
        assert est.footprint(0, 42) == 0.0

    def test_cumulative_misses_per_cpu(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        assert est.cumulative_misses(0) == 40
        assert est.cumulative_misses(1) == 0

    def test_cpus_are_independent(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        assert est.footprint(1, 1) == 0.0


class TestDependentUpdates:
    def test_matches_case3(self, model, graph):
        graph.share(1, 2, 0.5)
        est = FootprintEstimator(model, graph, num_cpus=1)
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        assert est.footprint(0, 2) == pytest.approx(
            model.expected_dependent(0, 0.5, 40)
        )

    def test_only_out_edges_update(self, model, graph):
        graph.share(2, 1, 0.5)  # 1 depends on 2, not vice versa
        est = FootprintEstimator(model, graph, num_cpus=1)
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 40)
        assert est.footprint(0, 2) == 0.0

    def test_dependent_decays_before_dependent_update(self, model, graph):
        """A dependent's stale value is first decayed to the interval
        start, then the case-3 update is applied."""
        graph.share(1, 2, 0.5)
        est = FootprintEstimator(model, graph, num_cpus=1)
        # give thread 2 its own state first
        est.on_dispatch(0, 2)
        est.on_block(0, 2, 30)
        s2 = est.footprint(0, 2)
        # an unrelated interval decays it
        est.on_dispatch(0, 3)
        est.on_block(0, 3, 20)
        decayed = model.expected_independent(s2, 20)
        # now thread 1 runs: dependent update from the decayed base
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 10)
        assert est.footprint(0, 2) == pytest.approx(
            model.expected_dependent(decayed, 0.5, 10)
        )


class TestMaintenance:
    def test_footprints_on(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 5)
        table = est.footprints_on(0)
        assert set(table) == {1}

    def test_forget(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 5)
        est.forget(1)
        assert est.footprint(0, 1) == 0.0

    def test_prune_drops_small_entries(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 100)
        est.on_dispatch(0, 2)
        est.on_block(0, 2, 2)
        victims = est.prune(0, threshold=5.0)
        assert victims == [2]
        assert est.footprint(0, 2) == 0.0
        assert est.footprint(0, 1) > 0

    def test_best_cpu(self, est):
        est.on_dispatch(0, 1)
        est.on_block(0, 1, 10)
        est.on_dispatch(1, 1)
        est.on_block(1, 1, 50)
        assert est.best_cpu(1) == 1
        assert est.best_cpu(99) is None
