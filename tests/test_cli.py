"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "tasks"])
        assert args.policy == "lff"
        assert args.cpus == 1
        assert not args.paper_scale

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nonesuch"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_faults_run_defaults(self):
        args = build_parser().parse_args(["faults", "run"])
        assert args.workload == "all"
        assert args.fault == "all"
        assert args.scale == "smoke"

    def test_faults_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])


class TestCommands:
    def test_model_command(self, capsys):
        assert main(["model", "--lines", "256", "--initial", "50",
                     "--q", "0.5", "--misses", "0", "100"]) == 0
        out = capsys.readouterr().out
        assert "running (case 1)" in out
        assert "n=100" in out

    def test_run_command_small(self, capsys):
        # keep it quick: the small default tasks workload on one cpu
        assert main(["run", "--workload", "tsp", "--policy", "fcfs"]) == 0
        out = capsys.readouterr().out
        assert "tsp" in out
        assert "E-misses" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "--app", "fmm"]) == 0
        out = capsys.readouterr().out
        assert "fmm" in out
        assert "pred/obs" in out

    def test_compare_command(self, capsys):
        assert main(["compare", "--workload", "tsp"]) == 0
        out = capsys.readouterr().out
        assert "fcfs" in out and "lff" in out and "crt" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out

    def test_faults_run_command(self, capsys):
        # one workload x one fault class x one policy keeps it quick
        assert main(["faults", "run", "--workload", "tasks",
                     "--fault", "counter_zero", "--policy", "fcfs"]) == 0
        out = capsys.readouterr().out
        assert "counter_zero" in out
        assert "identical" in out
        assert "honoured the hint contract" in out
