"""The noise-aware compare gate: pass/fail boundaries pinned exactly."""

import pytest

from repro.bench.compare import compare, format_comparison
from repro.bench.runner import BenchResult, SuiteResult
from repro.bench.stats import Stats


def _stats(median, spread=0.0):
    """Stats with a given median and relative p10-p90 spread."""
    half = 0.5 * spread * median
    return Stats(
        repeats=5,
        median_s=median,
        p10_s=median - half,
        p90_s=median + half,
        mean_s=median,
        stddev_s=0.0,
        min_s=median - half,
        max_s=median + half,
        total_s=5 * median,
        steady=True,
    )


def _suite(name="smoke", **medians):
    results = []
    for bench, value in medians.items():
        if isinstance(value, tuple):
            median, spread = value
        else:
            median, spread = value, 0.0
        results.append(
            BenchResult(
                name=bench,
                ops=100,
                stats=_stats(median, spread),
                counters={},
            )
        )
    return SuiteResult(suite=name, results=tuple(results))


def test_change_exactly_at_threshold_passes():
    base = _suite(b=0.100)
    new = _suite(b=0.125)  # +25.000000...%
    result = compare(base, new, max_regress=0.25, noise_aware=False)
    (delta,) = result.deltas
    assert delta.change == pytest.approx(0.25)
    assert not delta.regressed
    assert result.ok


def test_change_just_over_threshold_fails():
    base = _suite(b=0.100)
    new = _suite(b=0.1251)
    result = compare(base, new, max_regress=0.25, noise_aware=False)
    (delta,) = result.deltas
    assert delta.regressed
    assert not result.ok
    assert result.regressions == (delta,)


def test_improvement_never_fails():
    result = compare(
        _suite(b=0.100), _suite(b=0.050), max_regress=0.0, noise_aware=False
    )
    assert result.ok
    assert result.deltas[0].change == pytest.approx(-0.5)


def test_noise_widens_the_allowance():
    # 35% slower, 25% threshold: fails when quiet ...
    base = _suite(b=(0.100, 0.0))
    new = _suite(b=(0.135, 0.0))
    assert not compare(base, new, max_regress=0.25).ok
    # ... passes when each side carries 12% spread (threshold becomes
    # 0.25 + 0.5*0.12 + 0.5*0.12 = 0.37)
    base = _suite(b=(0.100, 0.12))
    new = _suite(b=(0.135, 0.12))
    result = compare(base, new, max_regress=0.25)
    (delta,) = result.deltas
    assert delta.allowed == pytest.approx(0.37)
    assert result.ok


def test_noise_aware_off_ignores_spread():
    base = _suite(b=(0.100, 0.12))
    new = _suite(b=(0.135, 0.12))
    result = compare(base, new, max_regress=0.25, noise_aware=False)
    assert result.deltas[0].allowed == pytest.approx(0.25)
    assert not result.ok


def test_benchmark_missing_from_new_run_fails():
    base = _suite(a=0.1, b=0.1)
    new = _suite(a=0.1)
    result = compare(base, new, max_regress=1.0)
    assert not result.ok
    (missing,) = result.regressions
    assert missing.name == "b"
    assert missing.missing == "new"


def test_benchmark_missing_from_baseline_is_informational():
    base = _suite(a=0.1)
    new = _suite(a=0.1, b=0.1)
    result = compare(base, new, max_regress=1.0)
    assert result.ok
    by_name = {d.name: d for d in result.deltas}
    assert by_name["b"].missing == "baseline"
    assert not by_name["b"].regressed


def test_negative_threshold_rejected():
    with pytest.raises(ValueError):
        compare(_suite(a=0.1), _suite(a=0.1), max_regress=-0.1)


def test_format_comparison_mentions_verdicts():
    base = _suite(a=0.1, b=0.1, c=0.1)
    new = _suite(a=0.1, b=0.5, d=0.1)
    text = format_comparison(compare(base, new, max_regress=0.25))
    assert "REGRESSED" in text
    assert "MISSING (fail)" in text
    assert "new (no baseline)" in text
    assert "2 regression(s)" in text


def test_zero_median_baseline_is_inconclusive_and_fails():
    # the old gate computed change=0 here and passed vacuously
    base = _suite(b=0.0)
    new = _suite(b=0.100)
    result = compare(base, new, max_regress=0.25)
    (delta,) = result.deltas
    assert delta.inconclusive
    assert delta.change is None and delta.allowed is None
    assert not delta.regressed  # not a *regression* -- a non-measurement
    assert not result.ok
    assert result.inconclusives == (delta,)


def test_zero_median_new_run_is_inconclusive_and_fails():
    result = compare(_suite(b=0.100), _suite(b=0.0), max_regress=0.25)
    assert result.deltas[0].inconclusive
    assert not result.ok


def test_inconclusive_does_not_mask_other_benchmarks():
    base = _suite(a=0.100, z=0.0)
    new = _suite(a=0.110, z=0.0)
    result = compare(base, new, max_regress=0.25)
    by_name = {d.name: d for d in result.deltas}
    assert not by_name["a"].inconclusive
    assert not by_name["a"].regressed
    assert by_name["z"].inconclusive
    assert not result.ok


def test_format_comparison_mentions_inconclusive():
    text = format_comparison(
        compare(_suite(b=0.0), _suite(b=0.0), max_regress=0.25)
    )
    assert "INCONCLUSIVE (fail)" in text
    assert "1 inconclusive" in text
