"""BENCH_<suite>.json round-trips and validation."""

import json

import pytest

from repro.bench.runner import BenchResult, SuiteResult
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    default_baseline_path,
    load_suite,
    suite_from_dict,
    suite_to_dict,
    write_suite,
)
from repro.bench.stats import Stats


def _result():
    stats = Stats(
        repeats=7,
        median_s=0.010,
        p10_s=0.009,
        p90_s=0.012,
        mean_s=0.0105,
        stddev_s=0.001,
        min_s=0.009,
        max_s=0.013,
        total_s=0.0735,
        steady=True,
    )
    return SuiteResult(
        suite="smoke",
        results=(
            BenchResult(
                name="cache_sweep",
                ops=4096,
                stats=stats,
                counters={"refs": 4096.0, "sim_misses": 512.0},
            ),
        ),
    )


def test_round_trip_through_dict():
    original = _result()
    restored = suite_from_dict(suite_to_dict(original))
    assert restored.suite == original.suite
    (a,), (b,) = original.results, restored.results
    assert a.name == b.name
    assert a.ops == b.ops
    assert a.stats == b.stats
    assert dict(a.counters) == dict(b.counters)
    assert a.ops_per_s == pytest.approx(b.ops_per_s)
    assert a.counter_rates == b.counter_rates


def test_round_trip_through_file(tmp_path):
    path = str(tmp_path / "BENCH_smoke.json")
    write_suite(path, _result())
    restored = load_suite(path)
    assert restored == _result()


def test_written_file_is_stable_and_newline_terminated(tmp_path):
    path = str(tmp_path / "BENCH_smoke.json")
    write_suite(path, _result())
    text = open(path).read()
    assert text.endswith("\n")
    # sorted keys: a rewrite of the same result is byte-identical
    write_suite(path, _result())
    assert open(path).read() == text
    doc = json.loads(text)
    assert doc["schema"] == SCHEMA_VERSION
    assert "cache_sweep" in doc["benchmarks"]


def test_unknown_schema_version_rejected():
    doc = suite_to_dict(_result())
    doc["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaError, match="schema version"):
        suite_from_dict(doc)


def test_missing_float_field_rejected():
    doc = suite_to_dict(_result())
    del doc["benchmarks"]["cache_sweep"]["median_s"]
    with pytest.raises(SchemaError, match="median_s"):
        suite_from_dict(doc)


def test_boolean_is_not_a_number():
    doc = suite_to_dict(_result())
    doc["benchmarks"]["cache_sweep"]["median_s"] = True
    with pytest.raises(SchemaError, match="median_s"):
        suite_from_dict(doc)


def test_bad_repeats_rejected():
    doc = suite_to_dict(_result())
    doc["benchmarks"]["cache_sweep"]["repeats"] = 0
    with pytest.raises(SchemaError, match="repeats"):
        suite_from_dict(doc)


def test_bad_counter_value_rejected():
    doc = suite_to_dict(_result())
    doc["benchmarks"]["cache_sweep"]["counters"]["refs"] = "many"
    with pytest.raises(SchemaError, match="refs"):
        suite_from_dict(doc)


def test_invalid_json_file_reports_path(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(SchemaError, match="broken.json"):
        load_suite(str(path))


def test_default_baseline_path():
    assert default_baseline_path("smoke") == "BENCH_smoke.json"
