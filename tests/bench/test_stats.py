"""Timer/repeat plumbing on a deterministic fake clock."""

import pytest

from repro.bench.stats import (
    ONCE,
    RepeatPolicy,
    collect,
    percentile,
    relative_spread,
    summarize,
)


class FakeClock:
    """A clock that returns scripted instants, one per call."""

    def __init__(self, instants):
        self._instants = list(instants)
        self.calls = 0

    def __call__(self):
        value = self._instants[self.calls]
        self.calls += 1
        return value


def script(durations, start=100.0, gap=0.0):
    """Clock instants producing exactly ``durations`` as samples."""
    instants = []
    now = start
    for d in durations:
        instants.append(now)
        now += d
        instants.append(now)
        now += gap
    return instants


# -- percentile / spread ------------------------------------------------------


def test_percentile_interpolates_linearly():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 100.0) == 4.0
    assert percentile(samples, 50.0) == pytest.approx(2.5)
    assert percentile(samples, 25.0) == pytest.approx(1.75)


def test_percentile_is_order_independent():
    assert percentile([4.0, 1.0, 3.0, 2.0], 50.0) == percentile(
        [1.0, 2.0, 3.0, 4.0], 50.0
    )


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_relative_spread_of_constant_samples_is_zero():
    assert relative_spread([2.0, 2.0, 2.0]) == 0.0


# -- summarize ---------------------------------------------------------------


def test_summarize_fields():
    stats = summarize([1.0, 2.0, 3.0], steady=True)
    assert stats.repeats == 3
    assert stats.median_s == 2.0
    assert stats.min_s == 1.0
    assert stats.max_s == 3.0
    assert stats.total_s == 6.0
    assert stats.mean_s == pytest.approx(2.0)
    assert stats.steady is True


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


# -- policy validation -------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RepeatPolicy(min_repeats=0)
    with pytest.raises(ValueError):
        RepeatPolicy(min_repeats=5, max_repeats=4)
    with pytest.raises(ValueError):
        RepeatPolicy(warmup=-1)
    with pytest.raises(ValueError):
        RepeatPolicy(steady_window=1)


# -- collect -----------------------------------------------------------------


def test_collect_times_exactly_the_scripted_samples():
    durations = [0.010, 0.012, 0.011, 0.010, 0.011]
    clock = FakeClock(script(durations))
    policy = RepeatPolicy(
        warmup=0, min_repeats=5, max_repeats=5, time_budget_s=100.0
    )
    calls = []
    stats, counters = collect(lambda: calls.append(1), clock, policy)
    assert stats.repeats == 5
    assert stats.median_s == pytest.approx(0.011)
    assert stats.total_s == pytest.approx(sum(durations))
    assert len(calls) == 5
    assert counters == {}


def test_collect_warmup_calls_are_untimed():
    durations = [0.010, 0.010, 0.010]
    clock = FakeClock(script(durations))
    policy = RepeatPolicy(
        warmup=2, min_repeats=3, max_repeats=3, time_budget_s=100.0
    )
    calls = []
    stats, _ = collect(lambda: calls.append(1), clock, policy)
    # 2 warmup + 3 timed calls, but only 3 samples and 6 clock reads
    assert len(calls) == 5
    assert stats.repeats == 3
    assert clock.calls == 6


def test_collect_stops_when_steady():
    # noisy head, then a perfectly flat tail: the steady-state detector
    # must fire at the first all-flat trailing window
    durations = [0.030, 0.010, 0.010, 0.010, 0.010, 0.010] + [0.010] * 20
    clock = FakeClock(script(durations))
    policy = RepeatPolicy(
        warmup=0,
        min_repeats=2,
        max_repeats=26,
        time_budget_s=100.0,
        steady_window=5,
        steady_rel_spread=0.05,
    )
    stats, _ = collect(lambda: None, clock, policy)
    assert stats.steady is True
    # the 0.030 outlier leaves the 5-sample window after sample 6
    assert stats.repeats == 6


def test_collect_steady_detector_disabled_runs_to_budget():
    durations = [0.010] * 10
    clock = FakeClock(script(durations))
    policy = RepeatPolicy(
        warmup=0,
        min_repeats=2,
        max_repeats=10,
        time_budget_s=0.035,
        steady_rel_spread=0.0,
    )
    stats, _ = collect(lambda: None, clock, policy)
    assert stats.steady is False
    # budget exhausts after the 4th sample (0.04 >= 0.035)
    assert stats.repeats == 4


def test_collect_min_repeats_overrides_budget():
    # every sample blows the budget, but min_repeats still get taken
    durations = [1.0] * 3
    clock = FakeClock(script(durations))
    policy = RepeatPolicy(
        warmup=0, min_repeats=3, max_repeats=10, time_budget_s=0.5
    )
    stats, _ = collect(lambda: None, clock, policy)
    assert stats.repeats == 3


def test_collect_counters_come_from_last_call():
    seq = iter([{"misses": 1.0}, {"misses": 2.0}, {"misses": 3.0}])
    clock = FakeClock(script([0.01] * 3))
    policy = RepeatPolicy(
        warmup=0, min_repeats=3, max_repeats=3, time_budget_s=100.0
    )
    _, counters = collect(lambda: next(seq), clock, policy)
    assert counters == {"misses": 3.0}


def test_collect_rejects_backwards_clock():
    clock = FakeClock([10.0, 9.0])
    policy = RepeatPolicy(
        warmup=0, min_repeats=1, max_repeats=1, time_budget_s=1.0
    )
    with pytest.raises(ValueError):
        collect(lambda: None, clock, policy)


def test_once_policy_single_sample():
    clock = FakeClock(script([0.5]))
    stats, _ = collect(lambda: None, clock, ONCE)
    assert stats.repeats == 1
    assert stats.median_s == pytest.approx(0.5)
    assert stats.steady is False


class TestDegenerateSpread:
    def test_zero_median_spread_is_none_not_zero(self):
        # 0 would read as "perfectly quiet"; the degenerate case must be
        # explicit so compare treats it as inconclusive
        assert relative_spread([0.0, 0.0, 0.0]) is None

    def test_negative_median_spread_is_none(self):
        assert relative_spread([-2.0, -1.0, 1.0]) is None

    def test_boundary_just_above_zero_is_measurable(self):
        spread = relative_spread([1e-12, 1e-12, 1e-12])
        assert spread == 0.0

    def test_stats_rel_spread_mirrors_the_contract(self):
        assert summarize([0.0, 0.0, 0.0]).rel_spread is None
        assert summarize([2.0, 2.0, 2.0]).rel_spread == 0.0

    def test_all_zero_window_never_declares_steady(self):
        policy = RepeatPolicy(
            warmup=0,
            min_repeats=2,
            max_repeats=6,
            time_budget_s=1e9,
            steady_window=2,
            steady_rel_spread=0.10,
        )
        clock = FakeClock([0.0] * 64)  # every sample measures 0.0
        stats, _ = collect(lambda: None, clock, policy)
        assert not stats.steady
        assert stats.repeats == policy.max_repeats
