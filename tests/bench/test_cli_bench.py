"""Exit codes and file behaviour of ``repro bench run|compare|update-baseline``.

A tiny private suite (one no-op benchmark, single-shot policy) is
registered once for this module so the CLI paths that *run* a suite do
real work without paying for the shipped smoke suite.
"""

import json

import pytest

from repro.bench.registry import register
from repro.bench.schema import load_suite
from repro.bench.stats import ONCE
from repro.cli import _parse_regress, main

_SUITE = "clitest"


@register("clitest_noop", suites=(_SUITE,), ops=10, policy=ONCE)
def _noop_benchmark():
    def run():
        return {"widgets": 10.0}

    return run


# -- threshold parsing -------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [("40%", 0.4), ("40", 0.4), ("0.4", 0.4), ("25%", 0.25), ("150", 1.5)],
)
def test_parse_regress(text, expected):
    assert _parse_regress(text) == pytest.approx(expected)


def test_parse_regress_rejects_negative():
    with pytest.raises(ValueError):
        _parse_regress("-5%")


# -- bench run ---------------------------------------------------------------


def test_run_writes_json(tmp_path, capsys):
    out = str(tmp_path / "BENCH_clitest.json")
    assert main(["bench", "run", "--suite", _SUITE, "--out", out]) == 0
    suite = load_suite(out)
    assert suite.suite == _SUITE
    assert suite.by_name()["clitest_noop"].counters == {"widgets": 10.0}
    stdout = capsys.readouterr().out
    assert "clitest_noop" in stdout
    assert f"wrote {out}" in stdout


def test_run_unknown_suite_exits_2(capsys):
    assert main(["bench", "run", "--suite", "nonesuch"]) == 2
    assert "unknown suite" in capsys.readouterr().err


# -- bench compare -----------------------------------------------------------


@pytest.fixture()
def baseline(tmp_path):
    out = str(tmp_path / "BENCH_clitest.json")
    main(["bench", "run", "--suite", _SUITE, "--out", out])
    return out


def test_compare_identical_files_exits_0(baseline, capsys):
    assert (
        main(["bench", "compare", "--baseline", baseline, "--new", baseline])
        == 0
    )
    assert "0 regression(s)" in capsys.readouterr().out


def test_compare_rerunning_the_suite_exits_0(baseline, capsys):
    # no --new: the baseline's suite is re-run in process.  The huge
    # threshold keeps the no-op benchmark's nanosecond-scale jitter from
    # mattering -- this test pins the code path, not the gate.
    assert (
        main(
            ["bench", "compare", "--baseline", baseline,
             "--max-regress", "100000%"]
        )
        == 0
    )
    assert "0 regression(s)" in capsys.readouterr().out


def test_compare_regression_exits_1(baseline, tmp_path, capsys):
    doc = json.load(open(baseline))
    bench = doc["benchmarks"]["clitest_noop"]
    for field in ("median_s", "p10_s", "p90_s", "mean_s", "min_s", "max_s"):
        bench[field] = bench[field] / 1000.0  # ancient, much-faster baseline
    fast = str(tmp_path / "BENCH_fast.json")
    with open(fast, "w") as fh:
        json.dump(doc, fh)
    assert (
        main(
            [
                "bench", "compare", "--baseline", fast, "--new", baseline,
                "--max-regress", "40%",
            ]
        )
        == 1
    )
    assert "REGRESSED" in capsys.readouterr().out


def test_compare_bad_threshold_exits_2(baseline, capsys):
    assert (
        main(
            [
                "bench", "compare", "--baseline", baseline,
                "--max-regress", "lots",
            ]
        )
        == 2
    )
    assert "bad --max-regress" in capsys.readouterr().err


def test_compare_missing_baseline_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["bench", "compare", "--baseline", missing]) == 2
    assert "compare:" in capsys.readouterr().err


def test_compare_invalid_baseline_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 999}')
    assert main(["bench", "compare", "--baseline", str(bad)]) == 2
    assert "schema version" in capsys.readouterr().err


def test_compare_unknown_suite_in_baseline_needs_new(tmp_path, capsys):
    doc = {"schema": 1, "suite": "retired", "benchmarks": {}}
    path = tmp_path / "BENCH_retired.json"
    path.write_text(json.dumps(doc))
    assert main(["bench", "compare", "--baseline", str(path)]) == 2
    assert "pass --new" in capsys.readouterr().err


# -- bench update-baseline ---------------------------------------------------


def test_update_baseline_writes_and_diffs(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = str(tmp_path / "BENCH_clitest.json")
    assert (
        main(
            ["bench", "update-baseline", "--suite", _SUITE,
             "--baseline", path]
        )
        == 0
    )
    assert load_suite(path).suite == _SUITE
    first = capsys.readouterr().out
    assert f"updated {path}" in first
    # second update prints the informational diff against the old file
    assert (
        main(
            ["bench", "update-baseline", "--suite", _SUITE,
             "--baseline", path]
        )
        == 0
    )
    assert "baseline suite" in capsys.readouterr().out


def test_update_baseline_unknown_suite_exits_2(capsys):
    assert main(["bench", "update-baseline", "--suite", "nonesuch"]) == 2
    assert "unknown suite" in capsys.readouterr().err
