"""Tests for virtual memory and page placement."""

import numpy as np
import pytest

from repro.machine.vm import (
    KesslerHillPlacement,
    NaivePlacement,
    VirtualMemory,
)


def make_vm(policy_cls=KesslerHillPlacement, cache_bytes=16 * 1024,
            page_bytes=2048, seed=0):
    num_bins = cache_bytes // page_bytes
    policy = policy_cls(num_bins, rng=np.random.default_rng(seed))
    return VirtualMemory(
        cache_bytes=cache_bytes,
        page_bytes=page_bytes,
        line_bytes=64,
        policy=policy,
    )


class TestTranslation:
    def test_translation_is_stable(self):
        vm = make_vm()
        first = vm.translate_page(5)
        assert vm.translate_page(5) == first

    def test_distinct_vpages_get_distinct_frames(self):
        vm = make_vm()
        frames = {vm.translate_page(v) for v in range(50)}
        assert len(frames) == 50

    def test_page_faults_counted_once_per_page(self):
        vm = make_vm()
        vm.translate_page(1)
        vm.translate_page(1)
        vm.translate_page(2)
        assert vm.page_faults == 2

    def test_translate_lines_preserves_offsets(self):
        vm = make_vm()
        lpp = vm.lines_per_page
        vlines = np.asarray([0, 1, lpp, lpp + 3], dtype=np.int64)
        plines = vm.translate_lines(vlines)
        assert plines[1] - plines[0] == 1
        assert plines[3] - plines[2] == 3

    def test_translate_lines_empty(self):
        vm = make_vm()
        assert vm.translate_lines(np.empty(0, dtype=np.int64)).size == 0

    def test_frame_color_matches_bin(self):
        vm = make_vm()
        ppage = vm.translate_page(3)
        # the frame's bin is encoded in its low bits
        assert 0 <= ppage % vm.num_bins < vm.num_bins

    def test_reverse_line_roundtrip(self):
        vm = make_vm()
        vlines = np.arange(200, dtype=np.int64)
        plines = vm.translate_lines(vlines)
        back = vm.reverse_lines(plines)
        assert back.tolist() == vlines.tolist()

    def test_reverse_unmapped_line_is_none(self):
        vm = make_vm()
        assert vm.reverse_line(123456) is None

    def test_reverse_lines_unmapped_marked(self):
        vm = make_vm()
        out = vm.reverse_lines(np.asarray([999999], dtype=np.int64))
        assert out.tolist() == [-1]

    def test_mapped_pages(self):
        vm = make_vm()
        vm.translate_page(0)
        vm.translate_page(9)
        assert vm.mapped_pages == 2

    def test_cache_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            VirtualMemory(cache_bytes=5000, page_bytes=2048)

    def test_policy_geometry_checked(self):
        policy = KesslerHillPlacement(4)
        with pytest.raises(ValueError):
            VirtualMemory(cache_bytes=16 * 1024, page_bytes=2048, policy=policy)


class TestPlacementPolicies:
    def test_naive_bins_in_range(self):
        policy = NaivePlacement(8, rng=np.random.default_rng(0))
        for v in range(100):
            assert 0 <= policy.choose_bin(v) < 8

    def test_kessler_hill_balances_loads(self):
        policy = KesslerHillPlacement(8, rng=np.random.default_rng(0))
        bins = [policy.choose_bin(v) for v in range(64)]
        counts = np.bincount(bins, minlength=8)
        # perfectly uniform colors must balance to 8 per bin
        assert counts.max() - counts.min() <= 1

    def test_kessler_hill_same_color_spreads_within_group(self):
        policy = KesslerHillPlacement(64, rng=np.random.default_rng(0))
        # pages all preferring color 0 can use bins 0..3 (the color group)
        bins = {policy.choose_bin(64 * i) for i in range(4)}
        assert bins == {0, 1, 2, 3}

    def test_kessler_hill_reset(self):
        policy = KesslerHillPlacement(8, rng=np.random.default_rng(0))
        for v in range(20):
            policy.choose_bin(v)
        policy.reset()
        assert policy._bin_load.sum() == 0

    def test_zero_bins_rejected(self):
        with pytest.raises(ValueError):
            NaivePlacement(0)

    def test_identical_sequences_do_not_align(self):
        """Two identical fault sequences (e.g. two same-shape arrays) must
        not land page-for-page on identical bins -- the alignment would
        make every row pair conflict."""
        policy = KesslerHillPlacement(64, rng=np.random.default_rng(1))
        first = [policy.choose_bin(v) for v in range(64)]
        second = [policy.choose_bin(64 + v) for v in range(64)]
        aligned = sum(1 for a, b in zip(first, second) if a == b)
        assert aligned < 40  # not systematically aligned
