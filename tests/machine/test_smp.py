"""Tests for the multiprocessor: directory, coherence, clocks."""

import numpy as np
import pytest

from repro.machine.smp import LineDirectory, Machine


def lines(*values):
    return np.asarray(values, dtype=np.int64)


class TestLineDirectory:
    def test_add_and_holders(self):
        directory = LineDirectory(4)
        directory.add(0, lines(1, 2))
        directory.add(1, lines(2))
        assert directory.holders(2) == {0, 1}
        assert directory.holders(1) == {0}
        assert directory.holders(99) == set()

    def test_remove(self):
        directory = LineDirectory(4)
        directory.add(0, lines(1))
        directory.remove(0, lines(1))
        assert directory.holders(1) == set()

    def test_remove_unknown_is_noop(self):
        directory = LineDirectory(4)
        directory.remove(0, lines(5))  # no error

    def test_held_by_other(self):
        directory = LineDirectory(4)
        directory.add(0, lines(1))
        assert directory.held_by_other(1, cpu_id=1)
        assert not directory.held_by_other(1, cpu_id=0)

    def test_count_remote(self):
        directory = LineDirectory(4)
        directory.add(0, lines(1, 2))
        assert directory.count_remote(lines(1, 2, 3), cpu_id=1) == 2
        assert directory.count_remote(lines(1, 2, 3), cpu_id=0) == 0


class TestMachineCoherence:
    def test_remote_miss_priced_higher(self, smp):
        t = smp.config.timings
        smp.touch(0, np.arange(10))
        before = smp.cycles(1)
        smp.touch(1, np.arange(10))
        local_cost = 10 * (t.l2_miss + 1)
        remote_cost = 10 * (t.l2_miss_remote + 1)
        assert smp.cycles(1) - before == remote_cost
        assert remote_cost > local_cost

    def test_write_invalidates_remote_copies(self, smp):
        smp.touch(0, np.arange(10))
        smp.touch(1, np.arange(10))
        smp.touch(0, np.arange(10), write=True)
        assert smp.cpus[1].l2.resident_lines().size == 0
        assert smp.cpus[0].l2.resident_lines().size == 10

    def test_write_does_not_invalidate_self(self, smp):
        smp.touch(0, np.arange(10), write=True)
        assert smp.cpus[0].l2.resident_lines().size == 10

    def test_directory_tracks_evictions(self, smp):
        smp.touch(0, np.arange(5))
        plines = smp.vm.translate_lines(np.arange(5))
        assert smp.directory.count_remote(plines, cpu_id=1) == 5
        smp.cpus[0].hierarchy.flush()  # evictions reach the directory
        assert smp.directory.count_remote(plines, cpu_id=1) == 0

    def test_total_l2_misses_sums_cpus(self, smp):
        smp.touch(0, np.arange(5))
        smp.touch(1, np.arange(7) + 1000)
        assert smp.total_l2_misses() == 12

    def test_machine_time_is_max_clock(self, smp):
        smp.compute(2, 5000)
        assert smp.time() == smp.cycles(2)

    def test_flush_all(self, smp):
        smp.touch(0, np.arange(5))
        smp.touch(3, np.arange(5))
        smp.flush_all()
        assert all(c.l2.resident_lines().size == 0 for c in smp.cpus)

    def test_uniprocessor_skips_invalidation_path(self, machine):
        machine.touch(0, np.arange(5), write=True)
        assert machine.cpus[0].l2.resident_lines().size == 5

    def test_snapshot_per_cpu(self, smp):
        snaps = smp.snapshot()
        assert len(snaps) == smp.config.num_cpus
        assert all("misses" in s for s in snaps)

    def test_shared_translation_across_cpus(self, smp):
        """All cpus share one VM: the same virtual line maps to the same
        physical line everywhere (it's one address space)."""
        smp.touch(0, lines(5))
        smp.touch(1, lines(5))
        pline = int(smp.vm.translate_lines(lines(5))[0])
        assert smp.cpus[0].l2.contains(pline)
        assert smp.cpus[1].l2.contains(pline)
