"""Tests for the TLB model."""

from dataclasses import replace

import numpy as np
import pytest

from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.machine.tlb import TLB


class TestTLB:
    def test_cold_lookups_miss(self):
        tlb = TLB(entries=4)
        assert tlb.access([1, 2, 3]) == 3

    def test_resident_lookups_hit(self):
        tlb = TLB(entries=4)
        tlb.access([1, 2])
        assert tlb.access([1, 2]) == 0
        assert tlb.hits == 2

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.access([1, 2])
        tlb.access([1])  # refresh 1
        tlb.access([3])  # evicts 2
        assert tlb.contains(1)
        assert not tlb.contains(2)
        assert tlb.contains(3)

    def test_occupancy_bounded(self):
        tlb = TLB(entries=3)
        tlb.access(range(10))
        assert tlb.occupancy == 3

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.access([1, 2])
        assert tlb.flush() == 2
        assert tlb.occupancy == 0
        assert tlb.access([1]) == 1  # cold again

    def test_miss_rate(self):
        tlb = TLB(entries=4)
        tlb.access([1])
        tlb.access([1])
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(miss_penalty=0)


class TestMachineIntegration:
    def test_disabled_by_default(self, machine):
        assert machine.tlbs == [None]

    def test_tlb_misses_cost_cycles(self):
        config = replace(SMALL, model_tlb=True)
        with_tlb = Machine(config)
        without = Machine(SMALL)
        lines = np.arange(200)
        with_tlb.touch(0, lines)
        without.touch(0, lines)
        assert with_tlb.cycles(0) > without.cycles(0)
        penalty = with_tlb.tlbs[0].miss_penalty
        expected_extra = with_tlb.tlbs[0].misses * penalty
        assert with_tlb.cycles(0) - without.cycles(0) == expected_extra

    def test_page_reuse_hits(self):
        config = replace(SMALL, model_tlb=True)
        machine = Machine(config)
        machine.touch(0, np.arange(50))
        before = machine.tlbs[0].misses
        machine.touch(0, np.arange(50))
        assert machine.tlbs[0].misses == before

    def test_per_cpu_tlbs(self):
        config = replace(SMALL, name="small2", num_cpus=2, model_tlb=True)
        machine = Machine(config)
        machine.touch(0, np.arange(50))
        assert machine.tlbs[0].misses > 0
        assert machine.tlbs[1].misses == 0
