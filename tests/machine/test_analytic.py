"""Tests for the analytic reuse-distance cache backend.

Unit coverage for :mod:`repro.machine.analytic` plus the degenerate
inputs the closed form must handle exactly: empty touch streams, a
single-line region, intervals shorter than one touch, and the q=0/q=1
sharing reductions where the analytic prediction must match the
simulated oracle bit-for-bit (no conflicts, no capacity pressure -- the
regimes where the model is exact, not approximate).
"""

import numpy as np
import pytest

from repro.machine.analytic import (
    AnalyticCache,
    AnalyticHierarchy,
    ReuseHistogram,
)
from repro.machine.backend import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    HierarchyBackend,
    resolve_backend,
)
from repro.machine.configs import SMALL
from repro.machine.hierarchy import CacheHierarchy
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.threads.events import Sleep, Touch
from repro.threads.runtime import Runtime


def lines(*vals):
    return np.asarray(vals, dtype=np.int64)


class TestBackendProtocol:
    def test_registry_names(self):
        assert BACKEND_NAMES == ("sim", "analytic")
        assert DEFAULT_BACKEND == "sim"

    def test_resolve_sim(self, small_config):
        backend = resolve_backend("sim")(small_config)
        assert isinstance(backend, CacheHierarchy)
        assert isinstance(backend, HierarchyBackend)

    def test_resolve_analytic(self, small_config):
        backend = resolve_backend("analytic")(small_config)
        assert isinstance(backend, AnalyticHierarchy)
        assert isinstance(backend, HierarchyBackend)

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("turbo")

    def test_machine_rejects_unknown_backend(self, small_config):
        with pytest.raises(ValueError):
            Machine(small_config, backend="turbo")


class TestAnalyticCache:
    def test_compulsory_misses_then_hits(self):
        cache = AnalyticCache(256)
        first = cache.access(lines(0, 1, 2, 3))
        assert (first.refs, first.hits, first.misses) == (4, 0, 4)
        again = cache.access(lines(0, 1, 2, 3))
        assert (again.refs, again.hits, again.misses) == (4, 4, 0)

    def test_empty_batch_is_a_no_op(self):
        cache = AnalyticCache(256)
        result = cache.access(lines())
        assert (result.refs, result.hits, result.misses) == (0, 0, 0)
        assert cache.clock == 0.0
        assert cache.stats.refs == 0

    def test_single_line_region(self):
        cache = AnalyticCache(256)
        assert cache.access(lines(7)).misses == 1
        for _ in range(10):
            assert cache.access(lines(7)).misses == 0
        assert cache.stats.misses == 1
        assert cache.stats.hits == 10

    def test_duplicate_lines_within_batch_hit(self):
        # duplicates re-touch a just-touched line: distance 0, never a miss
        cache = AnalyticCache(256)
        result = cache.access(lines(5, 5, 5, 5))
        assert result.misses == 1
        assert result.hits == 3

    def test_misses_never_exceed_refs(self):
        cache = AnalyticCache(4)
        for start in range(0, 400, 7):
            batch = np.arange(start, start + 5, dtype=np.int64)
            result = cache.access(batch)
            assert 0 <= result.misses <= result.refs
            assert result.hits + result.misses == result.refs

    def test_integer_stream_tracks_clock_within_one(self):
        cache = AnalyticCache(64)
        rng = np.random.default_rng(3)
        for _ in range(200):
            batch = np.unique(rng.integers(0, 512, size=16))
            cache.access(batch.astype(np.int64))
            assert abs(cache.stats.misses - cache.clock) < 1.0

    def test_survival_decays_with_distance(self):
        cache = AnalyticCache(8)
        cache.access(lines(0))
        early = cache.expected_resident(lines(0))
        # 100 distinct new lines push ~100 expected misses of distance
        cache.access(np.arange(1, 101, dtype=np.int64))
        late = cache.expected_resident(lines(0))
        assert late < early
        assert late < 0.001  # k=7/8, d~100: essentially evicted

    def test_one_line_cache_degenerates(self):
        cache = AnalyticCache(1)
        assert cache.access(lines(0)).misses == 1
        assert cache.access(lines(0)).misses == 0  # distance 0 survives
        assert cache.access(lines(1)).misses == 1  # evicts the only line
        assert cache.access(lines(0)).misses == 1  # and 0 is gone

    def test_invalidate_makes_lines_compulsory_again(self):
        cache = AnalyticCache(256)
        cache.access(lines(0, 1, 2))
        assert cache.invalidate(lines(1, 2, 99)) == 2  # 99 never seen
        assert cache.stats.invalidations == 2
        result = cache.access(lines(0, 1, 2))
        assert result.misses == 2  # 1 and 2 reload; 0 still resident

    def test_flush_forgets_everything(self):
        cache = AnalyticCache(256)
        cache.access(lines(0, 1, 2, 3))
        assert cache.flush() == 4  # all four expected resident
        assert cache.access(lines(0, 1, 2, 3)).misses == 4

    def test_expected_resident_bounded(self):
        cache = AnalyticCache(16)
        cache.access(np.arange(0, 64, dtype=np.int64))
        er = cache.expected_resident(np.arange(0, 64, dtype=np.int64))
        assert 0.0 <= er <= 64.0
        assert cache.expected_resident(lines()) == 0.0
        assert cache.expected_resident(lines(10_000)) == 0.0  # never seen

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            AnalyticCache(0)


class TestReuseHistogram:
    def test_counts_and_compulsory(self):
        hist = ReuseHistogram()
        hist.add(np.asarray([0.0, 0.5, 3.0, 100.0]))
        hist.add_compulsory(2)
        assert hist.total == 6
        assert hist.buckets[0] == 2  # d in [0, 1)

    def test_snapshot_delta(self):
        hist = ReuseHistogram()
        hist.add(np.asarray([1.0, 2.0]))
        snap = hist.snapshot()
        hist.add(np.asarray([4.0]))
        hist.add_compulsory(1)
        diff = hist.delta(snap)
        assert diff.total == 2
        assert snap.total == 2  # snapshot is independent

    def test_cache_populates_histogram(self):
        cache = AnalyticCache(64)
        cache.access(lines(0, 1, 2))
        cache.access(lines(0, 1, 2))
        assert cache.hist.compulsory == 3
        assert cache.hist.total == 6


class TestAnalyticHierarchy:
    def test_instruction_fetches_share_the_cache(self, small_config):
        h = AnalyticHierarchy(small_config)
        h.access_instructions(lines(0, 1))
        assert h.access_data(lines(0, 1)).misses == 0  # unified

    def test_stats_exposed_via_l2(self, small_config):
        h = AnalyticHierarchy(small_config)
        h.access_data(lines(0, 1, 2))
        assert h.l2.stats.refs == 3
        assert h.l2.num_lines == small_config.l2_lines


# -- bit-for-bit parity with the simulated oracle -------------------------


def _run_two_thread_sharing(backend: str, q: float):
    """Two FCFS threads on one cpu; B touches fraction ``q`` of A's
    region plus enough private lines to keep its footprint constant.

    The bodies never block, so FCFS runs A to completion before B: every
    reuse happens at miss-distance zero, the regime where the survival
    form is exact (``k ** 0 == 1``).  Interleaving the threads would put
    d > 0 between A's reuses and the uniform-eviction form would bleed
    fractional misses the conflict-free simulator does not -- that
    *approximate* regime belongs to the oracle sweep's bounds, not here.
    """
    machine = Machine(SMALL, seed=0, backend=backend)
    runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
    region_a = runtime.alloc_lines("shared", 32)
    shared = int(round(q * 32))
    region_b = runtime.alloc_lines("private-b", 32 - shared) if shared < 32 \
        else None

    def body_a():
        for _ in range(4):
            yield Touch(region_a.lines())

    def body_b():
        b_lines = region_a.lines()[:shared]
        if region_b is not None:
            b_lines = np.concatenate([b_lines, region_b.lines()])
        b_lines = np.sort(b_lines)
        for _ in range(4):
            yield Touch(b_lines)

    tid_a = runtime.at_create(body_a, name="a")
    tid_b = runtime.at_create(body_b, name="b")
    runtime.run()
    return (
        runtime.thread(tid_a).stats.misses,
        runtime.thread(tid_b).stats.misses,
        machine.total_l2_misses(),
    )


class TestSimulatedOracleExactness:
    """Where the closed form is exact (regions fit the cache, no
    conflicts, no coherence), the analytic backend must agree with the
    simulated oracle bit-for-bit -- not approximately."""

    def test_q0_disjoint_footprints_exact(self):
        sim = _run_two_thread_sharing("sim", q=0.0)
        ana = _run_two_thread_sharing("analytic", q=0.0)
        assert sim == ana
        # q=0: each thread pays its own 32 compulsory misses, no more
        assert sim[0] == 32 and sim[1] == 32

    def test_q1_full_sharing_exact(self):
        sim = _run_two_thread_sharing("sim", q=1.0)
        ana = _run_two_thread_sharing("analytic", q=1.0)
        assert sim == ana
        # q=1: B touches only lines A already loaded -- zero misses
        assert sim[0] == 32 and sim[1] == 0

    def test_partial_sharing_exact(self):
        # intermediate q is still conflict-free here, so still exact
        sim = _run_two_thread_sharing("sim", q=0.5)
        ana = _run_two_thread_sharing("analytic", q=0.5)
        assert sim == ana
        assert sim[1] == 16  # B's private half misses, shared half hits

    def test_repeated_touches_exact(self):
        machine_s = Machine(SMALL, seed=0, backend="sim")
        machine_a = Machine(SMALL, seed=0, backend="analytic")
        for machine in (machine_s, machine_a):
            runtime = Runtime(
                machine, FCFSScheduler(model_scheduler_memory=False)
            )
            region = runtime.alloc_lines("r", 32)

            def body():
                for _ in range(8):
                    yield Touch(region.lines())

            runtime.at_create(body)
            runtime.run()
        assert (
            machine_s.total_l2_misses() == machine_a.total_l2_misses() == 32
        )


class TestDegenerateRuns:
    """Degenerate workload shapes through the full runtime stack."""

    def _totals(self, backend, body_factory):
        machine = Machine(SMALL, seed=0, backend=backend)
        runtime = Runtime(
            machine, FCFSScheduler(model_scheduler_memory=False)
        )
        tid = runtime.at_create(body_factory(runtime), name="t")
        runtime.run()
        t = runtime.thread(tid)
        return t.stats.misses, t.stats.refs, t.stats.intervals

    def test_empty_touch_stream(self):
        # a thread that never touches: zero refs, zero misses, and the
        # interval accounting must not divide by or round anything weird
        def factory(runtime):
            def body():
                yield Sleep(100)
            return body

        sim = self._totals("sim", factory)
        ana = self._totals("analytic", factory)
        assert sim == ana
        assert sim[0] == 0 and sim[1] == 0

    def test_single_line_region_run(self):
        def factory(runtime):
            region = runtime.alloc_lines("one", 1)

            def body():
                for _ in range(5):
                    yield Touch(region.lines())
                    yield Sleep(200)
            return body

        sim = self._totals("sim", factory)
        ana = self._totals("analytic", factory)
        assert sim == ana
        assert sim[0] == 1  # one compulsory miss, ever

    def test_interval_shorter_than_one_touch(self):
        # first interval ends (Sleep) before any touch: a zero-ref
        # interval must report zero misses under both backends
        def factory(runtime):
            region = runtime.alloc_lines("r", 16)

            def body():
                yield Sleep(500)  # interval 1: no touches at all
                yield Touch(region.lines())
            return body

        sim = self._totals("sim", factory)
        ana = self._totals("analytic", factory)
        assert sim == ana
        assert sim[0] == 16
        assert sim[2] >= 2  # the empty interval really happened
