"""Tests for the Table 1 machine configurations."""

from dataclasses import replace

import pytest

from repro.machine.configs import (
    E5000_8CPU,
    SMALL,
    ULTRA1,
    MachineConfig,
    MemoryTimings,
)


class TestTable1Values:
    def test_ultra1_matches_table1(self):
        assert ULTRA1.l2_bytes == 512 * 1024
        assert ULTRA1.line_bytes == 64
        assert ULTRA1.l1i_bytes == 16 * 1024
        assert ULTRA1.l1d_bytes == 16 * 1024
        assert ULTRA1.timings.l2_hit == 3
        assert ULTRA1.timings.l2_miss == 42
        assert ULTRA1.num_cpus == 1
        assert ULTRA1.clock_mhz == 167

    def test_e5000_remote_pricing(self):
        assert E5000_8CPU.num_cpus == 8
        assert E5000_8CPU.timings.l2_miss == 50
        assert E5000_8CPU.timings.l2_miss_remote == 80

    def test_l2_lines(self):
        assert ULTRA1.l2_lines == 8192
        assert SMALL.l2_lines == 256

    def test_context_switch_cost_order_100(self):
        assert ULTRA1.context_switch_instructions == 100


class TestValidation:
    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            replace(ULTRA1, num_cpus=0)

    def test_non_line_multiple_l2_rejected(self):
        with pytest.raises(ValueError):
            replace(ULTRA1, l2_bytes=100)

    def test_non_page_multiple_l2_rejected(self):
        with pytest.raises(ValueError):
            replace(ULTRA1, l2_bytes=64 * 100)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MemoryTimings(l2_miss=0)

    def test_with_cpus(self):
        quad = ULTRA1.with_cpus(4)
        assert quad.num_cpus == 4
        assert quad.l2_bytes == ULTRA1.l2_bytes
        assert "x4" in quad.name
