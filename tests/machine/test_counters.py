"""Tests for the performance-counter emulation."""

import pytest

from repro.machine.counters import (
    CounterAccessError,
    CounterEvent,
    MissCounterView,
    PerformanceCounters,
)


class TestPerformanceCounters:
    def test_default_events_are_refs_and_hits(self):
        pics = PerformanceCounters()
        assert pics.events == (
            CounterEvent.ECACHE_REFS,
            CounterEvent.ECACHE_HITS,
        )

    def test_records_selected_events_only(self):
        pics = PerformanceCounters()
        pics.record(CounterEvent.ECACHE_REFS, 10)
        pics.record(CounterEvent.ECACHE_HITS, 7)
        pics.record(CounterEvent.CYCLES, 99)  # not selected
        assert pics.read() == (10, 7)

    def test_configure_clears_and_switches(self):
        pics = PerformanceCounters()
        pics.record(CounterEvent.ECACHE_REFS, 5)
        pics.configure(CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS)
        assert pics.read() == (0, 0)
        pics.record(CounterEvent.CYCLES, 3)
        assert pics.read() == (3, 0)

    def test_32_bit_wraparound(self):
        pics = PerformanceCounters()
        pics.record(CounterEvent.ECACHE_REFS, (1 << 32) - 1)
        pics.record(CounterEvent.ECACHE_REFS, 2)
        assert pics.read()[0] == 1

    def test_width_parameterised_wraparound(self):
        pics = PerformanceCounters(width_bits=8)
        pics.record(CounterEvent.ECACHE_REFS, 255)
        pics.record(CounterEvent.ECACHE_REFS, 3)
        assert pics.read()[0] == 2

    def test_configure_keeps_width(self):
        pics = PerformanceCounters(width_bits=8)
        pics.configure(CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS)
        pics.record(CounterEvent.ECACHE_REFS, 300)
        assert pics.read()[0] == 300 % 256

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCounters(width_bits=0)

    def test_user_read_traps_without_pcr_bit(self):
        pics = PerformanceCounters(user_access=False)
        with pytest.raises(CounterAccessError):
            pics.read()
        assert pics.read(privileged=True) == (0, 0)

    def test_user_reset_traps_without_pcr_bit(self):
        pics = PerformanceCounters(user_access=False)
        with pytest.raises(CounterAccessError):
            pics.reset()
        pics.reset(privileged=True)

    def test_reset_clears_both(self):
        pics = PerformanceCounters()
        pics.record(CounterEvent.ECACHE_REFS, 5)
        pics.record(CounterEvent.ECACHE_HITS, 2)
        pics.reset()
        assert pics.read() == (0, 0)

    def test_reads_counted(self):
        pics = PerformanceCounters()
        pics.read()
        pics.read()
        assert pics.reads == 2


class TestMissCounterView:
    def test_interval_misses_is_refs_minus_hits(self):
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 100)
        pics.record(CounterEvent.ECACHE_HITS, 60)
        assert view.interval_misses() == 40

    def test_intervals_are_disjoint(self):
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 10)
        view.interval_misses()
        pics.record(CounterEvent.ECACHE_REFS, 5)
        pics.record(CounterEvent.ECACHE_HITS, 5)
        assert view.interval_misses() == 0

    def test_handles_counter_wrap(self):
        pics = PerformanceCounters()
        pics.record(CounterEvent.ECACHE_REFS, (1 << 32) - 10)
        pics.record(CounterEvent.ECACHE_HITS, (1 << 32) - 10)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 20)  # wraps
        pics.record(CounterEvent.ECACHE_HITS, 5)
        assert view.interval_misses() == 15

    def test_handles_wrap_at_narrow_width(self):
        pics = PerformanceCounters(width_bits=8)
        pics.record(CounterEvent.ECACHE_REFS, 250)
        pics.record(CounterEvent.ECACHE_HITS, 250)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 10)  # wraps past 256
        pics.record(CounterEvent.ECACHE_HITS, 4)
        assert view.interval_misses() == 6

    def test_impossible_negative_delta_clamped(self):
        # hits advancing past refs is physically impossible: a wrap
        # artefact or hardware fault must read as 0, never negative
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_HITS, 50)
        assert view.interval_misses() == 0

    def test_requires_refs_hits_configuration(self):
        pics = PerformanceCounters()
        pics.configure(CounterEvent.CYCLES, CounterEvent.ECACHE_HITS)
        with pytest.raises(ValueError):
            MissCounterView(pics)

    def test_read_cost_positive(self):
        view = MissCounterView(PerformanceCounters())
        assert view.read_cost_instructions > 0


class TestOverflowSuspicion:
    """The modulo subtraction cannot distinguish an interval of
    ``events`` from one of ``events % wrap``; the view's conservative
    flag is what keeps that silent under-report visible to LFF."""

    def test_quiet_interval_not_suspect(self):
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 100)
        pics.record(CounterEvent.ECACHE_HITS, 60)
        assert view.interval_misses() == 40
        assert not view.last_overflow_suspect
        assert view.overflow_suspects == 0
        assert view.last_overflow_detail == ""

    def test_delta_above_half_wrap_is_suspect(self):
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 200)  # > wrap // 2 == 128
        view.interval_misses()
        assert view.last_overflow_suspect
        assert view.overflow_suspects == 1
        assert "wrapped" in view.last_overflow_detail

    def test_boundary_at_exactly_half_wrap_not_suspect(self):
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 128)  # == wrap // 2
        view.interval_misses()
        assert not view.last_overflow_suspect
        pics.record(CounterEvent.ECACHE_REFS, 129)  # one past
        view.interval_misses()
        assert view.last_overflow_suspect

    def test_hits_exceeding_refs_is_suspect_and_clamped(self):
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_HITS, 50)
        assert view.interval_misses() == 0
        assert view.last_overflow_suspect

    def test_flag_clears_on_next_clean_interval(self):
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 200)
        view.interval_misses()
        assert view.last_overflow_suspect
        pics.record(CounterEvent.ECACHE_REFS, 10)
        view.interval_misses()
        assert not view.last_overflow_suspect
        assert view.overflow_suspects == 1  # the tally is cumulative

    def test_true_wrap_whose_delta_lands_small_is_undetectable(self):
        # 300 events through an 8-bit register leave a delta of 44:
        # indistinguishable from a genuinely small interval, which is
        # exactly why the flag is "suspicion", not proof
        pics = PerformanceCounters(width_bits=8)
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 300)
        assert view.interval_misses() == 44
        assert not view.last_overflow_suspect


class TestConfigureAccessControl:
    """Writing the PCR obeys the same privilege rule as reading the PICs:
    with the user-trace bit clear, a user-mode write must trap instead of
    silently reprogramming the selectors and clearing both counters."""

    def test_user_configure_traps_without_pcr_bit(self):
        pics = PerformanceCounters(user_access=False)
        pics.record(CounterEvent.ECACHE_REFS, 7)
        with pytest.raises(CounterAccessError):
            pics.configure(CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS)
        # the trapped write must not have touched the PCR or the PICs
        assert pics.events == (
            CounterEvent.ECACHE_REFS,
            CounterEvent.ECACHE_HITS,
        )
        assert pics.read(privileged=True) == (7, 0)

    def test_privileged_configure_allowed_without_pcr_bit(self):
        pics = PerformanceCounters(user_access=False)
        pics.configure(
            CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS, privileged=True
        )
        assert pics.events == (
            CounterEvent.CYCLES,
            CounterEvent.INSTRUCTIONS,
        )

    def test_user_configure_allowed_with_pcr_bit(self):
        pics = PerformanceCounters(user_access=True)
        pics.configure(CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS)
        assert pics.events == (
            CounterEvent.CYCLES,
            CounterEvent.INSTRUCTIONS,
        )

    def test_trapped_configure_does_not_bump_epoch(self):
        pics = PerformanceCounters(user_access=False)
        epoch = pics.config_epoch
        with pytest.raises(CounterAccessError):
            pics.configure(CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS)
        assert pics.config_epoch == epoch


class TestMidIntervalConfigure:
    """A ``configure()`` between the interval-start snapshot and the read
    makes the modulo subtraction compare counts of different events (and
    both PICs were cleared): the view must invalidate its snapshot and
    report the interval as suspect, never hand back the garbage delta."""

    def test_reprogram_mid_interval_reports_zero_and_suspect(self):
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 100)
        pics.record(CounterEvent.ECACHE_HITS, 60)
        pics.configure(CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS)
        assert view.interval_misses() == 0
        assert view.last_overflow_suspect
        assert view.overflow_suspects == 1
        assert "reprogrammed" in view.last_overflow_detail

    def test_next_interval_after_reprogram_is_clean(self):
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.configure(CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS)
        view.interval_misses()  # suspect: resyncs the snapshot
        pics.record(CounterEvent.ECACHE_REFS, 30)
        pics.record(CounterEvent.ECACHE_HITS, 10)
        assert view.interval_misses() == 20
        assert not view.last_overflow_suspect

    def test_reprogram_to_other_events_stays_suspect_until_restored(self):
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.configure(CounterEvent.CYCLES, CounterEvent.INSTRUCTIONS)
        assert view.interval_misses() == 0  # epoch mismatch
        assert view.last_overflow_suspect
        pics.record(CounterEvent.CYCLES, 500)
        assert view.interval_misses() == 0  # still not refs/hits
        assert view.last_overflow_suspect
        assert view.overflow_suspects == 2
        assert "not" in view.last_overflow_detail
        pics.configure(CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS)
        view.interval_misses()  # resync against the restored events
        pics.record(CounterEvent.ECACHE_REFS, 8)
        assert view.interval_misses() == 8
        assert not view.last_overflow_suspect

    def test_reprogrammed_interval_does_not_leak_stale_baseline(self):
        # the cleared PICs restart from zero; without the resync the
        # old baseline (100, 60) would turn a 5-miss interval into a
        # huge wrapped delta
        pics = PerformanceCounters()
        view = MissCounterView(pics)
        pics.record(CounterEvent.ECACHE_REFS, 100)
        pics.record(CounterEvent.ECACHE_HITS, 60)
        view.interval_misses()
        pics.configure(CounterEvent.ECACHE_REFS, CounterEvent.ECACHE_HITS)
        view.interval_misses()  # suspect interval, resyncs
        pics.record(CounterEvent.ECACHE_REFS, 5)
        assert view.interval_misses() == 5
