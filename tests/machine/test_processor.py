"""Tests for per-processor cycle accounting and counter updates."""

import numpy as np
import pytest

from repro.machine.configs import SMALL
from repro.machine.counters import CounterEvent
from repro.machine.processor import Processor


def lines(*values):
    return np.asarray(values, dtype=np.int64)


@pytest.fixture
def cpu():
    return Processor(0, SMALL)


class TestCompute:
    def test_one_cycle_per_instruction(self, cpu):
        cpu.compute(500)
        assert cpu.cycles == 500
        assert cpu.instructions == 500

    def test_negative_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.compute(-1)


class TestTouchAccounting:
    def test_miss_cycles(self, cpu):
        cpu.touch_data(lines(1))
        # 1 miss * l2_miss + 1 base cycle per ref
        expected = SMALL.timings.l2_miss + 1
        assert cpu.cycles == expected

    def test_hit_cycles(self, cpu):
        cpu.touch_data(lines(1))
        before = cpu.cycles
        cpu.touch_data(lines(1))
        assert cpu.cycles - before == SMALL.timings.l2_hit + 1

    def test_counters_track_refs_and_hits(self, cpu):
        cpu.touch_data(lines(1, 2))
        cpu.touch_data(lines(1, 2))
        refs, hits = cpu.counters.read()
        assert refs == 4
        assert hits == 2

    def test_remote_probe_prices_remote_misses(self, cpu):
        cpu.set_remote_probe(lambda plines: plines.size)  # all remote
        cpu.touch_data(lines(1))
        assert cpu.cycles == SMALL.timings.l2_miss_remote + 1

    def test_instruction_fetch_counts_refs(self, cpu):
        cpu.fetch_instructions(lines(9))
        refs, _hits = cpu.counters.read()
        assert refs == 1

    def test_snapshot_contains_key_fields(self, cpu):
        cpu.touch_data(lines(1))
        snap = cpu.snapshot()
        assert snap["cpu"] == 0
        assert snap["misses"] == 1
        assert snap["cycles"] > 0

    def test_touches_count_as_instructions(self, cpu):
        cpu.touch_data(lines(1, 2, 3))
        assert cpu.instructions == 3
