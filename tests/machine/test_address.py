"""Tests for regions and the shared address space."""

import numpy as np
import pytest

from repro.machine.address import AddressSpace, AllocationError, Region


class TestRegion:
    def test_end_is_base_plus_size(self):
        region = Region("r", base=128, size=256)
        assert region.end == 384

    def test_line_range_covers_partial_lines(self):
        # base 100 .. 163 straddles lines 1 and 2 (64-byte lines)
        region = Region("r", base=100, size=64)
        assert region.first_line == 1
        assert region.last_line == 2
        assert region.num_lines == 2

    def test_lines_are_contiguous(self):
        region = Region("r", base=0, size=64 * 10)
        lines = region.lines()
        assert lines.tolist() == list(range(10))

    def test_line_slice_clamps_to_region(self):
        region = Region("r", base=0, size=64 * 10)
        assert region.line_slice(8, 100).tolist() == [8, 9]

    def test_line_slice_negative_start_clamps(self):
        region = Region("r", base=0, size=64 * 4)
        assert region.line_slice(-5, 2).tolist() == [0, 1]

    def test_slice_produces_subregion(self):
        region = Region("r", base=0, size=1024)
        sub = region.slice(128, 256)
        assert sub.base == 128
        assert sub.size == 256

    def test_slice_outside_region_rejected(self):
        region = Region("r", base=0, size=1024)
        with pytest.raises(ValueError):
            region.slice(900, 256)

    def test_slice_zero_size_rejected(self):
        region = Region("r", base=0, size=1024)
        with pytest.raises(ValueError):
            region.slice(0, 0)

    def test_contains(self):
        region = Region("r", base=100, size=50)
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert not region.contains(99)

    def test_len_is_size(self):
        assert len(Region("r", base=0, size=77)) == 77

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Region("r", base=0, size=0)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            Region("r", base=-1, size=10)


class TestAddressSpace:
    def test_allocations_are_page_aligned(self):
        space = AddressSpace()
        a = space.allocate("a", 100)
        b = space.allocate("b", 100)
        assert a.base % space.page_bytes == 0
        assert b.base % space.page_bytes == 0

    def test_allocations_do_not_overlap(self):
        space = AddressSpace()
        a = space.allocate("a", 10_000)
        b = space.allocate("b", 10_000)
        assert b.base >= a.end

    def test_allocate_lines_spans_exact_lines(self):
        space = AddressSpace()
        region = space.allocate_lines("r", 7)
        assert region.num_lines == 7

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 100)
        with pytest.raises(AllocationError):
            space.allocate("a", 100)

    def test_zero_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.allocate("a", 0)

    def test_region_lookup(self):
        space = AddressSpace()
        a = space.allocate("a", 100)
        assert space.region("a") is a
        assert "a" in space
        assert "b" not in space

    def test_regions_in_allocation_order(self):
        space = AddressSpace()
        names = ["x", "y", "z"]
        for name in names:
            space.allocate(name, 10)
        assert [r.name for r in space.regions()] == names

    def test_bytes_allocated_counts_padding(self):
        space = AddressSpace()
        space.allocate("a", 1)  # rounds up to one page
        assert space.bytes_allocated == space.page_bytes

    def test_page_zero_unmapped(self):
        space = AddressSpace()
        region = space.allocate("a", 10)
        assert region.base >= space.page_bytes

    def test_page_and_line_of(self):
        space = AddressSpace()
        assert space.page_of(space.page_bytes + 1) == 1
        assert space.line_of(space.line_bytes * 3) == 3

    def test_page_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            AddressSpace(line_bytes=64, page_bytes=100)

    def test_lines_per_page(self):
        space = AddressSpace(line_bytes=64, page_bytes=8192)
        assert space.lines_per_page == 128
