"""Tests for the direct-mapped and set-associative cache simulators."""

import numpy as np
import pytest

from repro.machine.cache import (
    DirectMappedCache,
    SetAssociativeCache,
    _net_effect,
)


def lines(*values):
    return np.asarray(values, dtype=np.int64)


class TestDirectMapped:
    def make(self, num_lines=16):
        return DirectMappedCache(num_lines * 64, 64)

    def test_cold_accesses_all_miss(self):
        cache = self.make()
        result = cache.access(lines(1, 2, 3))
        assert result.misses == 3
        assert result.hits == 0

    def test_repeat_accesses_all_hit(self):
        cache = self.make()
        cache.access(lines(1, 2, 3))
        result = cache.access(lines(1, 2, 3))
        assert result.hits == 3
        assert result.misses == 0

    def test_conflicting_line_evicts(self):
        cache = self.make(num_lines=16)
        cache.access(lines(1))
        result = cache.access(lines(17))  # same index: 17 % 16 == 1
        assert result.misses == 1
        assert result.evicted.tolist() == [1]
        assert not cache.contains(1)
        assert cache.contains(17)

    def test_empty_batch(self):
        cache = self.make()
        result = cache.access(np.empty(0, dtype=np.int64))
        assert result.refs == 0

    def test_stats_accumulate(self):
        cache = self.make()
        cache.access(lines(1, 2))
        cache.access(lines(1, 2))
        assert cache.stats.refs == 4
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_miss_rate(self):
        cache = self.make()
        cache.access(lines(1))
        cache.access(lines(1))
        assert cache.stats.miss_rate == 0.5

    def test_serial_path_matches_vectorised(self):
        """A batch with duplicate indices (serial path) must produce the
        same counts as issuing the lines one by one."""
        batch = lines(1, 17, 1, 33, 2)  # indices 1,1,1,1,2 in a 16-line cache
        serial = DirectMappedCache(16 * 64, 64)
        result = serial.access(batch)
        oracle = DirectMappedCache(16 * 64, 64)
        hits = misses = 0
        for v in batch:
            r = oracle.access(lines(int(v)))
            hits += r.hits
            misses += r.misses
        assert (result.hits, result.misses) == (hits, misses)

    def test_net_installed_excludes_transients(self):
        """A line installed then evicted within one batch appears in
        neither net list."""
        cache = self.make(num_lines=16)
        result = cache.access(lines(1, 17))  # 1 installed, then evicted by 17
        assert 1 not in result.installed.tolist()
        assert 1 not in result.evicted.tolist()
        assert result.installed.tolist() == [17]
        assert result.misses == 2  # raw miss count is unaffected

    def test_miss_lines_are_raw(self):
        cache = self.make(num_lines=16)
        result = cache.access(lines(1, 17))
        assert result.miss_lines.tolist() == [1, 17]

    def test_writeback_on_dirty_eviction(self):
        cache = self.make(num_lines=16)
        cache.access(lines(1), write=True)
        result = cache.access(lines(17))
        assert result.writebacks == 1

    def test_no_writeback_for_clean_eviction(self):
        cache = self.make(num_lines=16)
        cache.access(lines(1))
        result = cache.access(lines(17))
        assert result.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = self.make(num_lines=16)
        cache.access(lines(1))
        cache.access(lines(1), write=True)  # hit, now dirty
        result = cache.access(lines(17))
        assert result.writebacks == 1

    def test_invalidate_removes_resident(self):
        cache = self.make()
        cache.access(lines(1, 2))
        removed = cache.invalidate(lines(1, 5))
        assert removed == 1
        assert not cache.contains(1)
        assert cache.contains(2)
        assert cache.stats.invalidations == 1

    def test_invalidate_requires_exact_line(self):
        cache = self.make(num_lines=16)
        cache.access(lines(17))
        assert cache.invalidate(lines(1)) == 0  # same index, different line

    def test_flush_evicts_everything(self):
        cache = self.make()
        cache.access(lines(1, 2, 3))
        assert cache.flush() == 3
        assert cache.resident_lines().size == 0

    def test_flush_notifies_evict_listener(self):
        cache = self.make()
        seen = []
        cache.on_evict(lambda arr: seen.extend(arr.tolist()))
        cache.access(lines(1, 2))
        cache.flush()
        assert sorted(seen) == [1, 2]

    def test_install_listener_sees_installed(self):
        cache = self.make()
        seen = []
        cache.on_install(lambda arr: seen.extend(arr.tolist()))
        cache.access(lines(4, 5))
        assert sorted(seen) == [4, 5]

    def test_resident_lines_reflect_contents(self):
        cache = self.make()
        cache.access(lines(3, 9))
        assert sorted(cache.resident_lines().tolist()) == [3, 9]

    def test_index_of(self):
        cache = self.make(num_lines=16)
        assert cache.index_of(35) == 3

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DirectMappedCache(100, 64)
        with pytest.raises(ValueError):
            DirectMappedCache(0, 64)


class TestSetAssociative:
    def make(self, num_lines=16, ways=4):
        return SetAssociativeCache(num_lines * 64, 64, ways=ways)

    def test_conflicts_tolerated_up_to_ways(self):
        cache = self.make(num_lines=16, ways=4)  # 4 sets
        same_set = lines(0, 4, 8, 12)  # all map to set 0
        cache.access(same_set)
        result = cache.access(same_set)
        assert result.hits == 4

    def test_lru_eviction(self):
        cache = self.make(num_lines=8, ways=2)  # 4 sets
        cache.access(lines(0))
        cache.access(lines(4))
        cache.access(lines(0))  # refresh 0
        result = cache.access(lines(8))  # set 0 full: evict LRU = 4
        assert result.evicted.tolist() == [4]
        assert cache.contains(0)

    def test_one_way_behaves_direct_mapped(self):
        assoc = self.make(num_lines=16, ways=1)
        direct = DirectMappedCache(16 * 64, 64)
        rng = np.random.default_rng(0)
        batch = rng.integers(0, 64, size=200).astype(np.int64)
        for v in batch:
            a = assoc.access(lines(int(v)))
            d = direct.access(lines(int(v)))
            assert a.hits == d.hits

    def test_invalidate(self):
        cache = self.make()
        cache.access(lines(1, 2))
        assert cache.invalidate(lines(1)) == 1
        assert not cache.contains(1)

    def test_flush(self):
        cache = self.make()
        cache.access(lines(1, 2, 3))
        assert cache.flush() == 3
        assert cache.resident_lines().size == 0

    def test_writebacks(self):
        cache = self.make(num_lines=8, ways=2)
        cache.access(lines(0), write=True)
        cache.access(lines(4))
        result = cache.access(lines(8))  # evicts 0 (LRU, dirty)
        assert result.writebacks == 1

    def test_ways_must_divide_lines(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(16 * 64, 64, ways=3)


class TestNetEffect:
    def test_pure_install(self):
        net_in, net_out = _net_effect([1, 2], [])
        assert sorted(net_in.tolist()) == [1, 2]
        assert net_out.size == 0

    def test_install_then_evict_cancels(self):
        net_in, net_out = _net_effect([1], [1])
        assert net_in.size == 0
        assert net_out.size == 0

    def test_evict_then_reinstall_cancels(self):
        net_in, net_out = _net_effect([5, 7], [7])
        assert net_in.tolist() == [5]
        assert net_out.size == 0

    def test_pure_evict(self):
        net_in, net_out = _net_effect([], [3])
        assert net_out.tolist() == [3]
