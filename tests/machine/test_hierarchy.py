"""Tests for the L1/L2 hierarchy with inclusion."""

from dataclasses import replace

import numpy as np
import pytest

from repro.machine.configs import SMALL
from repro.machine.hierarchy import CacheHierarchy


def lines(*values):
    return np.asarray(values, dtype=np.int64)


@pytest.fixture
def l1_config():
    return replace(SMALL, model_l1=True)


class TestL2Only:
    def test_data_goes_straight_to_l2(self):
        h = CacheHierarchy(SMALL)
        result = h.access_data(lines(1, 2, 3))
        assert result.misses == 3
        assert h.l2.stats.refs == 3

    def test_no_l1_objects(self):
        h = CacheHierarchy(SMALL)
        assert h.l1d is None and h.l1i is None


class TestWithL1:
    def test_l1_filters_l2_references(self, l1_config):
        h = CacheHierarchy(l1_config)
        h.access_data(lines(1, 2, 3))
        h.access_data(lines(1, 2, 3))  # L1 hits: no new L2 refs
        assert h.l2.stats.refs == 3
        assert h.l1d.stats.hits == 3

    def test_instruction_path_uses_l1i(self, l1_config):
        h = CacheHierarchy(l1_config)
        h.access_instructions(lines(5))
        assert h.l1i.stats.refs == 1
        assert h.l1d.stats.refs == 0

    def test_inclusion_on_l2_eviction(self, l1_config):
        h = CacheHierarchy(l1_config)
        n = h.l2.num_lines
        h.access_data(lines(1))
        assert h.l1d.contains(1)
        h.access_data(lines(1 + n))  # evicts line 1 from L2
        assert not h.l1d.contains(1)  # inclusion enforced

    def test_invalidate_hits_all_levels(self, l1_config):
        h = CacheHierarchy(l1_config)
        h.access_data(lines(1))
        h.access_instructions(lines(2))
        h.invalidate(lines(1, 2))
        assert not h.l1d.contains(1)
        assert not h.l1i.contains(2)
        assert not h.l2.contains(1)

    def test_flush_clears_all_levels(self, l1_config):
        h = CacheHierarchy(l1_config)
        h.access_data(lines(1, 2))
        h.access_instructions(lines(3))
        h.flush()
        assert h.l2.resident_lines().size == 0
        assert h.l1d.resident_lines().size == 0
        assert h.l1i.resident_lines().size == 0

    def test_l2_misses_unaffected_by_l1_on_cold_access(self, l1_config):
        h = CacheHierarchy(l1_config)
        result = h.access_data(lines(1, 2, 3))
        assert result.misses == 3
