"""Shared fixtures: tiny machines and models so tests run fast while
exercising the same code paths as the full-size configurations."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.model import SharedStateModel
from repro.core.sharing import SharingGraph
from repro.machine.configs import SMALL, MachineConfig
from repro.machine.smp import Machine


@pytest.fixture
def small_config() -> MachineConfig:
    """16 KB E-cache (256 lines), 2 KB pages, 1 cpu."""
    return SMALL


@pytest.fixture
def smp_config() -> MachineConfig:
    """The small platform with 4 cpus and E5000-style remote pricing."""
    return replace(
        SMALL,
        name="small-smp",
        num_cpus=4,
        timings=replace(SMALL.timings, l2_miss=50, l2_miss_remote=80),
    )


@pytest.fixture
def machine(small_config) -> Machine:
    return Machine(small_config, seed=7)


@pytest.fixture
def smp(smp_config) -> Machine:
    return Machine(smp_config, seed=7)


@pytest.fixture
def model(small_config) -> SharedStateModel:
    return SharedStateModel(small_config.l2_lines)


@pytest.fixture
def graph() -> SharingGraph:
    return SharingGraph()
