"""Tests for the fault injector's three hook families."""

from types import SimpleNamespace

import pytest

from repro.faults import (
    AnnotationFaults,
    CounterFaults,
    FaultInjector,
    FaultPlan,
    FaultyCounterView,
    InjectedCrash,
    ThreadFaults,
)


def _injector(**kwargs):
    return FaultInjector(FaultPlan(seed=5, **kwargs))


def _fake_runtime(tids):
    threads = {
        tid: SimpleNamespace(tid=tid, alive=True) for tid in tids
    }
    return SimpleNamespace(threads=threads, events_executed=0)


class TestAnnotationFaults:
    def test_no_plan_passes_through(self):
        inj = _injector()
        assert inj.transform_share(1, 2, 0.7) == [(1, 2, 0.7)]

    def test_drop_all(self):
        inj = _injector(annotation=AnnotationFaults(drop_prob=1.0))
        assert inj.transform_share(1, 2, 0.7) == []
        assert inj.dropped_edges == 1

    def test_corrupt_rewrites_q_only(self):
        inj = _injector(annotation=AnnotationFaults(corrupt_prob=1.0))
        edges = inj.transform_share(1, 2, 0.7)
        assert len(edges) == 1
        src, dst, q = edges[0]
        assert (src, dst) == (1, 2)
        assert 0.0 <= q < 1.0
        assert inj.corrupted_edges == 1

    def test_bogus_edge_targets_a_live_thread(self):
        inj = _injector(annotation=AnnotationFaults(bogus_prob=1.0))
        inj.attach(_fake_runtime([1, 2, 3]))
        edges = inj.transform_share(1, 2, 0.7)
        assert edges[0] == (1, 2, 0.7)  # the real edge survives
        assert len(edges) == 2
        src, dst, _q = edges[1]
        assert src == 1
        assert dst in (2, 3)  # never a self-edge
        assert inj.bogus_edges == 1

    def test_bogus_without_candidates_skipped(self):
        inj = _injector(annotation=AnnotationFaults(bogus_prob=1.0))
        inj.attach(_fake_runtime([1]))
        assert inj.transform_share(1, 1, 0.5) == [(1, 1, 0.5)]
        assert inj.bogus_edges == 0


class _StubView:
    read_cost_instructions = 6

    def __init__(self, misses):
        self._misses = misses

    def interval_misses(self):
        return self._misses


class TestCounterFaults:
    def test_no_counter_plan_keeps_raw_view(self):
        inj = _injector()
        view = _StubView(10)
        assert inj.wrap_view(0, view) is view

    def test_counter_plan_wraps_view(self):
        inj = _injector(counter=CounterFaults(mode="zero"))
        wrapped = inj.wrap_view(0, _StubView(10))
        assert isinstance(wrapped, FaultyCounterView)
        assert wrapped.read_cost_instructions == 6

    def test_zero_mode(self):
        inj = _injector(counter=CounterFaults(mode="zero", prob=1.0))
        assert inj.wrap_view(0, _StubView(123)).interval_misses() == 0

    def test_saturate_mode(self):
        inj = _injector(
            counter=CounterFaults(mode="saturate", prob=1.0, width_bits=16)
        )
        assert inj.wrap_view(0, _StubView(5)).interval_misses() == 2**16 - 1

    def test_wrap_mode_produces_huge_reading(self):
        inj = _injector(
            counter=CounterFaults(
                mode="wrap", prob=1.0, magnitude=100, width_bits=32
            )
        )
        # misses < magnitude: the naive wrapped delta is enormous
        assert inj.wrap_view(0, _StubView(5)).interval_misses() == (
            (5 - 100) % 2**32
        )

    def test_noise_mode_bounded(self):
        inj = _injector(
            counter=CounterFaults(mode="noise", prob=1.0, magnitude=8)
        )
        for _ in range(50):
            assert abs(inj.wrap_view(0, _StubView(100)).interval_misses()
                       - 100) <= 8

    def test_prob_zero_never_fires(self):
        inj = _injector(counter=CounterFaults(mode="zero", prob=0.0))
        assert inj.wrap_view(0, _StubView(42)).interval_misses() == 42
        assert inj.counter_faults == 0


class TestThreadFaults:
    def test_no_plan_no_fault(self):
        inj = _injector()
        assert inj.before_step(0, None) is None

    def test_delay_returns_instruction_stall(self):
        inj = _injector(
            thread=ThreadFaults(
                mode="delay", prob=1.0, delay_instructions=777
            )
        )
        assert inj.before_step(0, None) == ("delay", 777)
        assert inj.delays == 1

    def test_crash_raises_and_is_capped(self):
        inj = _injector(
            thread=ThreadFaults(mode="crash", prob=1.0, max_injections=1)
        )
        inj.attach(_fake_runtime([1]))
        thread = SimpleNamespace(tid=1)
        with pytest.raises(InjectedCrash):
            inj.before_step(0, thread)
        # the cap: a second roll never crashes again
        assert inj.before_step(0, thread) is None
        assert inj.crashes == 1

    def test_livelock_capped(self):
        inj = _injector(
            thread=ThreadFaults(mode="livelock", prob=1.0, max_injections=2)
        )
        assert inj.before_step(0, None) == "livelock"
        assert inj.before_step(0, None) == "livelock"
        assert inj.before_step(0, None) is None
        assert inj.livelocks == 2


class TestDeterminismAndReporting:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(
            seed=9, annotation=AnnotationFaults(drop_prob=0.5)
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        edges_a = [a.transform_share(1, 2, 0.5) for _ in range(50)]
        edges_b = [b.transform_share(1, 2, 0.5) for _ in range(50)]
        assert edges_a == edges_b

    def test_summary_reports_tallies(self):
        inj = _injector(annotation=AnnotationFaults(drop_prob=1.0))
        inj.transform_share(1, 2, 0.5)
        summary = inj.summary()
        assert summary["dropped_edges"] == 1
        assert summary["plan"] == "annotation"
        assert summary["seed"] == 5


class TestOverflowForwarding:
    """Overflow suspicion is a property of the real PIC reads; the
    faulty wrapper must forward it from the inner view untouched --
    never synthesize it from the injected perturbation."""

    def test_forwards_suspicion_from_inner_view(self):
        inner = SimpleNamespace(
            interval_misses=lambda: 3,
            last_overflow_suspect=True,
            overflow_suspects=4,
            last_overflow_detail="interval likely wrapped",
            read_cost_instructions=6,
        )
        injector = _injector(counter=CounterFaults(prob=0.0))
        view = FaultyCounterView(inner, injector, cpu=0)
        assert view.last_overflow_suspect is True
        assert view.overflow_suspects == 4
        assert view.last_overflow_detail == "interval likely wrapped"
