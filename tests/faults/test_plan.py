"""Tests for fault plans: validation, reseeding, the class registry."""

import pytest

from repro.faults import (
    EXPECTS_TIMEOUT,
    FAULT_CLASSES,
    AnnotationFaults,
    CounterFaults,
    FaultPlan,
    ThreadFaults,
)


class TestValidation:
    def test_unknown_counter_mode_rejected(self):
        with pytest.raises(ValueError):
            CounterFaults(mode="melt")

    def test_unknown_thread_mode_rejected(self):
        with pytest.raises(ValueError):
            ThreadFaults(mode="explode")

    def test_plans_are_frozen(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(AttributeError):
            plan.seed = 2


class TestReseed:
    def test_reseed_changes_seed_only(self):
        plan = FaultPlan(
            seed=42, annotation=AnnotationFaults(drop_prob=0.5)
        )
        reseeded = plan.reseed(1)
        assert reseeded.seed != plan.seed
        assert reseeded.annotation == plan.annotation

    def test_reseed_is_deterministic(self):
        plan = FaultPlan(seed=42)
        assert plan.reseed(3) == plan.reseed(3)

    def test_attempts_decorrelate(self):
        plan = FaultPlan(seed=42)
        seeds = {plan.reseed(a).seed for a in range(1, 6)}
        assert len(seeds) == 5

    def test_without_thread_faults(self):
        plan = FaultPlan(
            seed=1,
            counter=CounterFaults(mode="zero"),
            thread=ThreadFaults(mode="crash"),
        )
        safe = plan.without_thread_faults()
        assert safe.thread is None
        assert safe.counter == plan.counter


class TestRegistry:
    def test_every_class_builds_a_plan(self):
        for name, build in FAULT_CLASSES.items():
            plan = build(7)
            assert isinstance(plan, FaultPlan), name
            assert plan.seed == 7
            assert plan.active_classes != "none"

    def test_timeout_classes_are_registered(self):
        assert EXPECTS_TIMEOUT <= set(FAULT_CLASSES)

    def test_active_classes_label(self):
        plan = FaultPlan(
            seed=0,
            annotation=AnnotationFaults(drop_prob=1.0),
            counter=CounterFaults(mode="wrap"),
        )
        assert plan.active_classes == "annotation+counter:wrap"
        assert FaultPlan(seed=0).active_classes == "none"
