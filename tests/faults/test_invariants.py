"""Tests for the runtime invariant checker."""

import pytest

from repro.faults import InvariantChecker
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_lff
from repro.threads.errors import InvariantViolation
from repro.threads.events import Acquire, Compute, Release, Sleep, Touch
from repro.threads.runtime import Runtime
from repro.threads.sync import Mutex
from repro.threads.thread import ThreadState


def _workload(runtime, threads=6):
    mutex = Mutex(name="shared-lock")
    region = runtime.alloc_lines("state", 32)

    def body():
        for _ in range(3):
            yield Touch(region.lines())
            yield Acquire(mutex)
            yield Compute(50)
            yield Release(mutex)
            yield Sleep(500)

    for i in range(threads):
        runtime.at_create(body, name=f"w{i}")


class TestCleanRuns:
    def test_clean_fcfs_run_passes(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        checker = InvariantChecker(runtime, deep_every=4)
        runtime.add_observer(checker)
        _workload(runtime)
        runtime.run()
        checker.deep_check()
        assert checker.checks > 0
        assert checker.deep_checks > 0

    def test_clean_lff_run_checks_heaps(self, smp):
        runtime = Runtime(smp, make_lff())
        checker = InvariantChecker(runtime, deep_every=1)
        runtime.add_observer(checker)
        _workload(runtime, threads=8)
        runtime.run()
        checker.deep_check()
        assert all(t.state is ThreadState.DONE
                   for t in runtime.threads.values())


class TestDetection:
    def test_live_count_drift_detected(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        checker = InvariantChecker(runtime)
        _workload(runtime, threads=2)
        runtime.run()
        runtime._live += 1  # simulated bookkeeping corruption
        with pytest.raises(InvariantViolation):
            checker.deep_check()

    def test_blocked_without_waiting_on_detected(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        checker = InvariantChecker(runtime)
        _workload(runtime, threads=2)
        runtime.run()
        victim = next(iter(runtime.threads.values()))
        victim.state = ThreadState.BLOCKED
        victim.waiting_on = None
        runtime._live += 1  # keep the live count consistent with the table
        with pytest.raises(InvariantViolation):
            checker.deep_check()

    def test_dispatch_of_non_running_thread_detected(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        checker = InvariantChecker(runtime)
        _workload(runtime, threads=1)
        thread = next(iter(runtime.threads.values()))
        assert thread.state is ThreadState.READY
        with pytest.raises(InvariantViolation):
            checker.on_dispatch(0, thread)

    def test_corrupted_heap_detected(self, smp):
        runtime = Runtime(smp, make_lff())
        checker = InvariantChecker(runtime)
        _workload(runtime, threads=8)
        runtime.run()
        heap = runtime.scheduler.heaps[0]
        # leave a structurally broken entry behind
        from repro.sched.heap import HeapEntry
        from types import SimpleNamespace

        fake = SimpleNamespace(ready_seq=0, state=ThreadState.READY, tid=999)
        heap._heap.append(
            HeapEntry(sort_key=(5.0, 0), thread=fake, priority=5.0,
                      seq=0, version=0)
        )
        with pytest.raises(InvariantViolation):
            checker.deep_check()
