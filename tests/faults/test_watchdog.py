"""Tests for step budgets, the watchdog, and hardened runs."""

import pytest

from repro.faults import FaultPlan, ThreadFaults
from repro.machine.configs import SMALL
from repro.sched import SCHEDULERS
from repro.sched.fcfs import FCFSScheduler
from repro.sim.driver import Watchdog, run_hardened
from repro.threads.errors import StepBudgetExceeded, WatchdogTimeout
from repro.threads.events import Compute, Sleep, Yield
from repro.threads.runtime import Runtime
from repro.workloads.params import TasksParams
from repro.workloads.tasks import TasksWorkload


def _runtime(machine):
    return Runtime(machine, FCFSScheduler(model_scheduler_memory=False))


class TestStepBudget:
    def test_budget_exceeded_is_resumable(self, machine):
        runtime = _runtime(machine)

        def body():
            for _ in range(100):
                yield Compute(10)

        runtime.at_create(body, name="worker")
        with pytest.raises(StepBudgetExceeded):
            runtime.run(max_events=10)
        # the runtime is left consistent: a larger budget finishes the run
        runtime.run(max_events=1_000)
        assert all(not t.alive for t in runtime.threads.values())


class TestWatchdog:
    def test_completing_run_checkpoints_and_returns(self, machine):
        runtime = _runtime(machine)

        def body():
            for _ in range(50):
                yield Compute(10)

        runtime.at_create(body, name="worker")
        dog = Watchdog(step_budget=10, max_chunks=20)
        dog.supervise(runtime)
        assert dog.checkpoints
        assert dog.checkpoints[-1].live == 0
        assert dog.checkpoints[-1].done == 1

    def test_livelock_becomes_diagnostic_timeout(self, machine):
        runtime = _runtime(machine)

        def finisher():
            yield Compute(100)

        def spinner():
            while True:
                yield Yield()

        runtime.at_create(finisher, name="finisher")
        runtime.at_create(spinner, name="spinner")
        dog = Watchdog(step_budget=200, max_chunks=50, stall_chunks=2)
        with pytest.raises(WatchdogTimeout) as excinfo:
            dog.supervise(runtime)
        err = excinfo.value
        assert "no forward progress" in str(err)
        assert len(err.checkpoints) >= 2
        # partial results name the thread that DID finish
        done = [s for s in err.partial if s[3] == "done"]
        assert [s[0] for s in done] == ["finisher"]

    def test_budget_exhaustion_becomes_timeout(self, machine):
        runtime = _runtime(machine)

        def body():
            for _ in range(10_000):
                yield Compute(10)

        runtime.at_create(body, name="long")
        dog = Watchdog(step_budget=10, max_chunks=3)
        with pytest.raises(WatchdogTimeout) as excinfo:
            dog.supervise(runtime)
        assert "budget exhausted" in str(excinfo.value)

    @pytest.mark.parametrize("engine", ("stepped", "event"))
    def test_sleep_phase_is_progress_not_a_stall(self, engine, machine):
        """Regression: a phase of long sleeps executes whole chunks of
        Sleep/wake events without finishing a thread or adding an
        instruction or a reference.  The stall detector must read the
        delivered timer wakeups as forward motion instead of declaring
        the (legitimate) time jump a stall."""
        runtime = Runtime(
            machine,
            FCFSScheduler(model_scheduler_memory=False),
            engine=engine,
        )

        def sleeper():
            for _ in range(300):
                yield Sleep(500)

        runtime.at_create(sleeper, name="sleeper")
        dog = Watchdog(step_budget=20, max_chunks=200, stall_chunks=2)
        dog.supervise(runtime)  # must complete, not raise
        assert dog.checkpoints[-1].done == 1
        wakeups = [cp.wakeups for cp in dog.checkpoints]
        assert wakeups == sorted(wakeups) and wakeups[-1] == 300
        # the regression, demonstrated: across consecutive mid-sleep
        # checkpoints the pre-fix progress fields (done, instructions,
        # refs) are all frozen -- only the wakeups mark forward motion
        mid = dog.checkpoints[1:-1]
        assert any(
            a.done == b.done
            and a.thread_instructions == b.thread_instructions
            and a.thread_refs == b.thread_refs
            and a.wakeups < b.wakeups
            for a, b in zip(mid, mid[1:])
        )
        # event time is checkpointed for the diagnostics
        assert dog.checkpoints[-1].sim_time == runtime.machine.time()

    def test_yield_spin_livelock_still_trips_with_wakeups_counted(
        self, machine
    ):
        """The wakeup term must not blind the detector: a Yield-spin
        livelock mints no timer wakeups and still times out."""
        runtime = _runtime(machine)

        def napper():
            yield Sleep(200)  # some wakeups early in the run
            while True:
                yield Yield()

        runtime.at_create(napper, name="napper")
        dog = Watchdog(step_budget=200, max_chunks=50, stall_chunks=2)
        with pytest.raises(WatchdogTimeout) as excinfo:
            dog.supervise(runtime)
        assert "no forward progress" in str(excinfo.value)

    def test_starvation_detection(self, machine):
        runtime = _runtime(machine)

        def hog():
            for _ in range(1_000):
                yield Compute(10_000)

        def waiter():
            yield Compute(1)

        runtime.at_create(hog, name="hog")
        runtime.at_create(waiter, name="waiter")
        dog = Watchdog(step_budget=20, max_chunks=100,
                       starvation_cycles=5_000)
        with pytest.raises(WatchdogTimeout) as excinfo:
            dog.supervise(runtime)
        assert "starvation" in str(excinfo.value)
        assert "waiter" in str(excinfo.value)


def _tiny_tasks():
    return TasksWorkload(TasksParams(num_tasks=6, periods=3))


class TestRunHardened:
    def test_fault_free_run(self):
        result = run_hardened(
            _tiny_tasks, SMALL, SCHEDULERS["fcfs"], plan=None
        )
        assert result.attempts == 1
        assert not result.safe_mode
        assert result.injections == {}
        assert result.invariant_checks["deep"] > 0
        assert all(s[3] == "done" for s in result.signature)

    def test_crash_retries_and_recovers_identically(self):
        baseline = run_hardened(
            _tiny_tasks, SMALL, SCHEDULERS["fcfs"], plan=None
        )
        crashy = FaultPlan(
            seed=1, thread=ThreadFaults(mode="crash", prob=1.0)
        )
        result = run_hardened(
            _tiny_tasks, SMALL, SCHEDULERS["fcfs"], plan=crashy,
            max_attempts=3,
        )
        # prob=1 crashes every non-safe attempt: the final safe-mode
        # attempt strips thread faults and must land the identical result
        assert result.attempts == 3
        assert result.safe_mode
        assert result.signature == baseline.signature

    def test_injected_livelock_raises_watchdog_timeout(self):
        plan = FaultPlan(
            seed=1, thread=ThreadFaults(mode="livelock", prob=1.0)
        )
        with pytest.raises(WatchdogTimeout):
            run_hardened(
                _tiny_tasks,
                SMALL,
                SCHEDULERS["fcfs"],
                plan=plan,
                watchdog=Watchdog(step_budget=500, max_chunks=30),
            )

    def test_signature_covers_every_thread(self):
        result = run_hardened(
            _tiny_tasks, SMALL, SCHEDULERS["fcfs"], plan=None
        )
        assert len(result.signature) == 6
        assert sorted(s[0] for s in result.signature) == [
            f"task-{i}" for i in range(6)
        ]
