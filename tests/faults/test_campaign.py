"""Tests for the fault campaign driver and its reporting."""

import pytest

from repro.faults import campaign_workloads, format_campaign, run_campaign
from repro.faults.campaign import CampaignRow
from repro.workloads.randomwalk import RandomWalkWorkload


def _fast_workloads():
    return {
        "randomwalk": lambda: RandomWalkWorkload(
            total_touches=1024, periods=2
        )
    }


class TestCampaign:
    def test_hint_faults_leave_results_identical(self):
        rows = run_campaign(
            workloads=_fast_workloads(),
            policies=("fcfs", "lff"),
            fault_classes=["annotation_chaos", "counter_noise",
                           "counter_zero"],
        )
        assert len(rows) == 6
        for row in rows:
            assert row.outcome == "identical", row.detail
            assert row.ok
            assert row.slowdown is not None

    def test_livelock_expects_watchdog_timeout(self):
        rows = run_campaign(
            workloads=_fast_workloads(),
            policies=("fcfs",),
            fault_classes=["thread_livelock"],
        )
        (row,) = rows
        assert row.outcome == "watchdog-timeout"
        assert row.ok

    def test_crash_survived_by_retry(self):
        rows = run_campaign(
            workloads=_fast_workloads(),
            policies=("fcfs",),
            fault_classes=["thread_crash"],
        )
        (row,) = rows
        assert row.outcome == "identical", row.detail
        assert row.attempts > 1

    def test_format_lists_failures(self):
        ok = CampaignRow("w", "fcfs", "counter_zero", "identical", True,
                         slowdown=1.0)
        bad = CampaignRow("w", "fcfs", "counter_wrap", "DIVERGED", False,
                          detail="tid 3 differs")
        text = format_campaign([ok, bad])
        assert "1/2 cells honoured the hint contract" in text
        assert "FAIL w/fcfs/counter_wrap: tid 3 differs" in text


class TestWorkloadRegistry:
    def test_smoke_and_default_scales(self):
        for scale in ("smoke", "default"):
            registry = campaign_workloads(scale)
            assert set(registry) == {
                "randomwalk", "tasks", "merge", "photo", "tsp"
            }

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            campaign_workloads("galactic")

    def test_factories_build_fresh_instances(self):
        factory = campaign_workloads("smoke")["randomwalk"]
        assert factory() is not factory()
