"""A workload where the static and dynamic verdicts genuinely disagree.

``slice-a``/``slice-b`` both touch the one ``sliced-table`` region, so
the static pass -- which reasons at whole-region granularity -- predicts
a definite edge between them.  But they work *disjoint halves* of the
region, so the dynamic audit observes zero line overlap.  The pair is
annotated (so neither SA001 nor SA002 applies) and the expected verdict
is exactly one SA003: static says definite, dynamics say nothing
overlapped, and unlike the conditional tier a definite edge has no
"only on some inputs" excuse.
"""

from __future__ import annotations

from typing import Generator

from repro.machine.address import Region
from repro.threads.events import Compute, Touch
from repro.workloads.base import Workload


class SlicedShareWorkload(Workload):
    """Whole-region static sharing that dynamic slicing disproves."""

    name = "slicedshare"

    def build(self, runtime) -> None:
        table = runtime.alloc_lines("sliced-table", 32)

        def half(region: Region, lo: int, hi: int) -> Generator:
            for _ in range(2):
                yield Touch(region.line_slice(lo, hi - lo), write=True)
                yield Compute(100)

        tid_a = runtime.at_create(half(table, 0, 16), name="slice-a")
        tid_b = runtime.at_create(half(table, 16, 32), name="slice-b")
        # annotated on the strength of the (wrong) whole-region reading
        runtime.at_share(tid_a, tid_b, 0.9)
