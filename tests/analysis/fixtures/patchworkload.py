"""A fixture workload whose annotation bugs are all literal-patchable.

The repair round-trip tests copy this file somewhere writable, audit it,
apply the synthesized patches to the copy, re-import it, and assert the
repaired module audits clean -- the ``repro analyze --fix`` contract in
miniature.  Keep every ``at_share`` q argument a literal: the point of
this fixture is that the whole defect set is mechanically fixable.

Seeded defects:

- a 4-thread chain over one fully-shared region, annotated in a loop
  with ``q=0.3`` in both directions -> AN003 per edge, at exactly two
  loop-generated call sites (one literal fixes three edges at once);
  the unannotated non-adjacent pairs additionally raise AN001 until the
  re-weighted chain's path product covers them;
- a disjoint pair annotated ``q=0.9`` -> AN002, fixed by patching the
  literal to 0.0 (a zero coefficient un-annotates the pair).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.machine.address import Region
from repro.threads.events import BarrierWait, Compute, Touch
from repro.threads.sync import Barrier
from repro.workloads.base import Workload


class PatchableWorkload(Workload):
    """Literal-only annotation bugs: every fix is an applicable patch."""

    name = "patchable"

    def build(self, runtime) -> None:
        shared = runtime.alloc_lines("patch-shared", 32)
        private_a = runtime.alloc_lines("patch-private-a", 32)
        private_b = runtime.alloc_lines("patch-private-b", 32)
        gate = Barrier(4, name="patch-gate")

        def toucher(region: Region, sync: Optional[Barrier] = None) -> Generator:
            # two passes so every thread revisits the shared lines after
            # the others' first touch (the auditor's temporal evidence)
            for _ in range(2):
                yield Touch(region.lines())
                yield Compute(100)
                if sync is not None:
                    yield BarrierWait(sync)

        chain = [
            runtime.at_create(toucher(shared, gate), name=f"chain-{i}")
            for i in range(4)
        ]
        for left, right in zip(chain, chain[1:]):
            runtime.at_share(left, right, 0.3)
            runtime.at_share(right, left, 0.3)

        lone_a = runtime.at_create(toucher(private_a), name="lone-a")
        lone_b = runtime.at_create(toucher(private_b), name="lone-b")
        runtime.at_share(lone_a, lone_b, 0.9)
