"""A workload whose sharing hides on a code path the audit never runs.

``cold-a``/``cold-b`` each work a private scratch region every period,
but touch the one shared region only when ``deep=True`` -- and the
analysis config builds the workload with the default ``deep=False``.
The dynamic auditor therefore sees two disjoint threads and has nothing
to say; only the static pass can see the ``if self.deep`` branch and
predict the (conditional-tier) sharing.  The pair is deliberately
unannotated, so the expected verdict is:

- SA001 on (cold-a, cold-b), conditional tier, via ``cold-shared``;
- no SA003 (the conditional tier is exempt: "runs only on some inputs"
  is exactly what the tier asserts, so zero dynamic overlap is not a
  disagreement);
- one unexercised-path repair candidate from the SA001 bridge.
"""

from __future__ import annotations

from typing import Generator

from repro.machine.address import Region
from repro.threads.events import Compute, Touch
from repro.workloads.base import Workload


class ColdPathWorkload(Workload):
    """Sharing gated behind a flag the analysis run leaves off."""

    name = "coldpath"

    def __init__(self, deep: bool = False) -> None:
        self.deep = deep

    def build(self, runtime) -> None:
        shared = runtime.alloc_lines("cold-shared", 32)
        scratch_a = runtime.alloc_lines("cold-scratch-a", 32)
        scratch_b = runtime.alloc_lines("cold-scratch-b", 32)

        def worker(scratch: Region) -> Generator:
            for _ in range(2):
                yield Touch(scratch.lines(), write=True)
                yield Compute(100)
                if self.deep:
                    # the cold path: both workers rescan the shared
                    # table, but only on deep runs the audit never does
                    yield Touch(shared.lines())
                    yield Compute(100)

        runtime.at_create(worker(scratch_a), name="cold-a")
        runtime.at_create(worker(scratch_b), name="cold-b")
        # deliberately unannotated: the dynamic audit cannot miss what it
        # never observes, so only SA001 can ask for the edge
