"""Deliberately buggy fixture workloads for the analysis passes.

Each class plants exactly the defect its name says, so the tests can
assert the linter reports the right code for the right pair -- the
analysis analogue of the fault campaign's seeded chaos.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.machine.address import Region
from repro.threads.events import (
    Acquire,
    BarrierWait,
    Compute,
    Join,
    Release,
    Touch,
)
from repro.threads.sync import Barrier, Mutex
from repro.workloads.base import Workload


class MisannotatedWorkload(Workload):
    """Every annotation bug at once, on separate thread pairs.

    - ``sharer-a``/``sharer-b`` overlap on most of a shared region but
      carry NO annotation -> AN001 missing-edge;
    - ``loner-a``/``loner-b`` touch disjoint regions but annotate
      ``q=0.9`` -> AN002 spurious-edge;
    - ``half-a``/``half-b`` overlap on ~half of ``half-a``'s footprint
      but annotate ``q=1.0`` -> AN003 mis-weighted-edge.
    """

    name = "misannotated"

    def __init__(self) -> None:
        self.shared: Optional[Region] = None

    def build(self, runtime) -> None:
        shared = runtime.alloc_lines("fixture-shared", 32)
        private_a = runtime.alloc_lines("fixture-private-a", 32)
        private_b = runtime.alloc_lines("fixture-private-b", 32)
        half = runtime.alloc_lines("fixture-half", 32)
        self.shared = shared
        gate = Barrier(2, name="fixture-gate")

        def toucher(region: Region, lo: int, hi: int,
                    sync: Optional[Barrier] = None) -> Generator:
            # two passes so both threads revisit the shared lines after
            # the other's first touch (the linter's temporal evidence)
            for _ in range(2):
                yield Touch(region.line_slice(lo, hi - lo))
                yield Compute(100)
                if sync is not None:
                    yield BarrierWait(sync)

        tid_a = runtime.at_create(
            toucher(shared, 0, 32, gate), name="sharer-a"
        )
        tid_b = runtime.at_create(
            toucher(shared, 0, 32, gate), name="sharer-b"
        )
        # AN001: tid_a/tid_b share everything; deliberately unannotated.

        lon_a = runtime.at_create(toucher(private_a, 0, 32), name="loner-a")
        lon_b = runtime.at_create(toucher(private_b, 0, 32), name="loner-b")
        runtime.at_share(lon_a, lon_b, 0.9)  # AN002: nothing shared

        half_a = runtime.at_create(toucher(half, 0, 32), name="half-a")
        half_b = runtime.at_create(toucher(half, 16, 32), name="half-b")
        runtime.at_share(half_a, half_b, 1.0)  # AN003: overlap is ~0.5


class ABBAWorkload(Workload):
    """The classic AB/BA lock-order bug, serialised so it cannot deadlock.

    ``first`` takes A then B; ``second`` (which joins ``first`` before
    touching any lock) takes B then A.  The run always completes -- the
    orders never overlap in time -- so PR 1's runtime sees nothing wrong;
    only an *unlucky* schedule of an un-serialised variant would ever
    deadlock.  Both the static scan and the dynamic lock-order graph must
    still flag the cycle (LK001): the hazard is in the order, not in the
    schedule that happened.
    """

    name = "abba"

    def __init__(self) -> None:
        self.mutex_a = Mutex(name="lock-a")
        self.mutex_b = Mutex(name="lock-b")

    def build(self, runtime) -> None:
        region = runtime.alloc_lines("abba-data", 8)

        def first() -> Generator:
            yield Acquire(self.mutex_a)
            yield Acquire(self.mutex_b)
            yield Touch(region.lines(), write=True)
            yield Release(self.mutex_b)
            yield Release(self.mutex_a)

        def second(first_tid: int) -> Generator:
            yield Join(first_tid)
            yield Acquire(self.mutex_b)
            yield Acquire(self.mutex_a)
            yield Touch(region.lines(), write=True)
            yield Release(self.mutex_a)
            yield Release(self.mutex_b)

        tid = runtime.at_create(first, name="abba-first")
        runtime.at_create(lambda: second(tid), name="abba-second")


class LeakyLockWorkload(Workload):
    """Blocks while holding one mutex (LK002) and finishes still owning
    another (LK003); completes normally, so only analysis notices."""

    name = "leakylock"

    def __init__(self) -> None:
        self.held = Mutex(name="held-across-join")
        self.leaked = Mutex(name="never-released")

    def build(self, runtime) -> None:
        region = runtime.alloc_lines("leaky-data", 4)

        def child() -> Generator:
            yield Touch(region.lines())
            yield Compute(50)

        def parent() -> Generator:
            tid = runtime.at_create(child, name="leaky-child")
            yield Acquire(self.held)
            yield Join(tid)  # LK002: blocking while holding
            yield Release(self.held)
            yield Acquire(self.leaked)
            yield Compute(10)
            # LK003: body ends without releasing

        runtime.at_create(parent, name="leaky-parent")


class RacyWorkload(Workload):
    """Two unsynchronized writers over one region (RS001), plus a
    properly-locked pair over another region that must stay clean."""

    name = "racy"

    def __init__(self) -> None:
        self.lock = Mutex(name="clean-lock")

    def build(self, runtime) -> None:
        racy = runtime.alloc_lines("racy-region", 16)
        clean = runtime.alloc_lines("clean-region", 16)

        def unsynced(name: str) -> Generator:
            for _ in range(2):
                yield Touch(racy.lines(), write=True)
                yield Compute(50)

        def locked() -> Generator:
            for _ in range(2):
                yield Acquire(self.lock)
                yield Touch(clean.lines(), write=True)
                yield Compute(50)
                yield Release(self.lock)

        runtime.at_create(unsynced("w1"), name="racer-1")
        runtime.at_create(unsynced("w2"), name="racer-2")
        runtime.at_create(locked, name="locked-1")
        runtime.at_create(locked, name="locked-2")
