"""The annotation repair engine: synthesis, localization, verification,
patch application, and the baseline waiver machinery."""

import importlib.util
import shutil
from pathlib import Path

import pytest

from repro.analysis.astmap import scan_share_sites, site_at
from repro.analysis.diagnostics import (
    Diagnostic,
    Report,
    add_waiver,
    load_baseline,
    load_waivers,
    refresh_baseline,
    write_baseline,
)
from repro.analysis.engine import audit_workload
from repro.analysis.repair import (
    AnnotationOverlay,
    apply_fixes,
    localize_fixes,
    repair_workload,
    synthesize_fixes,
    verify_fixes,
)
from repro.cli import main

from tests.analysis.fixtures.badworkloads import MisannotatedWorkload

FIXTURE = Path(__file__).parent / "fixtures" / "patchworkload.py"
WORKLOADS = Path("src/repro/workloads")


def _load_workload_class(path: Path, version: str):
    spec = importlib.util.spec_from_file_location(
        f"patchfix_{version}", str(path)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.PatchableWorkload


# -- synthesis ----------------------------------------------------------------


def test_synthesis_actions_match_diagnostic_codes():
    audit = audit_workload(
        "misannotated",
        workload_factory=MisannotatedWorkload,
        passes=("annotations",),
    )
    fixes = synthesize_fixes(audit)
    by_action = {}
    for fix in fixes:
        by_action.setdefault(fix.action, []).append(fix)
    # loner pair: annotated but disjoint -> drop to zero
    (drop,) = by_action["drop"]
    assert (drop.src_name, drop.dst_name) == ("loner-a", "loner-b")
    assert drop.new_q == 0.0
    # half pair: annotated 1.0, observed ~0.5 -> reweight to observed
    (reweight,) = by_action["reweight"]
    assert (reweight.src_name, reweight.dst_name) == ("half-a", "half-b")
    assert abs(reweight.new_q - reweight.observed_q) < 0.01
    # sharer pair: unannotated, no covering path -> add
    assert any(
        (f.src_name, f.dst_name) == ("sharer-a", "sharer-b")
        for f in by_action["add"]
    )
    # every fix claims at least one concrete fingerprint
    assert all(fix.claims for fix in fixes)


def test_synthesized_add_without_call_site_is_suggestion_only():
    audit = audit_workload(
        "misannotated",
        workload_factory=MisannotatedWorkload,
        passes=("annotations",),
    )
    site_fixes = localize_fixes(audit, synthesize_fixes(audit))
    adds = [sf for sf in site_fixes if sf.action == "add"]
    assert adds
    assert all(not sf.patchable for sf in adds)
    assert all("no existing call site" in sf.note for sf in adds)


def test_auditor_records_annotation_call_sites():
    audit = audit_workload(
        "misannotated",
        workload_factory=MisannotatedWorkload,
        passes=("annotations",),
    )
    sites = set(audit.auditor.annotation_sites.values())
    assert sites, "no call sites recorded"
    assert all(path.endswith("badworkloads.py") for path, _line in sites)


# -- AST localization ---------------------------------------------------------


def test_astmap_finds_loop_generated_literal_sites():
    """tsp's parent/child annotations live in the spawn loop with literal
    q arguments: loop-generated AND patchable."""
    sites = scan_share_sites(str(WORKLOADS / "tsp.py"))
    assert len(sites) == 2
    assert all(site.in_loop for site in sites)
    assert all(site.patchable for site in sites)
    assert sorted(site.q_literal for site in sites) == [0.68, 0.8]


def test_astmap_computed_q_is_not_patchable():
    """photo's stencil-row sites compute q from the halo distance; the
    scan must find them, mark the loop, and refuse to call them literal."""
    sites = scan_share_sites(str(WORKLOADS / "photo.py"))
    assert len(sites) == 4
    assert all(site.in_loop for site in sites)
    assert all(not site.patchable for site in sites)
    assert all(site.q_expr == "q" for site in sites)


def test_astmap_site_at_maps_lines_to_sites():
    sites = scan_share_sites(str(FIXTURE))
    in_loop = [s for s in sites if s.in_loop]
    assert len(in_loop) == 2  # the chain's two directions
    hit = site_at(sites, in_loop[0].line)
    assert hit is in_loop[0]
    assert site_at(sites, 1) is None


# -- verification -------------------------------------------------------------


def test_verification_demotes_an_ineffective_fix():
    """A fix whose new q equals the bad old q cannot clear its claims;
    the CEGAR loop must demote it instead of declaring victory."""
    from dataclasses import replace

    audit = audit_workload(
        "patchable",
        workload_factory=_load_workload_class(FIXTURE, "verify"),
        passes=("annotations",),
    )
    site_fixes = localize_fixes(audit, synthesize_fixes(audit))
    sabotaged = [
        replace(
            sf,
            new_literal=None,
            edges=tuple(
                replace(e, new_q=e.old_q if e.old_q is not None else e.new_q)
                for e in sf.edges
            ),
        )
        for sf in site_fixes
    ]
    factory = _load_workload_class(FIXTURE, "verify2")
    verified, demoted, _ = verify_fixes(
        "patchable", factory, sabotaged, audit.findings
    )
    assert verified == []
    assert len(demoted) == len(sabotaged)


def test_blind_overlay_drops_all_workload_edges():
    overlay = AnnotationOverlay(blind=True)
    audit = audit_workload(
        "patchable",
        workload_factory=_load_workload_class(FIXTURE, "blind"),
        passes=("annotations",),
        overlay=overlay,
    )
    assert audit.auditor.annotated == {}


# -- the --fix round trip -----------------------------------------------------


def test_fix_round_trip_and_idempotence(tmp_path):
    """suggest -> apply -> re-audit-clean, and a second --fix is a no-op."""
    work = tmp_path / "patchworkload.py"
    shutil.copy(FIXTURE, work)

    first = repair_workload(
        "patchable",
        workload_factory=_load_workload_class(work, "rt1"),
        with_locality=False,
    )
    assert first.fixes, "no verified fixes on the seeded-bad fixture"
    assert first.suggestions == []
    assert all(vf.fix.patchable for vf in first.fixes)

    patched = apply_fixes(first.patchable_fixes)
    assert patched == [str(work)]
    text = work.read_text()
    assert "runtime.at_share(left, right, 1.00)" in text
    assert "runtime.at_share(right, left, 1.00)" in text
    assert "runtime.at_share(lone_a, lone_b, 0.0)" in text
    assert "0.3)" not in text  # no bad chain literal survives
    assert "0.9)" not in text  # the spurious edge was zeroed

    # the repaired copy must audit clean
    audit = audit_workload(
        "patchable",
        workload_factory=_load_workload_class(work, "rt2"),
        passes=("annotations",),
    )
    assert audit.findings == []

    # idempotence: a second repair finds nothing and patches nothing
    second = repair_workload(
        "patchable",
        workload_factory=_load_workload_class(work, "rt3"),
        with_locality=False,
    )
    assert second.fixes == []
    assert apply_fixes(second.patchable_fixes) == []
    assert work.read_text() == text


def test_shipped_workloads_have_no_pending_fixes():
    """The engine's own output was applied to the repo (tsp.py); the
    shipped annotations must stay fix-free from here on."""
    for name in ("merge", "photo", "tasks", "tsp"):
        result = repair_workload(name, with_locality=False)
        assert result.fixes == [], f"{name} has unapplied verified fixes"


def test_cli_suggest_reports_and_exits_zero(capsys):
    code = main(["analyze", "--workload", "tsp", "--suggest"])
    out = capsys.readouterr().out
    assert code == 0
    assert "repair(tsp): 0 verified fix(es)" in out


# -- waivers and strict baseline ----------------------------------------------


def _report(*diags):
    report = Report()
    report.extend(diags)
    report.finalize()
    return report


def test_waiver_round_trip(tmp_path):
    baseline = str(tmp_path / "base.txt")
    diag = Diagnostic(code="RS001", message="benign race", source="races(x)")
    report = _report(diag)
    write_baseline(baseline, report, waivers={diag.fingerprint(): "by design"})
    assert load_waivers(baseline) == {diag.fingerprint(): "by design"}
    assert diag.fingerprint() in load_baseline(baseline)


def test_update_baseline_preserves_waivers(tmp_path):
    baseline = str(tmp_path / "base.txt")
    diag = Diagnostic(code="RS001", message="benign race", source="races(x)")
    write_baseline(
        baseline, _report(diag), waivers={diag.fingerprint(): "by design"}
    )
    # refresh with the same finding plus a new warning
    extra = Diagnostic(code="AN002", message="spurious", source="annotations(x)")
    blocking = refresh_baseline(baseline, _report(diag, extra))
    assert blocking == []
    assert load_waivers(baseline) == {diag.fingerprint(): "by design"}
    assert extra.fingerprint() in load_baseline(baseline)


def test_add_waiver_refuses_new_error_severity(tmp_path):
    baseline = tmp_path / "base.txt"
    baseline.write_text("# empty\n")
    error_diag = Diagnostic(code="LK001", message="cycle", source="locks(x)")
    report = _report(error_diag)
    message = add_waiver(
        str(baseline), report, error_diag.fingerprint(), "please ignore"
    )
    assert message is not None and "refusing" in message
    assert baseline.read_text() == "# empty\n"  # untouched


def test_add_waiver_unknown_fingerprint_rejected(tmp_path):
    baseline = tmp_path / "base.txt"
    baseline.write_text("# empty\n")
    message = add_waiver(str(baseline), _report(), "cafecafecafe", "reason")
    assert message is not None and "no current finding" in message


def test_checked_in_waivers_justify_every_rs001():
    """The shipped baseline documents why each merge race is accepted."""
    waivers = load_waivers("analysis-baseline.txt")
    accepted = load_baseline("analysis-baseline.txt")
    assert accepted, "baseline is empty"
    assert set(waivers) == accepted  # every remaining entry is waived
    assert all("by-design" in reason for reason in waivers.values())


def test_strict_baseline_fails_on_stale_entries(tmp_path, capsys):
    baseline = tmp_path / "base.txt"
    shutil.copy("analysis-baseline.txt", baseline)
    with open(baseline, "a", encoding="utf-8") as fh:
        fh.write("deadbeefcafe  RS001 a finding nobody produces anymore\n")
    code = main(
        ["analyze", "--workload", "merge", "--baseline", str(baseline),
         "--strict-baseline"]
    )
    err = capsys.readouterr().err
    assert code == 1
    assert "stale" in err
    assert "deadbeefcafe" in err


def test_strict_baseline_passes_when_exact(capsys):
    code = main(
        ["analyze", "--workload", "merge", "--baseline",
         "analysis-baseline.txt", "--strict-baseline"]
    )
    assert code == 0


def test_an001_symmetric_dedupe_emits_one_direction():
    audit = audit_workload(
        "misannotated",
        workload_factory=MisannotatedWorkload,
        passes=("annotations",),
    )
    an001 = [d.message for d in audit.findings if d.code == "AN001"]
    forward = [m for m in an001 if "sharer-a -> sharer-b" in m]
    backward = [m for m in an001 if "sharer-b -> sharer-a" in m]
    assert len(forward) == 1
    assert backward == []
