"""The shared source registry: one parse per module per analysis run."""

import pytest

from repro.analysis.astmap import scan_share_sites
from repro.analysis.engine import audit_workload, static_validate_workload
from repro.analysis.locks import scan_workload_class
from repro.analysis.sources import SourceRegistry
from repro.analysis.staticshare import predict_workload


def test_registry_parses_each_file_once(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("X = 1\n")
    registry = SourceRegistry()
    first = registry.tree(str(path))
    second = registry.tree(str(path))
    assert first is second
    assert registry.parse_count == 1


def test_registry_resolves_path_spellings(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("X = 1\n")
    registry = SourceRegistry()
    registry.tree(str(path))
    registry.tree(str(tmp_path / "." / "mod.py"))
    assert registry.parse_count == 1


def test_registry_propagates_read_and_parse_errors(tmp_path):
    registry = SourceRegistry()
    with pytest.raises(OSError):
        registry.tree(str(tmp_path / "absent.py"))
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(SyntaxError):
        registry.tree(str(bad))


def test_all_passes_share_one_parse_of_the_workload_module():
    """The dedup regression gate: lock scan, astmap, and the static
    sharing inference all consume the same tree, so a full per-workload
    analysis parses the workload module exactly once."""
    import inspect

    from repro.workloads import TspWorkload

    registry = SourceRegistry()
    source_file = inspect.getsourcefile(TspWorkload)
    scan_workload_class(TspWorkload, registry=registry)
    scan_share_sites(source_file, registry=registry)
    assert predict_workload(TspWorkload, "tsp", registry=registry) is not None
    assert registry.parse_count == 1


def test_engine_threads_one_registry_through_audit_and_static():
    registry = SourceRegistry()
    audit = audit_workload("tsp", registry=registry)
    parses_after_audit = registry.parse_count
    assert parses_after_audit == 1  # the lock scan's parse
    validation = static_validate_workload("tsp", registry=registry, audit=audit)
    assert validation is not None
    assert registry.parse_count == parses_after_audit  # reused, not reparsed
