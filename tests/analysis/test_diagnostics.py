"""Diagnostic framework: codes, ordering, fingerprints, baselines."""

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Report,
    load_baseline,
    write_baseline,
)


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic(code="XX999", message="nope")


def test_severity_and_title_come_from_registry():
    diag = Diagnostic(code="LK001", message="cycle")
    assert diag.severity == "error"
    assert diag.title == "lock-order-cycle"
    assert set(CODES["AN001"]) == {"warning", "missing-edge"}


def test_render_includes_anchor_code_and_source():
    diag = Diagnostic(
        code="DT001",
        message="default_rng() without a seed",
        anchor="repro/x.py:12",
        source="repro-lint",
    )
    text = diag.render()
    assert "repro/x.py:12" in text
    assert "DT001" in text
    assert "error" in text
    assert "[repro-lint]" in text


def test_fingerprint_is_stable_and_content_sensitive():
    a = Diagnostic(code="AN001", message="m", anchor="f:1", source="s")
    b = Diagnostic(code="AN001", message="m", anchor="f:1", source="s")
    c = Diagnostic(code="AN002", message="m", anchor="f:1", source="s")
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    assert len(a.fingerprint()) == 12


def test_report_orders_deterministically():
    diags = [
        Diagnostic(code="RS001", message="z", source="races(b)"),
        Diagnostic(code="AN001", message="a", source="annotations(a)"),
        Diagnostic(code="AN001", message="a", source="annotations(a)",
                   anchor="f:2"),
    ]
    report = Report(diagnostics=list(diags))
    report.finalize()
    rendered = report.render()
    assert rendered == Report(diagnostics=list(reversed(diags))).render()
    assert rendered.index("annotations(a)") < rendered.index("races(b)")


def test_baseline_roundtrip_suppresses(tmp_path):
    diag = Diagnostic(code="AN002", message="spurious", source="t")
    report = Report(diagnostics=[diag])
    path = tmp_path / "baseline.txt"
    write_baseline(str(path), report)
    accepted = load_baseline(str(path))
    assert diag.fingerprint() in accepted
    report.baseline = accepted
    assert report.new_diagnostics() == []
    assert "(baseline)" in report.render()
    fresh = Diagnostic(code="AN001", message="new", source="t")
    report.extend([fresh])
    assert report.new_diagnostics() == [fresh]


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.txt")) == set()
