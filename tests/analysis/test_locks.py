"""Lock-order analysis: static + dynamic cycles, held-lock hygiene."""

from repro.analysis.engine import analyze_workload
from repro.analysis.locks import LockGraph, scan_workload_class
from repro.workloads.mergesort import MergeWorkload
from repro.workloads.tasks import TasksWorkload
from repro.workloads.tsp import TspWorkload

from tests.analysis.fixtures.badworkloads import (
    ABBAWorkload,
    LeakyLockWorkload,
)


def test_lock_graph_finds_canonical_cycle():
    graph = LockGraph()
    graph.add("a", "b", None)
    graph.add("b", "c", None)
    graph.add("c", "a", None)
    graph.add("a", "x", None)  # dead-end edge must not disturb the cycle
    assert graph.cycles() == [["a", "b", "c"]]


def test_lock_graph_acyclic_is_quiet():
    graph = LockGraph()
    graph.add("a", "b", None)
    graph.add("b", "c", None)
    assert graph.cycles() == []
    assert graph.cycle_diagnostics("locks(t)") == []


def test_static_scan_flags_abba_with_anchor():
    """The AB/BA hazard is visible from the workload source alone --
    before any run, let alone PR 1's runtime deadlock detector."""
    graph, rel = scan_workload_class(ABBAWorkload)
    assert graph.cycles() == [["self.mutex_a", "self.mutex_b"]]
    diags = graph.cycle_diagnostics("locks(abba):static")
    assert len(diags) == 1
    assert diags[0].code == "LK001"
    assert diags[0].anchor and "badworkloads.py:" in diags[0].anchor
    assert "self.mutex_a -> self.mutex_b -> self.mutex_a" in diags[0].message


def test_dynamic_pass_flags_abba_even_though_run_completes():
    """The fixture serialises the two orders, so the run finishes and
    the runtime never raises DeadlockError -- the analysis still must."""
    found = analyze_workload(
        "abba", workload_factory=ABBAWorkload, passes=("locks",)
    )
    dynamic = [
        d for d in found if d.code == "LK001" and d.source == "locks(abba)"
    ]
    assert len(dynamic) == 1
    assert "lock-a -> lock-b -> lock-a" in dynamic[0].message


def test_blocking_and_finishing_while_holding():
    found = analyze_workload(
        "leakylock", workload_factory=LeakyLockWorkload, passes=("locks",)
    )
    lk002 = [d for d in found if d.code == "LK002"]
    lk003 = [d for d in found if d.code == "LK003"]
    assert len(lk002) == 1
    assert "held-across-join" in lk002[0].message
    assert "join(leaky-child)" in lk002[0].message
    assert len(lk003) == 1
    assert "never-released" in lk003[0].message


def test_shipped_workloads_are_lock_clean():
    for name in ("tasks", "merge", "tsp"):
        found = analyze_workload(name, passes=("locks",))
        assert found == [], f"{name}: {[d.render() for d in found]}"


def test_static_scan_of_shipped_workloads_is_cycle_free():
    for cls in (MergeWorkload, TasksWorkload, TspWorkload):
        graph, _rel = scan_workload_class(cls)
        assert graph.cycles() == []
