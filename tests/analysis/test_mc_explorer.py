"""The DPOR explorer: coverage, determinism, and the MC003 theorem."""

import pytest

from repro.analysis.mc import (
    FIXTURES,
    FULL_BUDGET,
    SMALL_BUDGET,
    AnnotationChaos,
    MCBudget,
    explore,
    explore_all,
    explore_fixture,
)
from repro.analysis.mc.fixtures import CounterFixture, OrderSignatureFixture

TINY = MCBudget("tiny", max_runs=3, max_events_per_run=5000,
                max_decisions=400, preemption_bound=0)


class TestCoverage:
    def test_every_clean_fixture_explores_to_completion(self):
        for name, factory in FIXTURES.items():
            result = explore(factory, SMALL_BUDGET, fixture_name=name)
            assert result.complete, f"{name} did not exhaust its tree"
            assert result.runs >= 1
            assert result.truncated == 0

    def test_dpor_matches_exhaustive_signatures(self):
        """Ground truth: on every fixture, DPOR reaches exactly the same
        final results as plain exhaustive enumeration."""
        for name, factory in FIXTURES.items():
            dpor = explore(factory, SMALL_BUDGET, dpor=True,
                           fixture_name=name)
            full = explore(factory, SMALL_BUDGET, dpor=False,
                           fixture_name=name)
            assert dpor.complete and full.complete
            assert dpor.signatures == full.signatures, name
            assert dpor.runs <= full.runs, name

    def test_dpor_actually_prunes_somewhere(self):
        dpor = explore(CounterFixture, SMALL_BUDGET, dpor=True)
        full = explore(CounterFixture, SMALL_BUDGET, dpor=False)
        assert dpor.runs < full.runs

    def test_multiple_interleavings_are_explored(self):
        result = explore(CounterFixture, SMALL_BUDGET, dpor=False)
        assert result.runs > 1
        assert result.nodes > 1
        assert result.max_depth > 1

    def test_exploration_is_deterministic(self):
        a = explore(CounterFixture, SMALL_BUDGET)
        b = explore(CounterFixture, SMALL_BUDGET)
        assert (a.runs, a.pruned, a.nodes, a.signatures) == (
            b.runs, b.pruned, b.nodes, b.signatures
        )

    def test_budget_exhaustion_reported_as_incomplete(self):
        result = explore(CounterFixture, TINY, dpor=False)
        assert not result.complete
        assert result.runs + result.pruned == TINY.max_runs


class TestResultInvariance:
    def test_single_signature_across_all_interleavings(self):
        for name, factory in FIXTURES.items():
            result = explore(factory, SMALL_BUDGET, fixture_name=name)
            assert len(result.signatures) == 1, name

    def test_chaos_annotations_cannot_change_results(self):
        """The paper's theorem, checked exhaustively: corrupted at_share
        edges leave every reachable final result bit-identical."""
        for name in FIXTURES:
            results, diags = explore_fixture(name, SMALL_BUDGET)
            clean, chaos = results
            assert clean.signatures == chaos.signatures, name
            assert diags == [], name

    def test_preemption_bound_widens_coverage_not_results(self):
        factory = lambda: CounterFixture(threads=2, iters=1)
        bounded = explore(factory, SMALL_BUDGET, fixture_name="c2")
        preempting = explore(factory, FULL_BUDGET, fixture_name="c2")
        assert preempting.preemption_bound == 1
        assert preempting.runs > bounded.runs
        assert preempting.signatures == bounded.signatures


class TestDivergenceDetection:
    def test_order_dependent_results_yield_mc003(self):
        result = explore(OrderSignatureFixture, SMALL_BUDGET)
        assert len(result.signatures) > 1
        codes = [d.code for d in result.diagnostics()]
        assert "MC003" in codes

    def test_explore_fixture_flags_chaos_divergence(self):
        """If chaos reached results clean exploration never reaches,
        explore_fixture reports the cross-mode MC003."""
        registry = {"order": OrderSignatureFixture}
        results, diags = explore_fixture(
            "order", SMALL_BUDGET, registry=registry
        )
        assert any(d.code == "MC003" for d in diags)


class TestPlumbing:
    def test_unknown_fixture_raises(self):
        with pytest.raises(KeyError):
            explore_fixture("no-such-fixture", SMALL_BUDGET)

    def test_explore_all_covers_registry(self):
        results, diags = explore_all(SMALL_BUDGET, chaos=False)
        assert sorted({r.fixture for r in results}) == sorted(FIXTURES)
        assert diags == []

    def test_chaos_injector_is_schedule_independent(self):
        chaos = AnnotationChaos()
        assert chaos.transform_share(1, 2, 0.25) == chaos.transform_share(
            1, 2, 0.25
        )
