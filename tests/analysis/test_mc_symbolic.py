"""Symbolic cache-model verification: exactness and discrimination."""

import numpy as np

from repro.analysis.mc import verify_cache_model
from repro.core.model import SharedStateModel


class TestCleanModel:
    def test_all_small_configurations_hold(self):
        """Closed form == chain, reductions and monotonicity, for every
        N <= 8, S <= N, the q grid, n <= 16."""
        diags, stats = verify_cache_model(max_lines=8, max_misses=16)
        assert diags == []
        assert stats.failures == 0
        # 7 cache sizes, S in 0..N, 5 q values
        assert stats.configs == sum(n + 1 for n in range(2, 9)) * 5
        assert stats.checks > stats.configs

    def test_sweep_is_deterministic(self):
        a = verify_cache_model(max_lines=4, max_misses=8)
        b = verify_cache_model(max_lines=4, max_misses=8)
        assert [d.render() for d in a[0]] == [d.render() for d in b[0]]
        assert (a[1].checks, a[1].configs) == (b[1].checks, b[1].configs)

    def test_unsorted_q_grid_is_handled(self):
        diags, _stats = verify_cache_model(
            max_lines=3, max_misses=4, qs=(1.0, 0.0, 0.5)
        )
        assert diags == []


class _WrongDecay(SharedStateModel):
    """Uses k = (N-2)/N: everything drifts off the exact chain."""

    def decay(self, misses):
        n = np.asarray(misses, dtype=float)
        k = (self.num_lines - 2) / self.num_lines
        out = np.power(k, n)
        return float(out) if out.ndim == 0 else out


class _BrokenReduction(SharedStateModel):
    """Case 1 disagrees with case 3 at q=1."""

    def expected_running(self, initial, misses):
        return super().expected_running(initial, misses) + 0.5


class TestDiscrimination:
    def test_wrong_decay_constant_yields_mc005(self):
        diags, stats = verify_cache_model(
            max_lines=4, max_misses=8, model_cls=_WrongDecay
        )
        assert stats.failures > 0
        assert all(d.code == "MC005" for d in diags)
        assert any("deviates" in d.message for d in diags)

    def test_broken_reduction_yields_mc005(self):
        diags, _stats = verify_cache_model(
            max_lines=4, max_misses=8, model_cls=_BrokenReduction
        )
        assert any(
            "reduce to case 1" in d.message for d in diags
        )

    def test_flood_is_capped(self):
        diags, stats = verify_cache_model(
            max_lines=8, max_misses=16, model_cls=_WrongDecay
        )
        assert stats.failures > len(diags)
        assert len(diags) <= 13  # MAX_REPORTED + the suppression note
        assert any("suppressed" in d.message for d in diags)
