"""The static sharing inference: prediction, cross-validation, bridge.

The seeded-bad fixtures pin the SA codes exactly; the shipped workloads
pin the pass's precision/recall (asserted to the digit -- these are the
paper-facing numbers the CI job also checks); the bridge tests pin the
acceptance round-trip: an SA001 finding on an unexercised code path
becomes a repair candidate that ``repro analyze --suggest --static``
would print.
"""

import re

from repro.analysis.diagnostics import (
    Report,
    add_waiver,
    load_baseline,
    load_waivers,
    refresh_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    audit_workload,
    lint_workload_names,
    run_analysis,
    static_validate_workload,
)
from repro.analysis.repair import render_report, repair_workload
from repro.analysis.staticshare import (
    TIER_CONDITIONAL,
    TIER_DEFINITE,
    render_prediction,
    static_candidates,
)

from tests.analysis.fixtures.badworkloads import MisannotatedWorkload
from tests.analysis.fixtures.coldpath import ColdPathWorkload
from tests.analysis.fixtures.patchworkload import PatchableWorkload
from tests.analysis.fixtures.slicedshare import SlicedShareWorkload


def _validate(name, cls, dynamic=True):
    audit = (
        audit_workload(name, workload_factory=cls, passes=("annotations",))
        if dynamic
        else None
    )
    return static_validate_workload(name, workload_factory=cls, audit=audit)


def _codes(validation):
    return [d.code for d in validation.diagnostics]


# -- seeded-bad fixtures: exact SA verdicts --------------------------------


def test_misannotated_unannotated_sharing_is_sa001():
    validation = _validate("misannotated", MisannotatedWorkload)
    assert _codes(validation) == ["SA001", "SA002"]
    sa001 = validation.diagnostics[0]
    assert "sharer-a <-> sharer-b" in sa001.message
    assert "fixture-shared" in sa001.message
    assert "[definite]" in sa001.message
    assert sa001.anchor.startswith("tests/analysis/fixtures/badworkloads.py:")


def test_misannotated_disjoint_annotation_is_sa002():
    validation = _validate("misannotated", MisannotatedWorkload)
    sa002 = [d for d in validation.diagnostics if d.code == "SA002"]
    assert len(sa002) == 1
    assert "loner-a -> loner-b" in sa002[0].message


def test_misannotated_half_overlap_stays_silent():
    """Static granularity is whole-region: the half-a/half-b pair is
    predicted *and* annotated, so no SA code fires -- the q mismatch is
    the dynamic auditor's AN003, not a static finding."""
    validation = _validate("misannotated", MisannotatedWorkload)
    messages = " | ".join(d.message for d in validation.diagnostics)
    assert "half-a" not in messages


def test_patchable_lone_pair_is_sa002_and_chain_is_covered():
    validation = _validate("patchable", PatchableWorkload)
    assert _codes(validation) == ["SA002"]
    assert "lone-a -> lone-b" in validation.diagnostics[0].message
    # the chain-* self edge (loop-spawned siblings) is predicted definite
    # and covered by the zip-loop annotations: no SA001
    assert ("chain-*", "chain-*") in validation.static_pairs


def test_sliced_share_is_sa003_disagreement():
    """Definite static edge, zero dynamic overlap, both units ran: the
    one combination that is a genuine static/dynamic disagreement."""
    validation = _validate("slicedshare", SlicedShareWorkload)
    assert _codes(validation) == ["SA003"]
    assert "slice-a <-> slice-b" in validation.diagnostics[0].message
    assert "zero overlap" in validation.diagnostics[0].message


def test_sliced_share_without_dynamics_stays_silent():
    """SA003 needs a run; the purely static arm cannot disagree with
    evidence it does not have."""
    validation = _validate("slicedshare", SlicedShareWorkload, dynamic=False)
    assert _codes(validation) == []
    assert validation.recall is None and validation.precision is None


# -- the cold-path fixture: the acceptance round-trip ----------------------


def test_coldpath_unexercised_sharing_is_conditional_sa001():
    validation = _validate("coldpath", ColdPathWorkload)
    assert _codes(validation) == ["SA001"]
    sa001 = validation.diagnostics[0]
    assert "[conditional]" in sa001.message
    assert "cold-shared" in sa001.message
    # the conditional tier is exempt from SA003: zero dynamic overlap on
    # a some-inputs-only edge is what the tier asserts, not a conflict
    assert validation.recall == 1.0
    assert validation.precision == 0.0


def test_coldpath_bridge_candidate_marks_unexercised_path():
    validation = _validate("coldpath", ColdPathWorkload)
    candidates = static_candidates(validation)
    assert len(candidates) == 1
    cand = candidates[0]
    assert (cand.src_display, cand.dst_display) == ("cold-a", "cold-b")
    assert cand.tier == TIER_CONDITIONAL
    assert not cand.exercised
    assert cand.fingerprint == validation.diagnostics[0].fingerprint()
    assert "unexercised path" in cand.render()


def test_coldpath_candidate_round_trips_through_suggest():
    """The acceptance criterion: repair --suggest with the static arm on
    proposes the SA001 edge for the code path the audit never ran."""
    result = repair_workload(
        "coldpath", workload_factory=ColdPathWorkload, with_static=True
    )
    lines = render_report(result)
    static_lines = [l for l in lines if "[static]" in l]
    assert len(static_lines) == 1
    assert "at_share(cold-a, cold-b, 0.50)" in static_lines[0]
    assert "unexercised path" in static_lines[0]


def test_coldpath_deep_run_corroborates_the_prediction():
    """Flipping the flag the static pass warned about turns the same
    conditional edge into observed sharing: precision goes 0 -> 1."""
    validation = _validate("coldpath", lambda: ColdPathWorkload(deep=True))
    assert validation.precision == 1.0
    candidates = static_candidates(validation)
    assert len(candidates) == 1 and candidates[0].exercised


# -- shipped workloads: SA-clean, precision/recall pinned ------------------


def test_shipped_workloads_have_no_sa_findings():
    for name in lint_workload_names():
        validation = static_validate_workload(
            name, audit=audit_workload(name, passes=("annotations",))
        )
        assert validation is not None, name
        assert _codes(validation) == [], name


def test_shipped_workloads_recall_is_perfect():
    """Zero false negatives at definite+conditional: every pair the
    dynamic audit expects an edge for is statically predicted."""
    for name in lint_workload_names():
        validation = static_validate_workload(
            name, audit=audit_workload(name, passes=("annotations",))
        )
        assert validation.missed == (), name
        assert validation.recall == 1.0, name


def test_shipped_workload_precision_is_pinned():
    """merge pays for its ambiguous ``merge-*`` name patterns (two
    recursive spawn sites, one observed tree shape); the others are
    exact.  A change in these numbers is a change in the pass."""
    expected = {"merge": 0.4, "photo": 1.0, "tasks": 1.0, "tsp": 1.0}
    for name, precision in sorted(expected.items()):
        validation = static_validate_workload(
            name, audit=audit_workload(name, passes=("annotations",))
        )
        assert validation.precision == precision, name


def test_tasks_loop_local_regions_are_privatized():
    """Each task-* iteration gets its own region instance: no static
    self-edge, no SA001 -- the loop classification at work."""
    validation = static_validate_workload(
        "tasks", audit=audit_workload("tasks", passes=("annotations",))
    )
    assert validation.static_pairs == ()


# -- report plumbing -------------------------------------------------------


def test_render_prediction_is_byte_stable():
    first = _validate("coldpath", ColdPathWorkload)
    second = _validate("coldpath", ColdPathWorkload)
    assert render_prediction(first.prediction, first) == render_prediction(
        second.prediction, second
    )


def test_run_analysis_with_static_folds_sa_into_the_report():
    report = run_analysis(workloads=["tsp"], with_static=True)
    assert all(not d.code.startswith("SA") for d in report.diagnostics)
    # byte-identical to the static-less report: shipped tsp is SA-clean
    assert report.render() == run_analysis(workloads=["tsp"]).render()


def test_sa_findings_flow_through_baseline_waivers(tmp_path):
    """The SA family rides the ordinary suppression machinery: waive an
    SA001, refresh the baseline, and both the entry and its reason
    survive; a strict check then flags it once the finding is gone."""
    validation = _validate("coldpath", ColdPathWorkload)
    report = Report()
    report.extend(validation.diagnostics)
    report.finalize()
    fp = validation.diagnostics[0].fingerprint()

    baseline = str(tmp_path / "base.txt")
    write_baseline(baseline, report)
    assert add_waiver(baseline, report, fp, "deep runs are quarterly") is None
    assert load_waivers(baseline) == {fp: "deep runs are quarterly"}

    # --update-baseline must preserve the waiver verbatim
    assert refresh_baseline(baseline, report) == []
    assert load_waivers(baseline) == {fp: "deep runs are quarterly"}
    assert fp in load_baseline(baseline)

    # the finding is suppressed, not lost
    report.baseline = load_baseline(baseline)
    assert report.new_diagnostics() == []
    assert re.search(rf"{fp}.*\(baseline\)", report.render())

    # once the cold path is annotated the entry goes stale and strict
    # baseline checking must notice
    fixed = Report()
    fixed.baseline = load_baseline(baseline)
    assert fixed.stale_fingerprints() == [fp]


def test_sa001_fingerprints_are_stable_across_runs():
    first = _validate("coldpath", ColdPathWorkload).diagnostics[0]
    second = _validate("coldpath", ColdPathWorkload).diagnostics[0]
    assert first.fingerprint() == second.fingerprint()


def test_definite_tier_requires_unconditional_touches():
    validation = _validate("misannotated", MisannotatedWorkload)
    prediction = validation.prediction
    tiers = {e.tier for e in prediction.edges.values()}
    assert tiers == {TIER_DEFINITE}
