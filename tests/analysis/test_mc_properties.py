"""Seeded bugs must be caught: MC001/MC002/MC004 actually fire."""

from repro.analysis.mc import SMALL_BUDGET, default_checkers, explore
from repro.analysis.mc.fixtures import (
    CounterFixture,
    CrossSemDeadlockFixture,
    JoinTreeFixture,
    LifoCounterFixture,
    PhasesFixture,
    StuckBarrierFixture,
)
from repro.core.priorities import LFFScheme


def codes(result):
    return sorted({code for code, _msg in result.violations})


class TestSyncOrder:
    def test_lifo_mutex_handoff_is_flagged(self):
        result = explore(LifoCounterFixture, SMALL_BUDGET)
        assert codes(result) == ["MC002"]
        assert any("FIFO" in msg for _c, msg in result.violations)
        assert any(d.code == "MC002" for d in result.diagnostics())

    def test_stuck_barrier_generation_is_flagged(self):
        result = explore(StuckBarrierFixture, SMALL_BUDGET)
        assert codes(result) == ["MC002"]
        assert any("generation" in msg for _c, msg in result.violations)

    def test_correct_sync_objects_are_silent(self):
        for factory in (CounterFixture, PhasesFixture):
            result = explore(factory, SMALL_BUDGET)
            assert result.violations == []


class TestDeadlockPrediction:
    def test_unpredicted_deadlock_yields_mc001(self):
        result = explore(CrossSemDeadlockFixture, SMALL_BUDGET)
        assert result.deadlocks
        assert all(not predicted for predicted, _msg in result.deadlocks)
        assert any(d.code == "MC001" for d in result.diagnostics())

    def test_static_prediction_alone_is_insufficient(self):
        """A deadlock counts as predicted only when the static pass saw a
        cycle AND the runtime found an ownership cycle; semaphore waits
        have no ownership cycle, so MC001 fires regardless."""
        result = explore(
            CrossSemDeadlockFixture, SMALL_BUDGET, predicted_cycles=True
        )
        assert any(d.code == "MC001" for d in result.diagnostics())


class _PerturbingLFF(LFFScheme):
    """on_block also silently touches an unrelated thread's entry."""

    def on_block(self, cpu, tid, interval_misses):
        touched = super().on_block(cpu, tid, interval_misses)
        entries = self.entries(cpu)
        for other_tid, entry in sorted(entries.items()):
            if other_tid != tid:
                entry.priority += 1.0
                entry.version += 1
                break
        return touched


class TestPriorityUpdates:
    def test_clean_lff_update_touches_exactly_one_plus_d(self):
        for factory in (CounterFixture, JoinTreeFixture):
            result = explore(factory, SMALL_BUDGET)
            assert result.violations == [], factory.name

    def test_perturbed_scheme_yields_mc004(self):
        result = explore(
            CounterFixture,
            SMALL_BUDGET,
            checkers_factory=lambda: default_checkers(_PerturbingLFF),
        )
        assert "MC004" in codes(result)
        assert any("independent" in msg for _c, msg in result.violations)

    def test_jointree_exercises_nonzero_degree(self):
        """The at_share edges give the parent d > 0; the checker must
        accept 1 + d touched entries without complaint."""
        result = explore(JoinTreeFixture, SMALL_BUDGET)
        assert result.violations == []
        assert result.complete
