"""repro-lint: the determinism pass over simulator source."""

import textwrap

from repro.analysis.determinism import lint_file, lint_paths

_BAD_MODULE = textwrap.dedent(
    """\
    import time
    import numpy as np


    def entropy():
        return np.random.default_rng()          # DT001


    def hidden():
        return np.random.default_rng(42)        # DT002


    def stamp():
        return time.time()                      # DT003


    def leak(items):
        seen = set(items)
        for item in seen:                       # DT004 (tracked name)
            print(item)
        return np.fromiter({1, 2, 3}, dtype=int)  # DT004 (literal)


    def laundered(items):
        seen = set(items)
        for item in sorted(seen):
            print(item)
        return [x for x in sorted({1, 2})]


    def cleared(items):
        seen = set(items)
        seen = list(items)
        for item in seen:
            print(item)
    """
)


def _lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_file(str(path), name)


def _codes_at(found):
    return sorted((d.code, int(d.anchor.split(":")[1])) for d in found)


def test_all_four_codes_fire_at_the_right_lines(tmp_path):
    found = _lint_source(tmp_path, _BAD_MODULE)
    assert _codes_at(found) == [
        ("DT001", 6),
        ("DT002", 10),
        ("DT003", 14),
        ("DT004", 19),
        ("DT004", 21),
    ]
    assert all(d.source == "repro-lint" for d in found)
    assert all(d.anchor.startswith("mod.py:") for d in found)


def test_sorted_launders_and_reassignment_clears(tmp_path):
    # laundered()/cleared() in the module produce nothing: only the
    # seeded lines fire, per the previous test's exact-match
    found = _lint_source(tmp_path, _BAD_MODULE)
    assert max(lineno for _c, lineno in _codes_at(found)) == 21


def test_seeded_rng_from_parameter_is_clean(tmp_path):
    found = _lint_source(
        tmp_path,
        "import numpy as np\n"
        "def make(seed):\n"
        "    return np.random.default_rng(seed)\n",
    )
    assert found == []


def test_suppression_comment_silences_a_line(tmp_path):
    found = _lint_source(
        tmp_path,
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # repro-lint: ignore\n",
    )
    assert found == []


def test_syntax_error_becomes_dt000(tmp_path):
    found = _lint_source(tmp_path, "def broken(:\n")
    assert len(found) == 1
    assert found[0].code == "DT000"


def test_set_tracking_is_scoped_per_function(tmp_path):
    found = _lint_source(
        tmp_path,
        "def a(items):\n"
        "    seen = set(items)\n"
        "    return sorted(seen)\n"
        "def b(seen):\n"
        "    for item in seen:\n"  # plain name, unknown type: no finding
        "        print(item)\n",
    )
    assert found == []


def test_shipped_simulator_source_is_lint_clean():
    """The tentpole guarantee: repro/sched, repro/sim, repro/machine and
    repro/threads carry zero determinism findings (CI runs the same
    gate)."""
    assert lint_paths() == []


class TestDT005IdKeyedDictIteration:
    def test_literal_id_dict_iteration_fires(self, tmp_path):
        found = _lint_source(
            tmp_path,
            "def f(a, b):\n"
            "    owners = {id(a): 1, id(b): 2}\n"
            "    for key in owners:\n"
            "        print(key)\n",
        )
        assert [d.code for d in found] == ["DT005"]
        assert found[0].anchor == "mod.py:3"

    def test_items_keys_values_all_fire(self, tmp_path):
        source = (
            "def f(a):\n"
            "    d = {id(a): 1}\n"
            "    for k, v in d.items():\n"
            "        print(k, v)\n"
            "    for k in d.keys():\n"
            "        print(k)\n"
            "    xs = [v for v in d.values()]\n"
            "    return xs\n"
        )
        found = _lint_source(tmp_path, source)
        assert [(d.code, int(d.anchor.split(':')[1])) for d in found] == [
            ("DT005", 3),
            ("DT005", 5),
            ("DT005", 7),
        ]

    def test_subscript_assignment_marks_the_dict(self, tmp_path):
        found = _lint_source(
            tmp_path,
            "def f(threads):\n"
            "    seen = {}\n"
            "    for t in threads:\n"
            "        seen[id(t)] = t\n"
            "    for key in seen:\n"
            "        print(key)\n",
        )
        assert [d.code for d in found] == ["DT005"]

    def test_keyed_lookup_is_clean(self, tmp_path):
        """Only iteration leaks ordering; lookups are deterministic."""
        found = _lint_source(
            tmp_path,
            "def f(threads):\n"
            "    seen = {}\n"
            "    for t in threads:\n"
            "        seen[id(t)] = t\n"
            "    return seen[id(threads[0])]\n",
        )
        assert found == []

    def test_tid_keyed_dict_is_clean(self, tmp_path):
        found = _lint_source(
            tmp_path,
            "def f(threads):\n"
            "    by_tid = {t.tid: t for t in threads}\n"
            "    for tid in by_tid:\n"
            "        print(tid)\n",
        )
        assert found == []

    def test_suppression_comment_works(self, tmp_path):
        found = _lint_source(
            tmp_path,
            "def f(a):\n"
            "    d = {id(a): 1}\n"
            "    for k in d:  # repro-lint: ignore\n"
            "        print(k)\n",
        )
        assert found == []


class TestDT006BenchTimerAudit:
    """Raw timer reads must flow through repro/bench/clock.py."""

    def _lint_at(self, tmp_path, source, rel_path):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint_file(str(path), rel_path)

    _TIMER_SOURCE = "import time\n\ndef now():\n    return time.perf_counter()\n"

    def test_raw_timer_in_bench_is_dt006(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE, "repro/bench/runner.py"
        )
        assert [d.code for d in found] == ["DT006"]
        assert "repro.bench.clock" in found[0].message

    def test_audited_clock_module_is_exempt(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE, "repro/bench/clock.py"
        )
        assert found == []

    def test_same_read_outside_bench_stays_dt003(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE, "repro/sim/driver.py"
        )
        assert [d.code for d in found] == ["DT003"]

    def test_bare_name_import_is_caught(self, tmp_path):
        source = (
            "from time import perf_counter\n"
            "\n"
            "def now():\n"
            "    return perf_counter()\n"
        )
        found = self._lint_at(tmp_path, source, "repro/bench/stats.py")
        assert [d.code for d in found] == ["DT006"]
        found = self._lint_at(tmp_path, source, "repro/machine/cache.py")
        assert [d.code for d in found] == ["DT003"]

    def test_suppression_comment_works(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "def now():\n"
            "    return time.perf_counter()  # repro-lint: ignore\n"
        )
        found = self._lint_at(tmp_path, source, "repro/bench/runner.py")
        assert found == []

    def test_default_targets_cover_the_bench_package(self):
        from repro.analysis.determinism import DEFAULT_TARGETS

        assert "repro/bench" in DEFAULT_TARGETS


class TestDT006DispatchClock:
    """The dispatch layer reads time only through its audited clock."""

    def _lint_at(self, tmp_path, source, rel_path):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint_file(str(path), rel_path)

    _TIMER_SOURCE = "import time\n\ndef now():\n    return time.monotonic()\n"

    def test_raw_timer_in_dispatch_is_dt006(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE,
            "repro/parallel/dispatch/coordinator.py",
        )
        assert [d.code for d in found] == ["DT006"]
        assert "repro.parallel.dispatch.clock" in found[0].message

    def test_dispatch_clock_module_is_exempt(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE, "repro/parallel/dispatch/clock.py"
        )
        assert found == []

    def test_parallel_engine_outside_dispatch_stays_dt003(self, tmp_path):
        found = self._lint_at(
            tmp_path, self._TIMER_SOURCE, "repro/parallel/engine.py"
        )
        assert [d.code for d in found] == ["DT003"]


class TestDT007NodeRegistryIteration:
    """Raw iteration over ``.nodes`` is registration-order dependent."""

    def _lint_at(self, tmp_path, source, rel_path):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint_file(str(path), rel_path)

    _REL = "repro/parallel/dispatch/coordinator.py"

    def test_for_loop_over_nodes_fires(self, tmp_path):
        source = (
            "def poll(registry):\n"
            "    for node_id in registry.nodes:\n"
            "        print(node_id)\n"
        )
        found = self._lint_at(tmp_path, source, self._REL)
        assert [d.code for d in found] == ["DT007"]
        assert "sorted_nodes" in found[0].message

    def test_items_keys_values_all_fire(self, tmp_path):
        source = (
            "def poll(registry):\n"
            "    for k, v in registry.nodes.items():\n"
            "        print(k, v)\n"
            "    for k in registry.nodes.keys():\n"
            "        print(k)\n"
            "    ids = [v.node_id for v in registry.nodes.values()]\n"
            "    return ids\n"
        )
        found = self._lint_at(tmp_path, source, self._REL)
        assert [d.code for d in found] == ["DT007", "DT007", "DT007"]

    def test_sorted_launders(self, tmp_path):
        source = (
            "def poll(registry):\n"
            "    for node_id in sorted(registry.nodes):\n"
            "        print(node_id)\n"
            "    return [registry.nodes[n] for n in sorted(registry.nodes)]\n"
        )
        found = self._lint_at(tmp_path, source, self._REL)
        assert found == []

    def test_scoped_to_the_dispatch_layer(self, tmp_path):
        # self.nodes on, e.g., the TSP workload's tour graph is a list;
        # outside repro/parallel/dispatch the pattern never fires
        source = (
            "def visit(graph):\n"
            "    for node in graph.nodes:\n"
            "        print(node)\n"
        )
        found = self._lint_at(tmp_path, source, "repro/sim/driver.py")
        assert found == []

    def test_suppression_comment_works(self, tmp_path):
        source = (
            "def poll(registry):\n"
            "    for k in registry.nodes:  # repro-lint: ignore\n"
            "        print(k)\n"
        )
        found = self._lint_at(tmp_path, source, self._REL)
        assert found == []

    def test_shipped_dispatch_source_is_lint_clean(self):
        found = lint_paths(["repro/parallel/dispatch"])
        assert found == []
