"""Happens-before race sanitizer: seeded race found, synced pair clean."""

from repro.analysis.engine import analyze_workload
from repro.analysis.races import _join

from tests.analysis.fixtures.badworkloads import (
    MisannotatedWorkload,
    RacyWorkload,
)


def _race_findings(workload_cls, name):
    return analyze_workload(
        name, workload_factory=workload_cls, passes=("races",)
    )


def test_vector_clock_join_is_elementwise_max():
    clock = {1: 3, 2: 1}
    _join(clock, {2: 5, 3: 2})
    assert clock == {1: 3, 2: 5, 3: 2}


def test_unsynchronized_writers_flagged_rs001():
    found = _race_findings(RacyWorkload, "racy")
    rs = [d for d in found if d.code == "RS001"]
    assert len(rs) == 1
    assert "write-write" in rs[0].message
    assert "racer-1" in rs[0].message and "racer-2" in rs[0].message
    assert "racy-region" in rs[0].message


def test_mutex_protected_writers_stay_clean():
    # locked-1/locked-2 hit clean-region under one mutex: the release ->
    # acquire handoff is a sync edge, so no finding may mention them
    found = _race_findings(RacyWorkload, "racy")
    text = " | ".join(d.message for d in found)
    assert "clean-region" not in text
    assert "locked-1" not in text and "locked-2" not in text


def test_barrier_synchronized_pair_stays_clean():
    # sharer-a/sharer-b overlap fully but rendezvous at a barrier each
    # pass; the barrier joins arrival clocks, so they must not race
    found = _race_findings(MisannotatedWorkload, "misannotated")
    text = " | ".join(d.message for d in found)
    assert "sharer-a" not in text and "sharer-b" not in text


def test_shipped_tasks_and_photo_race_clean():
    for name in ("tasks", "photo"):
        found = analyze_workload(name, passes=("races",))
        assert found == [], f"{name}: {[d.render() for d in found]}"


def test_merge_boundary_races_are_reported_per_region():
    # mergesort's sibling leaves genuinely touch boundary lines of the
    # shared array with no ordering between them -- the known (and
    # baselined) finding the sanitizer exists to make visible
    found = analyze_workload("merge", passes=("races",))
    assert found
    assert all(d.code == "RS001" for d in found)
    assert all("merge-array" in d.message for d in found)
