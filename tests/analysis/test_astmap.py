"""Static at_share localization: every recognized call shape.

The repair engine can only patch sites the scanner finds, so each shape
the docstring of :mod:`repro.analysis.astmap` promises gets a test:
attribute receivers, bare and aliased names, and keyword arguments.
"""

from repro.analysis.astmap import patch_literal, scan_share_sites, site_at


def _scan(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return scan_share_sites(str(path))


def test_keyword_q_literal_is_patchable(tmp_path):
    sites = _scan(tmp_path, "runtime.at_share(a, b, q=0.3)\n")
    assert len(sites) == 1
    site = sites[0]
    assert site.q_literal == 0.3
    assert site.patchable
    assert (site.src_expr, site.dst_expr) == ("a", "b")


def test_all_keyword_arguments_resolved(tmp_path):
    sites = _scan(tmp_path, "runtime.at_share(src=left, dst=right, q=0.5)\n")
    assert len(sites) == 1
    assert (sites[0].src_expr, sites[0].dst_expr) == ("left", "right")
    assert sites[0].q_literal == 0.5


def test_keyword_arguments_override_position_order(tmp_path):
    sites = _scan(tmp_path, "at_share(dst=right, src=left, q=0.2)\n")
    assert (sites[0].src_expr, sites[0].dst_expr) == ("left", "right")


def test_any_attribute_receiver_is_recognized(tmp_path):
    source = "self.at_share(a, b, 0.1)\nself.runtime.at_share(c, d, 0.2)\n"
    sites = _scan(tmp_path, source)
    assert [s.src_expr for s in sites] == ["a", "c"]


def test_aliased_import_is_recognized(tmp_path):
    source = (
        "from repro.threads.runtime import at_share as share_hint\n"
        "share_hint(a, b, 0.2)\n"
    )
    sites = _scan(tmp_path, source)
    assert len(sites) == 1
    assert sites[0].q_literal == 0.2


def test_assignment_alias_is_recognized(tmp_path):
    source = (
        "share = runtime.at_share\n"
        "share(a, b, 0.4)\n"
        "hint = share\n"
        "hint(c, d, 0.6)\n"
    )
    sites = _scan(tmp_path, source)
    assert [s.q_literal for s in sites] == [0.4, 0.6]


def test_unrelated_bare_names_are_not_sites(tmp_path):
    source = "record(a, b, 0.3)\nshare = record\nshare(a, b, 0.3)\n"
    assert _scan(tmp_path, source) == []


def test_computed_q_reports_expression_without_span(tmp_path):
    sites = _scan(tmp_path, "runtime.at_share(a, b, q=halo / rows)\n")
    assert len(sites) == 1
    assert not sites[0].patchable
    assert sites[0].q_expr == "halo / rows"


def test_missing_arguments_are_skipped(tmp_path):
    assert _scan(tmp_path, "runtime.at_share(a)\n") == []


def test_keyword_site_survives_patch_roundtrip(tmp_path):
    source = "runtime.at_share(a, b, q=0.3)\n"
    sites = _scan(tmp_path, source)
    patched = patch_literal(source, sites[0].q_span, "0.75")
    assert patched == "runtime.at_share(a, b, q=0.75)\n"


def test_site_at_spans_multiline_calls(tmp_path):
    source = "runtime.at_share(\n    a,\n    b,\n    0.3,\n)\n"
    sites = _scan(tmp_path, source)
    assert site_at(sites, 3) is sites[0]
