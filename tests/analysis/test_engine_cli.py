"""The analyze driver and its CLI surface: determinism, baseline gate."""

from repro.analysis.engine import (
    analyze_workload,
    lint_workload_names,
    run_analysis,
)
from repro.cli import main


def test_registry_names_are_the_paper_workloads():
    assert lint_workload_names() == ["merge", "photo", "tasks", "tsp"]


def test_reports_are_byte_identical_across_runs():
    first = run_analysis(workloads=["merge"]).render()
    second = run_analysis(workloads=["merge"]).render()
    assert first == second
    assert first  # merge has known (baselined, waived) findings


def test_unknown_pass_rejected():
    import pytest

    with pytest.raises(ValueError):
        analyze_workload("tasks", passes=("nonsense",))


def test_checked_in_baseline_covers_current_findings():
    """The CI gate's exact invariant: a full run against the committed
    baseline produces zero *new* diagnostics."""
    report = run_analysis(baseline_path="analysis-baseline.txt")
    assert report.new_diagnostics() == []
    assert report.diagnostics  # merge/tsp findings exist and are baselined


def test_cli_analyze_clean_workload_exits_zero(capsys):
    code = main(["analyze", "--workload", "tasks"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 new" in out


def test_cli_analyze_findings_without_baseline_exit_one(capsys):
    # tsp's annotation findings were repaired (repro analyze --fix);
    # merge still carries its by-design, waived RS001 findings
    code = main(["analyze", "--workload", "merge"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RS001" in out


def test_cli_analyze_baseline_roundtrip(tmp_path, capsys):
    baseline = str(tmp_path / "base.txt")
    code = main(
        ["analyze", "--workload", "merge", "--baseline", baseline,
         "--write-baseline"]
    )
    assert code == 0
    capsys.readouterr()
    code = main(["analyze", "--workload", "merge", "--baseline", baseline])
    out = capsys.readouterr().out
    assert code == 0
    assert "(baseline)" in out


def test_cli_analyze_unknown_workload_exits_two(capsys):
    assert main(["analyze", "--workload", "nope"]) == 2


def test_cli_analyze_pass_selection(capsys):
    code = main(["analyze", "--workload", "tsp", "--pass", "locks"])
    out = capsys.readouterr().out
    assert code == 0  # tsp's findings are annotation findings
    assert "AN00" not in out


def test_cli_lint_shipped_source_exits_zero(capsys):
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_lint_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nT = time.time()\n")
    code = main(["lint", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DT003" in out


def test_cli_analyze_update_baseline_roundtrip(tmp_path, capsys):
    """--update-baseline regenerates the file when nothing new and of
    error severity appeared; warnings are accepted silently."""
    baseline = str(tmp_path / "base.txt")
    code = main(
        ["analyze", "--workload", "tsp", "--baseline", baseline,
         "--update-baseline"]
    )
    out = capsys.readouterr().out
    assert code == 0  # tsp's findings are warnings: accepted
    assert "updated" in out
    first = open(baseline).read()
    code = main(
        ["analyze", "--workload", "tsp", "--baseline", baseline,
         "--update-baseline"]
    )
    capsys.readouterr()
    assert code == 0
    assert open(baseline).read() == first


def test_cli_analyze_update_baseline_refuses_new_errors(tmp_path, capsys):
    """A new error-severity finding must never be silently baselined."""
    from repro.analysis.diagnostics import Diagnostic, Report, refresh_baseline

    baseline = tmp_path / "base.txt"
    baseline.write_text("# empty baseline\n")
    report = Report()
    report.extend(
        [
            Diagnostic(code="MC003", message="results diverged", source="mc(x)"),
            Diagnostic(code="DT004", message="a warning", source="repro-lint"),
        ]
    )
    report.finalize()
    blocking = refresh_baseline(str(baseline), report)
    assert [d.code for d in blocking] == ["MC003"]
    assert baseline.read_text() == "# empty baseline\n"  # untouched


def test_cli_analyze_update_baseline_needs_baseline_flag(capsys):
    assert main(["analyze", "--workload", "tasks", "--update-baseline"]) == 2


def test_cli_mc_explores_fixture_cleanly(capsys):
    code = main(["mc", "--fixture", "pipeline", "--skip-model",
                 "--no-chaos"])
    out = capsys.readouterr().out
    assert code == 0
    assert "pipeline" in out
    assert "no findings" in out


def test_cli_mc_unknown_fixture_exits_two(capsys):
    assert main(["mc", "--fixture", "nope"]) == 2
