"""Annotation linter: the seeded-bug fixture and forged-edge detection."""

from repro.analysis.engine import analyze_workload
from repro.faults.injector import FaultInjector
from repro.faults.plan import AnnotationFaults, FaultPlan

from tests.analysis.fixtures.badworkloads import MisannotatedWorkload


def _findings(**kwargs):
    return analyze_workload(
        "misannotated",
        workload_factory=MisannotatedWorkload,
        passes=("annotations",),
        **kwargs,
    )


def _by_code(found, code):
    return [d for d in found if d.code == code]


def test_missing_edge_flagged_an001():
    an001 = _by_code(_findings(), "AN001")
    messages = " | ".join(d.message for d in an001)
    assert "sharer-a -> sharer-b" in messages
    # the symmetric overlap is deduped: only the canonical direction
    # (higher observed q, tie broken lexicographically) is reported
    assert "sharer-b -> sharer-a" not in messages


def test_spurious_edge_flagged_an002():
    an002 = _by_code(_findings(), "AN002")
    assert len(an002) == 1
    assert "loner-a -> loner-b" in an002[0].message
    assert "q=0.90" in an002[0].message


def test_mis_weighted_edge_flagged_an003():
    an003 = _by_code(_findings(), "AN003")
    assert len(an003) == 1
    assert "half-a -> half-b" in an003[0].message
    assert "q=1.00" in an003[0].message


def test_findings_anchor_at_workload_class():
    for diag in _findings():
        assert diag.anchor is not None
        assert diag.anchor.endswith("badworkloads.py:25")
        assert diag.source == "annotations(misannotated)"


def test_well_annotated_pairs_stay_silent():
    # the loner pair's regions really are disjoint, so apart from the
    # three seeded bugs nothing else may fire: no AN00x mentions loners
    # as a *sharing* pair, and no finding names a loner with a sharer
    for diag in _findings():
        if diag.code == "AN001":
            assert "loner" not in diag.message


def test_forged_edges_flagged_end_to_end():
    """PR 1's injector forges bogus at_share edges; the linter must see
    the edges the graph actually received and flag the fabrications."""
    injector = FaultInjector(
        FaultPlan(seed=7, annotation=AnnotationFaults(bogus_prob=1.0))
    )
    found = _findings(injector=injector)
    assert injector.bogus_edges > 0
    an002 = _by_code(found, "AN002")
    # the fixture itself plants exactly one spurious edge; every extra
    # AN002 is a forged edge caught end-to-end
    forged = [d for d in an002 if "loner-a -> loner-b" not in d.message]
    assert forged, "no forged edge was flagged"


def test_inference_corroboration_in_messages():
    """With the online estimator attached, AN001 messages note when the
    inference subsystem independently derived the missing edge."""
    found = _findings(with_inference=True)
    an001 = _by_code(found, "AN001")
    assert an001  # corroboration text is optional per-pair, code is not
    found_without = _findings(with_inference=False)
    assert {d.code for d in found_without} == {"AN001", "AN002", "AN003"}
