"""The idle-quiescence contract (``Scheduler.idle_pick_cost``).

The event engine virtualises failed picks only when the scheduler
certifies them: ``idle_pick_cost(cpu)`` returning an ``int`` promises
that a real ``pick(cpu)`` would return ``(None, cost)`` with exactly
that cost and mutate nothing beyond what ``account_idle_picks``
settles.  These tests pin that promise for every shipped scheduler by
comparing the certificate against an actual pick, and pin the refusal
(``None``) whenever the state is not quiescent.
"""

import pytest

from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched import SCHEDULERS
from repro.sched.base import Scheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_lff
from repro.threads.events import Compute, Sleep
from repro.threads.runtime import Runtime


def _sleeping_runtime(scheduler, cpus=4):
    """A runtime whose threads are all asleep: the quiescent state the
    certificate speaks about (no READY threads anywhere)."""
    machine = Machine(SMALL.with_cpus(cpus), seed=0)
    runtime = Runtime(machine, scheduler)

    def body():
        yield Compute(10)
        yield Sleep(100_000)

    for i in range(3):
        runtime.at_create(body, name=f"t{i}")
    with pytest.raises(Exception):
        # run until every thread is asleep; budget-stop the loop there
        runtime.run(max_events=6)
    assert not scheduler.has_runnable()
    return runtime


class TestBaseContract:
    def test_default_never_certifies(self):
        scheduler = Scheduler()
        assert scheduler.idle_pick_cost(0) is None
        scheduler.account_idle_picks(100)  # the no-op must exist


class TestFCFS:
    def test_empty_queue_certifies_zero_cost(self):
        runtime = _sleeping_runtime(
            FCFSScheduler(model_scheduler_memory=False)
        )
        scheduler = runtime.scheduler
        for cpu in range(4):
            assert scheduler.idle_pick_cost(cpu) == 0
            thread, cost = scheduler.pick(cpu)
            assert thread is None and cost == 0

    def test_ready_work_withdraws_the_certificate(self):
        machine = Machine(SMALL, seed=0)
        runtime = Runtime(
            machine, FCFSScheduler(model_scheduler_memory=False)
        )
        runtime.at_create(lambda: iter([Compute(10)]), name="w")
        assert runtime.scheduler.idle_pick_cost(0) is None

    def test_stale_entries_withdraw_the_certificate(self):
        """A queue holding only stale entries would be drained (mutated)
        by a pick, so quiescence requires the queue itself empty."""
        runtime = _sleeping_runtime(
            FCFSScheduler(model_scheduler_memory=False)
        )
        scheduler = runtime.scheduler
        sleeper = runtime.threads[1]
        # re-queue the sleeping thread with its old seq: a stale entry
        scheduler._queue.append((sleeper, sleeper.ready_seq - 1))
        scheduler._ready = 0
        assert scheduler.idle_pick_cost(0) is None


class TestLocality:
    def test_certificate_matches_a_real_pick_exactly(self):
        runtime = _sleeping_runtime(make_lff(), cpus=4)
        scheduler = runtime.scheduler
        for cpu in range(4):
            certified = scheduler.idle_pick_cost(cpu)
            assert certified is not None
            before = (
                scheduler.steals,
                tuple((h.pushes, h.pops) for h in scheduler.heaps),
                tuple(len(h) for h in scheduler.heaps),
            )
            picks_before = scheduler._picks
            thread, cost = scheduler.pick(cpu)
            # (a) the pick fails with exactly the certified cost ...
            assert thread is None
            assert cost == certified
            # ... and (b) mutated nothing but the pick counter, which
            # account_idle_picks settles for virtualised picks
            after = (
                scheduler.steals,
                tuple((h.pushes, h.pops) for h in scheduler.heaps),
                tuple(len(h) for h in scheduler.heaps),
            )
            assert after == before
            assert scheduler._picks == picks_before + 1

    def test_account_idle_picks_settles_the_counter(self):
        scheduler = make_lff()
        scheduler._picks = 7
        scheduler.account_idle_picks(5)
        assert scheduler._picks == 12

    def test_steal_scan_cost_tracks_neighbour_heap_sizes(self):
        runtime = _sleeping_runtime(make_lff(), cpus=4)
        scheduler = runtime.scheduler
        # empty neighbour heaps: the scan charges max(1, len) == 1 each
        assert scheduler.idle_pick_cost(0) == 3

    def test_no_steal_scheduler_certifies_zero(self):
        runtime = _sleeping_runtime(make_lff(steal=False), cpus=4)
        assert runtime.scheduler.idle_pick_cost(0) == 0

    def test_ready_work_withdraws_the_certificate(self):
        machine = Machine(SMALL.with_cpus(2), seed=0)
        runtime = Runtime(machine, make_lff())
        runtime.at_create(lambda: iter([Compute(10)]), name="w")
        assert runtime.scheduler.idle_pick_cost(0) is None

    def test_undrained_own_heap_withdraws_the_certificate(self):
        """Entries left in the picking cpu's own heap would be popped
        (mutating heap statistics), so the certificate is refused even
        when none of them is runnable."""
        runtime = _sleeping_runtime(make_lff(), cpus=2)
        scheduler = runtime.scheduler
        sleeper = runtime.threads[1]
        scheduler.heaps[0].push(sleeper, 1.0, sleeper.ready_seq - 1)
        assert scheduler.idle_pick_cost(0) is None
        # the neighbour's certificate now prices scanning that entry
        assert scheduler.idle_pick_cost(1) == 1


@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_every_shipped_scheduler_honours_the_contract(policy):
    """Generic contract sweep: whenever a scheduler certifies a cost in
    a quiescent state, an immediate real pick must agree bit-for-bit."""
    runtime = _sleeping_runtime(SCHEDULERS[policy](), cpus=4)
    scheduler = runtime.scheduler
    for cpu in range(4):
        certified = scheduler.idle_pick_cost(cpu)
        if certified is None:
            continue  # refusing to certify is always allowed
        thread, cost = scheduler.pick(cpu)
        assert thread is None
        assert cost == certified
