"""Tests for the FCFS baseline scheduler."""

import pytest

from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.threads.events import Compute, Sleep
from repro.threads.runtime import Runtime
from repro.threads.thread import ThreadState


class TestOrdering:
    def test_dispatch_in_creation_order(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)
        order = []

        def body(name):
            def gen():
                order.append(name)
                yield Compute(10)
            return gen

        for name in "abcd":
            rt.at_create(body(name))
        rt.run()
        assert order == list("abcd")

    def test_wakeups_queue_at_tail(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)
        order = []

        def sleeper():
            yield Sleep(100)
            order.append("sleeper")

        def worker(name):
            def gen():
                order.append(name)
                yield Compute(50_000)
            return gen

        rt.at_create(sleeper)
        rt.at_create(worker("w1"))
        rt.at_create(worker("w2"))
        rt.run()
        assert order.index("sleeper") > order.index("w1")

    def test_has_runnable_tracks_queue(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)
        assert not scheduler.has_runnable()

        def body():
            yield Compute(1)

        rt.at_create(body)
        assert scheduler.has_runnable()
        rt.run()
        assert not scheduler.has_runnable()

    def test_stale_entries_skipped(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)

        def body():
            yield Compute(1)

        tid = rt.at_create(body)
        thread = rt.thread(tid)
        thread.mark_ready()  # invalidates the queued entry
        scheduler.thread_ready(thread)  # fresh entry
        picked, _cost = scheduler.pick(0)
        assert picked is thread
        # the stale entry must not yield a second dispatch
        thread.state = ThreadState.RUNNING
        again, _cost = scheduler.pick(0)
        assert again is None

    def test_queue_memory_modelled_when_enabled(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=True)
        rt = Runtime(machine, scheduler)
        assert "fcfs-queue" in machine.address_space

    def test_pick_cost_positive(self, machine):
        scheduler = FCFSScheduler(model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)

        def body():
            yield Compute(1)

        rt.at_create(body)
        _t, cost = scheduler.pick(0)
        assert cost > 0
