"""Tests for the locality scheduler (heaps, threshold, stealing, repush)."""

import numpy as np
import pytest

from repro.machine.smp import Machine
from repro.sched.locality import LocalityScheduler, make_crt, make_lff
from repro.threads.events import Compute, Sleep, Touch
from repro.threads.runtime import Runtime
from repro.threads.thread import ThreadState


def build(machine, **kwargs):
    kwargs.setdefault("model_scheduler_memory", False)
    scheduler = make_lff(**kwargs)
    return Runtime(machine, scheduler), scheduler


class TestAffinity:
    def test_rewoken_thread_prefers_its_cpu(self, smp):
        """A thread with cached state must resume where the state is."""
        rt, scheduler = build(smp, threshold_lines=8)
        regions = [rt.alloc_lines(f"r{i}", 60) for i in range(8)]

        def body(region):
            def gen():
                for _ in range(6):
                    yield Touch(region.lines())
                    yield Compute(100)
                    yield Sleep(4000)
            return gen

        tids = [rt.at_create(body(r), name=f"t{i}") for i, r in enumerate(regions)]
        rt.run()
        migrations = sum(rt.thread(t).stats.migrations for t in tids)
        intervals = sum(rt.thread(t).stats.intervals for t in tids)
        # affinity: far fewer migrations than intervals
        assert migrations < intervals / 4

    def test_beats_fcfs_on_disjoint_tasks(self, machine, small_config):
        """The headline effect: fewer misses than FCFS when footprints
        outnumber the cache."""
        from repro.sched.fcfs import FCFSScheduler

        def run(mach, scheduler):
            rt = Runtime(mach, scheduler)
            regions = [rt.alloc_lines(f"r{i}", 40) for i in range(12)]

            def body(region):
                def gen():
                    for _ in range(8):
                        yield Touch(region.lines())
                        yield Sleep(3000)
                return gen

            for i, r in enumerate(regions):
                rt.at_create(body(r))
            rt.run()
            return mach.total_l2_misses()

        fcfs = run(Machine(small_config, seed=1),
                   FCFSScheduler(model_scheduler_memory=False))
        lff = run(Machine(small_config, seed=1),
                  make_lff(model_scheduler_memory=False, threshold_lines=8))
        assert lff < fcfs * 0.6


class TestThreshold:
    def test_small_footprints_go_to_global_queue(self, machine):
        rt, scheduler = build(machine, threshold_lines=1000.0)  # nothing qualifies
        region = rt.alloc_lines("r", 20)

        def body():
            for _ in range(3):
                yield Touch(region.lines())
                yield Sleep(1000)

        rt.at_create(body)
        rt.run()
        assert all(len(h) == 0 for h in scheduler.heaps)

    def test_demotion_counts(self, machine):
        rt, scheduler = build(machine, threshold_lines=8)
        assert scheduler.demotions >= 0  # attribute exists and starts sane


class TestStealing:
    def test_idle_cpu_steals_cold_thread(self, smp):
        rt, scheduler = build(smp, threshold_lines=4, steal_max_footprint=1e9)
        region_a = rt.alloc_lines("a", 30)

        def hog():
            # long-running: keeps its cpu busy
            for _ in range(4):
                yield Touch(region_a.lines())
                yield Compute(200_000)

        def small(i):
            region = rt.alloc_lines(f"s{i}", 8)

            def gen():
                for _ in range(3):
                    yield Touch(region.lines())
                    yield Sleep(500)
            return gen

        rt.at_create(hog)
        for i in range(6):
            rt.at_create(small(i))
        rt.run()
        # work got distributed: more than one cpu executed instructions
        busy = [c for c in smp.cpus if c.instructions > 0]
        assert len(busy) > 1

    def test_steal_respects_footprint_cap(self, smp):
        scheduler = make_lff(
            model_scheduler_memory=False,
            threshold_lines=4,
            steal_max_footprint=0.0,  # never steal
        )
        rt = Runtime(smp, scheduler)
        region = rt.alloc_lines("r", 30)

        def body():
            for _ in range(3):
                yield Touch(region.lines())
                yield Sleep(1000)

        rt.at_create(body)
        rt.run()
        assert scheduler.steals == 0

    def test_steal_disabled(self, smp):
        scheduler = make_lff(model_scheduler_memory=False, steal=False)
        rt = Runtime(smp, scheduler)

        def body():
            yield Compute(10)

        rt.at_create(body)
        rt.run()
        assert scheduler.steals == 0


class TestDependentRepush:
    def test_ready_dependent_enters_blockers_heap(self, machine):
        rt, scheduler = build(machine, threshold_lines=4)
        region = rt.alloc_lines("r", 50)

        def active():
            yield Touch(region.lines())
            yield Compute(10)

        def passive():
            yield Sleep(1)  # immediately sleeps, then becomes ready
            yield Compute(100_000)

        passive_tid = rt.at_create(passive)
        active_tid = rt.at_create(active)
        rt.at_share(active_tid, passive_tid, 0.8)
        rt.run()
        # the dependent got a footprint entry on cpu 0 from active's block
        assert scheduler.scheme.cumulative_misses(0) > 0

    def test_no_thread_lost_when_dependent_below_threshold(self, machine):
        """Regression: a dependent whose priority update bumps its version
        while its footprint is below threshold must stay findable."""
        rt, scheduler = build(machine, threshold_lines=10_000.0)
        region = rt.alloc_lines("r", 30)

        def active():
            for _ in range(3):
                yield Touch(region.lines())
                yield Sleep(500)

        def passive():
            yield Sleep(1)
            yield Compute(10)

        passive_tid = rt.at_create(passive)
        active_tid = rt.at_create(active)
        rt.at_share(active_tid, passive_tid, 0.9)
        rt.run()  # must terminate: nobody may be lost
        assert rt.thread(passive_tid).state is ThreadState.DONE


class TestFairnessEscape:
    def test_fairness_boost_dispatches_from_fifo(self, machine):
        scheduler = make_lff(
            model_scheduler_memory=False, threshold_lines=4, fairness_boost=2
        )
        rt = Runtime(machine, scheduler)
        region = rt.alloc_lines("r", 40)

        def hot():
            for _ in range(5):
                yield Touch(region.lines())
                yield Sleep(500)

        def cold(i):
            def gen():
                yield Compute(10)
            return gen

        rt.at_create(hot)
        for i in range(5):
            rt.at_create(cold(i))
        rt.run()  # all complete; boost path exercised
        assert all(not t.alive for t in rt.threads.values())


class TestSchedulerMemory:
    def test_regions_allocated_when_modelled(self, smp):
        scheduler = make_lff(model_scheduler_memory=True)
        rt = Runtime(smp, scheduler)
        space = smp.address_space
        assert "sched-heap-cpu0" in space
        assert "sched-global-queue" in space
        assert "sched-entries-cpu0" in space

    def test_no_regions_without_model(self, smp):
        scheduler = make_lff(model_scheduler_memory=False)
        rt = Runtime(smp, scheduler)
        assert "sched-heap-cpu0" not in smp.address_space


class TestCounterAnomalies:
    """Satellite of the counter-hardening work: readings the counter
    view already clamped (stuck register, wrapped delta, mid-interval
    PCR reprogram) arrive at the scheduler in-range -- typically zero --
    so the range check alone never counted them, and a stuck register
    could feed garbage forever without tripping degraded FCFS."""

    def _stuck_register_observer(self, machine):
        """On every dispatch, inject extra ECACHE_HITS into cpu 0's PICs
        so the interval ends with hits > refs: the physically impossible
        pair a stuck/glitched register produces.  The view clamps the
        reading to 0 and flags it suspect."""
        from repro.machine.counters import CounterEvent
        from repro.threads.runtime import Observer

        class StuckHits(Observer):
            def on_dispatch(self, cpu, thread):
                machine.cpus[cpu].counters.record(
                    CounterEvent.ECACHE_HITS, 10_000
                )

        return StuckHits()

    def test_view_clamped_readings_count_as_anomalies(self, machine):
        rt, scheduler = build(machine, threshold_lines=4)
        rt.add_observer(self._stuck_register_observer(machine))
        region = rt.alloc_lines("r", 30)

        def body():
            for _ in range(2):
                yield Touch(region.lines())
                yield Sleep(500)

        rt.at_create(body)
        rt.run()
        assert scheduler.counter_anomalies > 0

    def test_stuck_register_sequence_flips_degraded_fcfs(self, machine):
        from repro.sched.locality import DEGRADE_AFTER

        rt, scheduler = build(machine, threshold_lines=4)
        rt.add_observer(self._stuck_register_observer(machine))
        region = rt.alloc_lines("r", 30)

        def body():
            # enough sleep intervals that the suspect count must cross
            # DEGRADE_AFTER well before the thread finishes
            for _ in range(2 * DEGRADE_AFTER):
                yield Touch(region.lines())
                yield Sleep(500)

        tid = rt.at_create(body)
        rt.run()
        assert scheduler.counter_anomalies >= DEGRADE_AFTER
        assert scheduler.degraded
        # degraded mode is a locality fallback, never a correctness one
        assert rt.thread(tid).state is ThreadState.DONE

    def test_clean_run_stays_trusted(self, machine):
        rt, scheduler = build(machine, threshold_lines=4)
        region = rt.alloc_lines("r", 30)

        def body():
            for _ in range(6):
                yield Touch(region.lines())
                yield Sleep(500)

        rt.at_create(body)
        rt.run()
        assert scheduler.counter_anomalies == 0
        assert not scheduler.degraded

    def test_in_range_unsuspect_reading_passes_through(self, machine):
        rt, scheduler = build(machine)
        assert scheduler._sanitize_misses(17) == 17
        assert scheduler.counter_anomalies == 0

    def test_suspect_reading_counts_even_when_in_range(self, machine):
        rt, scheduler = build(machine)
        assert scheduler._sanitize_misses(0, suspect=True) == 0
        assert scheduler.counter_anomalies == 1

    def test_out_of_range_reading_still_counts(self, machine):
        rt, scheduler = build(machine)
        cap = scheduler._miss_cap
        assert scheduler._sanitize_misses(cap + 1) == cap
        assert scheduler._sanitize_misses(-5) == 0
        assert scheduler.counter_anomalies == 2


class TestCRTVariant:
    def test_crt_scheduler_runs(self, machine):
        scheduler = make_crt(model_scheduler_memory=False, threshold_lines=8)
        rt = Runtime(machine, scheduler)
        region = rt.alloc_lines("r", 30)

        def body():
            for _ in range(4):
                yield Touch(region.lines())
                yield Sleep(1000)

        rt.at_create(body)
        rt.run()
        assert scheduler.name == "crt"
        assert all(not t.alive for t in rt.threads.values())

    def test_invalid_creation_order_param(self):
        with pytest.raises(ValueError):
            from repro.workloads.photo import PhotoWorkload

            PhotoWorkload(creation_order="zigzag")
