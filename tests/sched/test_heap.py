"""Tests for the lazy-deletion priority heap."""

import pytest

from repro.sched.heap import HeapEntry, PriorityHeap
from repro.threads.errors import HeapCorruption, InvariantViolation
from repro.threads.thread import ActiveThread, ThreadState


def ready_thread(tid):
    t = ActiveThread(tid, iter(()))
    t.state = ThreadState.READY
    return t


def version_fn(versions):
    return lambda thread: versions.get(thread.tid)


class TestPushPop:
    def test_pops_highest_priority(self):
        heap = PriorityHeap()
        a, b = ready_thread(1), ready_thread(2)
        heap.push(a, priority=1.0, version=0)
        heap.push(b, priority=5.0, version=0)
        entry, _ = heap.pop_valid(version_fn({1: 0, 2: 0}))
        assert entry.thread is b

    def test_fifo_tiebreak(self):
        heap = PriorityHeap()
        a, b = ready_thread(1), ready_thread(2)
        heap.push(a, priority=1.0, version=0)
        heap.push(b, priority=1.0, version=0)
        entry, _ = heap.pop_valid(version_fn({1: 0, 2: 0}))
        assert entry.thread is a

    def test_empty_pop(self):
        heap = PriorityHeap()
        entry, pops = heap.pop_valid(version_fn({}))
        assert entry is None
        assert pops == 0

    def test_push_returns_depth(self):
        heap = PriorityHeap()
        depth = heap.push(ready_thread(1), 1.0, 0)
        assert depth >= 1


class TestLazyInvalidation:
    def test_non_ready_thread_skipped(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, 0)
        t.state = ThreadState.RUNNING
        entry, pops = heap.pop_valid(version_fn({1: 0}))
        assert entry is None
        assert pops == 1

    def test_stale_seq_skipped(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, 0)
        t.mark_ready()  # bumps ready_seq, invalidating the entry
        entry, _ = heap.pop_valid(version_fn({1: 0}))
        assert entry is None

    def test_stale_version_skipped(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, version=3)
        entry, _ = heap.pop_valid(version_fn({1: 4}))
        assert entry is None

    def test_missing_version_skipped(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, version=0)
        entry, _ = heap.pop_valid(version_fn({}))
        assert entry is None

    def test_valid_entry_found_beneath_stale_ones(self):
        heap = PriorityHeap()
        stale = ready_thread(1)
        live = ready_thread(2)
        heap.push(stale, 9.0, version=0)
        heap.push(live, 1.0, version=0)
        stale.state = ThreadState.BLOCKED
        entry, pops = heap.pop_valid(version_fn({1: 0, 2: 0}))
        assert entry.thread is live
        assert pops == 2


class TestMinValid:
    def test_returns_lowest_priority(self):
        heap = PriorityHeap()
        a, b, c = (ready_thread(i) for i in (1, 2, 3))
        heap.push(a, 5.0, 0)
        heap.push(b, 1.0, 0)
        heap.push(c, 3.0, 0)
        entry = heap.min_valid(version_fn({1: 0, 2: 0, 3: 0}))
        assert entry.thread is b

    def test_skips_invalid(self):
        heap = PriorityHeap()
        a, b = ready_thread(1), ready_thread(2)
        heap.push(a, 1.0, 0)
        heap.push(b, 5.0, 0)
        a.state = ThreadState.RUNNING
        entry = heap.min_valid(version_fn({1: 0, 2: 0}))
        assert entry.thread is b

    def test_empty(self):
        assert PriorityHeap().min_valid(version_fn({})) is None


class TestValidate:
    def test_valid_heap_passes(self):
        heap = PriorityHeap()
        for i in range(16):
            heap.push(ready_thread(i), float(i % 7), 0)
        heap.validate()

    def test_valid_after_compact(self):
        heap = PriorityHeap()
        threads = [ready_thread(i) for i in range(12)]
        for t in threads:
            heap.push(t, float(t.tid % 5), 0)
        for t in threads[::2]:
            t.state = ThreadState.DONE
        heap.compact(version_fn({t.tid: 0 for t in threads}))
        heap.validate()

    def test_detects_order_violation(self):
        heap = PriorityHeap()
        for i in range(8):
            heap.push(ready_thread(i), float(i), 0)
        heap._heap.sort(key=lambda e: -e.sort_key[0])  # worst at the root
        with pytest.raises(InvariantViolation):
            heap.validate()

    def test_detects_inconsistent_sort_key(self):
        heap = PriorityHeap()
        heap.push(ready_thread(1), 3.0, 0)
        entry = heap._heap[0]
        heap._heap[0] = HeapEntry(
            sort_key=(-99.0, 0),
            thread=entry.thread,
            priority=entry.priority,
            seq=entry.seq,
            version=entry.version,
        )
        with pytest.raises(InvariantViolation):
            heap.validate()

    def test_empty_heap_valid(self):
        PriorityHeap().validate()

    def test_corruption_is_typed_not_assertion(self):
        heap = PriorityHeap()
        for i in range(8):
            heap.push(ready_thread(i), float(i), 0)
        heap._heap.sort(key=lambda e: -e.sort_key[0])
        with pytest.raises(HeapCorruption):
            heap.validate()
        assert issubclass(HeapCorruption, InvariantViolation)
        assert not issubclass(HeapCorruption, AssertionError)

    def test_detects_backmap_missing_entry(self):
        heap = PriorityHeap()
        for i in range(4):
            heap.push(ready_thread(i), float(i), 0)
        del heap._by_tid[2]
        with pytest.raises(HeapCorruption, match="back-map"):
            heap.validate()

    def test_detects_backmap_count_drift(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, 0)
        heap.push(t, 2.0, 0)
        heap._by_tid[1] = 1
        with pytest.raises(HeapCorruption, match="back-map"):
            heap.validate()

    def test_detects_backmap_phantom_entry(self):
        heap = PriorityHeap()
        heap.push(ready_thread(1), 1.0, 0)
        heap._by_tid[99] = 1
        with pytest.raises(HeapCorruption, match="back-map"):
            heap.validate()


class TestBackMap:
    def test_tracks_pushes_and_pops(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, 0)
        heap.push(t, 2.0, 0)
        heap.push(ready_thread(2), 3.0, 0)
        assert heap.entries_for(1) == 2
        assert heap.entries_for(2) == 1
        assert heap.entries_for(42) == 0
        heap.pop_valid(version_fn({1: 0, 2: 0}))  # pops tid 2 (prio 3.0)
        assert heap.entries_for(2) == 0
        heap.validate()

    def test_survives_compact(self):
        heap = PriorityHeap()
        threads = [ready_thread(i) for i in range(6)]
        for t in threads:
            heap.push(t, float(t.tid), 0)
        for t in threads[:3]:
            t.state = ThreadState.DONE
        heap.compact(version_fn({t.tid: 0 for t in threads}))
        for t in threads[:3]:
            assert heap.entries_for(t.tid) == 0
        for t in threads[3:]:
            assert heap.entries_for(t.tid) == 1
        heap.validate()

    def test_dead_entries_still_counted_until_popped(self):
        heap = PriorityHeap()
        t = ready_thread(1)
        heap.push(t, 1.0, 0)
        t.mark_ready()  # invalidates lazily; the entry stays in the array
        assert heap.entries_for(1) == 1
        heap.validate()
        entry, _pops = heap.pop_valid(version_fn({1: 0}))
        assert entry is None
        assert heap.entries_for(1) == 0
        heap.validate()


class TestCompact:
    def test_drops_dead_entries(self):
        heap = PriorityHeap()
        threads = [ready_thread(i) for i in range(6)]
        for t in threads:
            heap.push(t, float(t.tid), 0)
        for t in threads[:4]:
            t.state = ThreadState.DONE
        survivors = heap.compact(version_fn({t.tid: 0 for t in threads}))
        assert survivors == 2
        assert len(heap) == 2

    def test_heap_property_preserved(self):
        heap = PriorityHeap()
        threads = [ready_thread(i) for i in range(10)]
        for t in threads:
            heap.push(t, float(t.tid % 5), 0)
        heap.compact(version_fn({t.tid: 0 for t in threads}))
        versions = version_fn({t.tid: 0 for t in threads})
        last = float("inf")
        while True:
            entry, _ = heap.pop_valid(versions)
            if entry is None:
                break
            assert entry.priority <= last
            last = entry.priority
