"""Property test for the heap's back-map under arbitrary interleavings.

PR 4 inlined the back-map decrement into ``pop_valid``; this stateful
test drives push / pop / invalidate / re-validate / compact in every
order hypothesis can find and asserts, after each step, that

- :meth:`validate` holds (the back-map agrees exactly with a recount of
  the heap array -- same tids, same counts), and
- :meth:`entries_for` never reports an entry for a thread whose entries
  have all been popped: a popped entry (valid or lazily dead) must
  leave the back-map the moment it leaves the array.

Any drift -- a double decrement, a missed decrement on the lazy-deletion
path, a stale tid left behind by compact -- fails with the exact
interleaving that produced it.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sched.heap import PriorityHeap
from repro.threads.thread import ActiveThread, ThreadState

_TIDS = st.integers(min_value=0, max_value=5)


class HeapBackMapMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.heap = PriorityHeap()
        self.threads = {}
        self.versions = {}

    def _thread(self, tid: int) -> ActiveThread:
        if tid not in self.threads:
            t = ActiveThread(tid, iter(()))
            t.state = ThreadState.READY
            self.threads[tid] = t
            self.versions[tid] = 0
        return self.threads[tid]

    def _version_fn(self):
        return lambda thread: self.versions.get(thread.tid)

    @rule(tid=_TIDS, priority=st.floats(0.0, 10.0, allow_nan=False))
    def push(self, tid, priority):
        thread = self._thread(tid)
        thread.state = ThreadState.READY
        self.heap.push(thread, priority, self.versions[tid])

    @rule()
    def pop(self):
        before = len(self.heap)
        entry, pops = self.heap.pop_valid(self._version_fn())
        # every pop (valid result or lazily-dead entry) removes exactly
        # one array entry; the back-map must have shed them all, which
        # the invariant below cross-checks against the array
        assert len(self.heap) == before - pops
        if entry is not None:
            assert entry.thread.state is ThreadState.READY

    @rule(tid=_TIDS)
    def invalidate_by_state(self, tid):
        if tid in self.threads:
            self.threads[tid].state = ThreadState.BLOCKED

    @rule(tid=_TIDS)
    def invalidate_by_seq(self, tid):
        if tid in self.threads:
            self.threads[tid].mark_ready()

    @rule(tid=_TIDS)
    def bump_version(self, tid):
        if tid in self.versions:
            self.versions[tid] += 1

    @rule()
    def compact(self):
        self.heap.compact(self._version_fn())

    @invariant()
    def backmap_matches_array(self):
        if not hasattr(self, "heap"):
            return
        self.heap.validate()
        recount = {}
        for e in self.heap:
            tid = e.thread.tid
            recount[tid] = recount.get(tid, 0) + 1
        # entries_for must agree with the array for every tid ever seen,
        # including tids whose entries were all popped (count 0)
        for tid in set(recount) | set(self.threads):
            assert self.heap.entries_for(tid) == recount.get(tid, 0)


HeapBackMapMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestHeapBackMap = HeapBackMapMachine.TestCase
