"""Tests for the static-mapping scheduler (related work [15])."""

import pytest

from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sched.static import StaticScheduler
from repro.sim.driver import run_performance
from repro.threads.events import Compute, Sleep, Touch
from repro.threads.runtime import Runtime
from repro.workloads import TasksParams, TasksWorkload


class TestHomeAssignment:
    def test_round_robin_homes(self, smp):
        scheduler = StaticScheduler()
        rt = Runtime(smp, scheduler)

        def body():
            yield Compute(10)

        tids = [rt.at_create(body) for _ in range(8)]
        homes = [scheduler._home[t] for t in tids]
        assert homes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_threads_stick_to_home(self, smp):
        scheduler = StaticScheduler(rebalance=False)
        rt = Runtime(smp, scheduler)
        regions = [rt.alloc_lines(f"r{i}", 30) for i in range(4)]

        def body(region):
            def gen():
                for _ in range(5):
                    yield Touch(region.lines())
                    yield Sleep(2000)
            return gen

        tids = [rt.at_create(body(r)) for r in regions]
        rt.run()
        # equal-length threads on their own home cpus never migrate
        assert all(rt.thread(t).stats.migrations == 0 for t in tids)

    def test_rebalance_moves_work_to_idle_cpus(self, smp):
        scheduler = StaticScheduler(rebalance=True)
        rt = Runtime(smp, scheduler)

        def body():
            yield Compute(50_000)

        # all eight threads share home 0 if created with homes cycling --
        # force imbalance by creating 8 threads: homes 0..3 twice; cpu 0's
        # queue drains while others idle only if balancing works; instead
        # check that all cpus executed something
        for _ in range(8):
            rt.at_create(body)
        rt.run()
        busy = [c for c in smp.cpus if c.instructions > 0]
        assert len(busy) == 4

    def test_without_rebalance_idle_cpus_wait(self, machine):
        scheduler = StaticScheduler(rebalance=False)
        rt = Runtime(machine, scheduler)

        def body():
            yield Compute(100)

        rt.at_create(body)
        rt.run()  # single cpu: must still complete
        assert all(not t.alive for t in rt.threads.values())


class TestBehaviour:
    def test_beats_fcfs_on_smp_tasks(self, smp_config):
        params = TasksParams(num_tasks=24, footprint_lines=40, periods=8)
        base = run_performance(
            TasksWorkload(params), smp_config, FCFSScheduler()
        )
        static = run_performance(
            TasksWorkload(params), smp_config, StaticScheduler()
        )
        assert static.l2_misses < base.l2_misses

    def test_registered_in_scheduler_table(self):
        from repro.sched import SCHEDULERS

        assert SCHEDULERS["static"] is StaticScheduler
