"""Tests for thread event types."""

import numpy as np
import pytest

from repro.machine.address import Region
from repro.threads.events import (
    Compute,
    Sleep,
    Touch,
    touch_region,
)


class TestTouch:
    def test_lines_coerced_to_int64(self):
        event = Touch(lines=[1, 2, 3])
        assert event.lines.dtype == np.int64

    def test_default_is_read(self):
        assert Touch(lines=[1]).write is False


class TestCompute:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-5)

    def test_zero_allowed(self):
        assert Compute(0).instructions == 0


class TestSleep:
    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            Sleep(0)

    def test_positive_ok(self):
        assert Sleep(100).cycles == 100


class TestTouchRegion:
    def test_full_region(self):
        region = Region("r", base=0, size=64 * 8)
        event = touch_region(region)
        assert event.lines.tolist() == list(range(8))

    def test_partial_region(self):
        region = Region("r", base=0, size=64 * 8)
        event = touch_region(region, start_line=2, count=3)
        assert event.lines.tolist() == [2, 3, 4]

    def test_write_flag_propagates(self):
        region = Region("r", base=0, size=64)
        assert touch_region(region, write=True).write is True
