"""Tests for the structured-parallelism helpers."""

import numpy as np
import pytest

from repro.sched.fcfs import FCFSScheduler
from repro.threads.events import Compute, Touch
from repro.threads.par import TaskGroup, fork_join, parallel_map
from repro.threads.runtime import Runtime


@pytest.fixture
def rt(machine):
    return Runtime(machine, FCFSScheduler(model_scheduler_memory=False))


class TestForkJoin:
    def test_children_run_before_parent_continues(self, rt):
        order = []

        def child(name):
            def gen():
                yield Compute(100)
                order.append(name)
            return gen

        def parent():
            yield from fork_join(rt, [child("a"), child("b")])
            order.append("parent")

        rt.at_create(parent)
        rt.run()
        assert order == ["a", "b", "parent"]

    def test_annotations_written(self, rt):
        edges = []

        def child():
            yield Compute(10)

        def parent():
            me = rt.at_self()
            gen = fork_join(rt, [child, child], share_with_parent=0.7)
            first_join = next(gen)  # children created + annotated by now
            for tid in rt.threads:
                if tid != me:
                    edges.append(rt.graph.coefficient(tid, me))
            yield first_join
            yield from gen

        rt.at_create(parent)
        rt.run()
        assert edges == [0.7, 0.7]

    def test_zero_share_writes_no_edges(self, rt):
        seen = {}

        def child():
            yield Compute(10)

        def parent():
            gen = fork_join(rt, [child], share_with_parent=0.0)
            first = next(gen)
            seen["edges"] = rt.graph.num_edges()
            yield first

        rt.at_create(parent)
        rt.run()
        assert seen["edges"] == 0

    def test_invalid_share_rejected(self, rt):
        def parent():
            yield from fork_join(rt, [], share_with_parent=1.5)

        rt.at_create(parent)
        with pytest.raises(ValueError):
            rt.run()

    def test_names_applied(self, rt):
        def child():
            yield Compute(10)

        def parent():
            yield from fork_join(rt, [child], names=["worker-x"])

        rt.at_create(parent)
        rt.run()
        assert any(t.name == "worker-x" for t in rt.threads.values())


class TestParallelMap:
    def test_runs_count_children(self, rt):
        hits = []

        def make_body(i):
            def body():
                hits.append(i)
                yield Compute(10)
            return body

        def parent():
            yield from parallel_map(rt, make_body, count=5)

        rt.at_create(parent)
        rt.run()
        assert sorted(hits) == list(range(5))

    def test_sibling_overlap_annotations(self, rt):
        captured = {}

        def make_body(i):
            def body():
                yield Compute(10)
            return body

        def parent():
            gen = parallel_map(
                rt, make_body, count=4, sibling_overlap=0.5, overlap_span=2
            )
            first = next(gen)
            tids = sorted(t for t in rt.threads if t != rt.at_self())
            captured["d1"] = rt.graph.coefficient(tids[0], tids[1])
            captured["d2"] = rt.graph.coefficient(tids[0], tids[2])
            captured["d3"] = rt.graph.coefficient(tids[0], tids[3])
            yield first
            yield from gen

        rt.at_create(parent)
        rt.run()
        assert captured["d1"] == pytest.approx(0.5)
        assert captured["d2"] == pytest.approx(0.25)
        assert captured["d3"] == 0.0

    def test_validation(self, rt):
        def parent():
            yield from parallel_map(rt, lambda i: None, 1, sibling_overlap=2.0)

        rt.at_create(parent)
        with pytest.raises(ValueError):
            rt.run()


class TestTaskGroup:
    def test_spawn_and_join(self, rt):
        done = []

        def work(name):
            def gen():
                yield Compute(50)
                done.append(name)
            return gen

        def parent():
            group = TaskGroup(rt)
            group.spawn(work("a"))
            group.spawn(work("b"), share_with_parent=0.5)
            assert len(group) == 2
            yield from group.join_all()
            done.append("parent")

        rt.at_create(parent)
        rt.run()
        assert done == ["a", "b", "parent"]

    def test_annotation_coefficients(self, rt):
        seen = {}

        def work():
            yield Compute(10)

        def parent():
            me = rt.at_self()
            group = TaskGroup(rt)
            full = group.spawn(work)
            half = group.spawn(work, share_with_parent=0.5)
            seen["full"] = rt.graph.coefficient(full, me)
            seen["half"] = rt.graph.coefficient(half, me)
            yield from group.join_all()

        rt.at_create(parent)
        rt.run()
        assert seen == {"full": 1.0, "half": 0.5}
