"""Tests for the Active Threads runtime loop and event interpretation."""

import numpy as np
import pytest

from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.threads.errors import DeadlockError, SyncError, ThreadError
from repro.threads.events import (
    Acquire,
    BarrierWait,
    Compute,
    CondSignal,
    CondWait,
    Join,
    Release,
    SemPost,
    SemWait,
    Sleep,
    Touch,
    Yield,
)
from repro.threads.runtime import Runtime
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ThreadState


@pytest.fixture
def rt(machine):
    return Runtime(machine, FCFSScheduler(model_scheduler_memory=False))


@pytest.fixture
def smp_rt(smp):
    return Runtime(smp, FCFSScheduler(model_scheduler_memory=False))


class TestLifecycle:
    def test_single_thread_runs_to_completion(self, rt):
        log = []

        def body():
            log.append("a")
            yield Compute(10)
            log.append("b")

        tid = rt.at_create(body)
        rt.run()
        assert log == ["a", "b"]
        assert rt.thread(tid).state is ThreadState.DONE

    def test_touch_reaches_the_cache(self, rt):
        region = rt.alloc_lines("r", 10)

        def body():
            yield Touch(region.lines())

        rt.at_create(body)
        rt.run()
        assert rt.machine.total_l2_misses() == 10

    def test_compute_advances_clock(self, rt):
        def body():
            yield Compute(1234)

        rt.at_create(body)
        rt.run()
        assert rt.machine.cycles(0) >= 1234

    def test_generator_body_accepted_directly(self, rt):
        def gen():
            yield Compute(1)

        rt.at_create(gen())
        rt.run()

    def test_thread_stats_accumulate(self, rt):
        region = rt.alloc_lines("r", 5)

        def body():
            yield Touch(region.lines())
            yield Compute(100)

        tid = rt.at_create(body)
        rt.run()
        stats = rt.thread(tid).stats
        assert stats.refs == 5
        assert stats.instructions == 100
        assert stats.intervals == 1
        assert stats.misses == 5

    def test_at_self_inside_body(self, rt):
        seen = []

        def body():
            seen.append(rt.at_self())
            yield Compute(1)

        tid = rt.at_create(body)
        rt.run()
        assert seen == [tid]

    def test_at_self_outside_body_rejected(self, rt):
        with pytest.raises(ThreadError):
            rt.at_self()

    def test_context_switch_counted(self, rt):
        def body():
            yield Compute(1)

        rt.at_create(body)
        rt.at_create(body)
        rt.run()
        assert rt.context_switches == 2

    def test_max_events_guard(self, rt):
        def forever():
            while True:
                yield Compute(1)

        rt.at_create(forever)
        with pytest.raises(ThreadError):
            rt.run(max_events=50)


class TestJoin:
    def test_join_blocks_until_target_done(self, rt):
        order = []

        def child():
            yield Compute(10)
            order.append("child")

        def parent():
            tid = rt.at_create(child)
            yield Join(tid)
            order.append("parent")

        rt.at_create(parent)
        rt.run()
        assert order == ["child", "parent"]

    def test_join_on_finished_thread_continues(self, rt):
        def child():
            yield Compute(1)

        def parent():
            tid = rt.at_create(child)
            yield Compute(1)
            yield Join(tid)  # by now possibly done: must not deadlock
            yield Compute(1)

        rt.at_create(parent)
        rt.run()

    def test_join_unknown_tid_rejected(self, rt):
        def body():
            yield Join(9999)

        rt.at_create(body)
        with pytest.raises(ThreadError):
            rt.run()

    def test_multiple_joiners_all_wake(self, rt):
        woken = []

        def target():
            yield Compute(100)

        def waiter(name, tid):
            def body():
                yield Join(tid)
                woken.append(name)
            return body

        tid = rt.at_create(target)
        rt.at_create(waiter("a", tid))
        rt.at_create(waiter("b", tid))
        rt.run()
        assert sorted(woken) == ["a", "b"]


class TestMutexIntegration:
    def test_mutual_exclusion(self, rt):
        mutex = Mutex()
        inside = []

        def body(name):
            def gen():
                yield Acquire(mutex)
                inside.append(name)
                yield Compute(100)
                inside.append(name)
                yield Release(mutex)
            return gen

        rt.at_create(body("a"))
        rt.at_create(body("b"))
        rt.run()
        # entries come in adjacent pairs: no interleaving inside the lock
        assert inside[0] == inside[1]
        assert inside[2] == inside[3]

    def test_release_unowned_rejected(self, rt):
        mutex = Mutex()

        def body():
            yield Release(mutex)

        rt.at_create(body)
        with pytest.raises(SyncError):
            rt.run()


class TestSemaphoreIntegration:
    def test_producer_consumer(self, rt):
        sem = Semaphore(0)
        log = []

        def consumer():
            yield SemWait(sem)
            log.append("consumed")

        def producer():
            yield Compute(50)
            log.append("produced")
            yield SemPost(sem)

        rt.at_create(consumer)
        rt.at_create(producer)
        rt.run()
        assert log == ["produced", "consumed"]


class TestBarrierIntegration:
    def test_barrier_synchronises(self, rt):
        barrier = Barrier(3)
        phases = []

        def body(name):
            def gen():
                phases.append(("before", name))
                yield BarrierWait(barrier)
                phases.append(("after", name))
            return gen

        for name in "abc":
            rt.at_create(body(name))
        rt.run()
        befores = [i for i, p in enumerate(phases) if p[0] == "before"]
        afters = [i for i, p in enumerate(phases) if p[0] == "after"]
        assert max(befores) < min(afters)


class TestConditionIntegration:
    def test_wait_signal_roundtrip(self, rt):
        mutex, cond = Mutex(), Condition()
        log = []

        def waiter():
            yield Acquire(mutex)
            yield CondWait(cond, mutex)
            log.append("woken-with-mutex")
            assert mutex.owner is rt.thread(rt.at_self())
            yield Release(mutex)

        def signaller():
            yield Compute(100)
            yield Acquire(mutex)
            log.append("signalling")
            yield CondSignal(cond)
            yield Release(mutex)

        rt.at_create(waiter)
        rt.at_create(signaller)
        rt.run()
        assert log == ["signalling", "woken-with-mutex"]

    def test_wait_without_mutex_rejected(self, rt):
        mutex, cond = Mutex(), Condition()

        def body():
            yield CondWait(cond, mutex)

        rt.at_create(body)
        with pytest.raises(SyncError):
            rt.run()


class TestYieldSleep:
    def test_yield_round_robins(self, rt):
        order = []

        def body(name):
            def gen():
                order.append(name)
                yield Yield()
                order.append(name)
            return gen

        rt.at_create(body("a"))
        rt.at_create(body("b"))
        rt.run()
        assert order == ["a", "b", "a", "b"]

    def test_sleep_delays_until_wake_time(self, rt):
        times = {}

        def sleeper():
            yield Sleep(10_000)
            times["woke"] = rt.machine.cycles(0)

        rt.at_create(sleeper)
        rt.run()
        assert times["woke"] >= 10_000

    def test_sleeping_thread_not_schedulable(self, rt):
        order = []

        def sleeper():
            yield Sleep(5_000)
            order.append("sleeper")

        def worker():
            order.append("worker")
            yield Compute(10)

        rt.at_create(sleeper)
        rt.at_create(worker)
        rt.run()
        assert order == ["worker", "sleeper"]


class TestDeadlock:
    def test_deadlock_detected(self, rt):
        mutex_a, mutex_b = Mutex(), Mutex()

        def one():
            yield Acquire(mutex_a)
            yield Compute(10)
            yield Acquire(mutex_b)

        def two():
            yield Acquire(mutex_b)
            yield Compute(10)
            yield Acquire(mutex_a)

        rt.at_create(one)
        rt.at_create(two)
        with pytest.raises(DeadlockError):
            rt.run()

    def test_join_cycle_detected(self, rt):
        tids = {}

        def one():
            yield Compute(10)
            yield Join(tids["two"])

        def two():
            yield Compute(10)
            yield Join(tids["one"])

        tids["one"] = rt.at_create(one)
        tids["two"] = rt.at_create(two)
        with pytest.raises(DeadlockError):
            rt.run()

    def test_deadlock_reports_wait_for_cycle(self, rt):
        mutex_a = Mutex(name="mutex-a")
        mutex_b = Mutex(name="mutex-b")

        def one():
            yield Acquire(mutex_a)
            yield Yield()  # let "two" take mutex-b before we want it
            yield Acquire(mutex_b)

        def two():
            yield Acquire(mutex_b)
            yield Yield()
            yield Acquire(mutex_a)

        rt.at_create(one, name="one")
        rt.at_create(two, name="two")
        with pytest.raises(DeadlockError) as excinfo:
            rt.run()
        err = excinfo.value
        # the error names the actual thread -> resource -> owner chain
        assert err.cycle is not None
        assert {t.name for t in err.cycle} == {"one", "two"}
        message = str(err)
        assert "wait-for cycle" in message
        assert "mutex-a (held by one)" in message
        assert "mutex-b (held by two)" in message

    def test_join_cycle_spelled_out(self, rt):
        tids = {}

        def one():
            yield Compute(10)
            yield Join(tids["two"])

        def two():
            yield Compute(10)
            yield Join(tids["one"])

        tids["one"] = rt.at_create(one, name="one")
        tids["two"] = rt.at_create(two, name="two")
        with pytest.raises(DeadlockError) as excinfo:
            rt.run()
        assert "join(" in str(excinfo.value)
        assert excinfo.value.cycle is not None

    def test_cycle_free_deadlock_lists_casualties(self, rt):
        barrier = Barrier(2)  # only one thread will ever arrive

        def body():
            yield BarrierWait(barrier)

        rt.at_create(body, name="lonely")
        with pytest.raises(DeadlockError) as excinfo:
            rt.run()
        assert excinfo.value.cycle is None
        assert "lonely" in str(excinfo.value)


class TestSMP:
    def test_threads_spread_across_cpus(self, smp_rt):
        def body():
            yield Compute(10_000)

        for _ in range(4):
            smp_rt.at_create(body)
        smp_rt.run()
        used = {
            t.last_cpu for t in smp_rt.threads.values()
        }
        assert len(used) == 4  # pure compute spreads perfectly

    def test_migrations_counted(self, smp_rt):
        def body():
            for _ in range(5):
                yield Compute(100)
                yield Sleep(1000)

        tids = [smp_rt.at_create(body) for _ in range(8)]
        smp_rt.run()
        total = sum(smp_rt.thread(t).stats.migrations for t in tids)
        assert total >= 0  # bookkeeping exists; FCFS may or may not migrate

    def test_unknown_event_rejected(self, rt):
        def body():
            yield "not an event"

        rt.at_create(body)
        with pytest.raises(ThreadError):
            rt.run()


class TestCounterOverflowSurfacing:
    def test_narrow_counters_flag_wrapped_interval(self, machine):
        from repro.machine.counters import PerformanceCounters

        # shrink the PICs to 8 bits so one 200-line touch wraps them
        for cpu in machine.cpus:
            cpu.counters = PerformanceCounters(width_bits=8)
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        region = rt.alloc_lines("r", 200)

        def body():
            yield Touch(region.lines())

        rt.at_create(body)
        rt.run()
        assert rt.counter_overflow_suspects >= 1
        assert rt.counter_diagnostics
        assert "wrapped" in rt.counter_diagnostics[0]

    def test_wide_counters_never_flag(self, rt):
        region = rt.alloc_lines("r", 200)

        def body():
            yield Touch(region.lines())

        rt.at_create(body)
        rt.run()
        assert rt.counter_overflow_suspects == 0
        assert rt.counter_diagnostics == []
