"""Tests for the synchronisation objects (runtime-agnostic semantics)."""

import pytest

from repro.threads.errors import SyncError
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ActiveThread


def thread(tid):
    return ActiveThread(tid, iter(()))


class TestMutex:
    def test_uncontended_acquire(self):
        m = Mutex()
        t = thread(1)
        assert m.acquire(t)
        assert m.owner is t

    def test_contended_acquire_queues(self):
        m = Mutex()
        a, b = thread(1), thread(2)
        m.acquire(a)
        assert not m.acquire(b)
        assert m.queue_length == 1

    def test_release_hands_off_fifo(self):
        m = Mutex()
        a, b, c = thread(1), thread(2), thread(3)
        m.acquire(a)
        m.acquire(b)
        m.acquire(c)
        assert m.release(a) is b
        assert m.owner is b
        assert m.release(b) is c

    def test_release_with_no_waiters_frees(self):
        m = Mutex()
        a = thread(1)
        m.acquire(a)
        assert m.release(a) is None
        assert m.owner is None

    def test_release_by_non_owner_rejected(self):
        m = Mutex()
        a, b = thread(1), thread(2)
        m.acquire(a)
        with pytest.raises(SyncError):
            m.release(b)

    def test_recursive_acquire_rejected(self):
        m = Mutex()
        a = thread(1)
        m.acquire(a)
        with pytest.raises(SyncError):
            m.acquire(a)


class TestSemaphore:
    def test_wait_decrements(self):
        s = Semaphore(2)
        assert s.wait(thread(1))
        assert s.count == 1

    def test_wait_at_zero_queues(self):
        s = Semaphore(0)
        t = thread(1)
        assert not s.wait(t)
        assert s.queue_length == 1

    def test_post_hands_permit_to_waiter(self):
        s = Semaphore(0)
        t = thread(1)
        s.wait(t)
        assert s.post() is t
        assert s.count == 0  # direct handoff, count unchanged

    def test_post_without_waiters_increments(self):
        s = Semaphore(0)
        assert s.post() is None
        assert s.count == 1

    def test_fifo_wakeup(self):
        s = Semaphore(0)
        a, b = thread(1), thread(2)
        s.wait(a)
        s.wait(b)
        assert s.post() is a
        assert s.post() is b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)


class TestBarrier:
    def test_early_arrivals_block(self):
        b = Barrier(3)
        assert b.arrive(thread(1)) is None
        assert b.arrive(thread(2)) is None
        assert b.waiting == 2

    def test_last_arrival_wakes_all(self):
        b = Barrier(3)
        a, bb = thread(1), thread(2)
        b.arrive(a)
        b.arrive(bb)
        woken = b.arrive(thread(3))
        assert woken == [a, bb]
        assert b.waiting == 0

    def test_barrier_is_cyclic(self):
        b = Barrier(2)
        b.arrive(thread(1))
        b.arrive(thread(2))
        assert b.generation == 1
        assert b.arrive(thread(3)) is None  # next generation

    def test_single_party_never_blocks(self):
        b = Barrier(1)
        assert b.arrive(thread(1)) == []

    def test_zero_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(0)


class TestCondition:
    def test_signal_pops_fifo(self):
        c = Condition()
        a, b = thread(1), thread(2)
        c.add_waiter(a)
        c.add_waiter(b)
        assert c.signal() is a
        assert c.signal() is b
        assert c.signal() is None

    def test_broadcast_pops_all(self):
        c = Condition()
        a, b = thread(1), thread(2)
        c.add_waiter(a)
        c.add_waiter(b)
        assert c.broadcast() == [a, b]
        assert c.queue_length == 0

    def test_signal_empty_is_none(self):
        assert Condition().signal() is None
