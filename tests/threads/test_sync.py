"""Tests for the synchronisation objects (runtime-agnostic semantics)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_crt, make_lff
from repro.threads.errors import SyncError
from repro.threads.events import (
    Acquire,
    Compute,
    CondBroadcast,
    CondSignal,
    Release,
)
from repro.threads.runtime import Runtime
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ActiveThread, ThreadState


def _runtime(scheduler=None, num_cpus=2):
    config = replace(SMALL, name="sync-test", num_cpus=num_cpus)
    machine = Machine(config, seed=3)
    return Runtime(machine, scheduler or FCFSScheduler(
        model_scheduler_memory=False))


def thread(tid):
    return ActiveThread(tid, iter(()))


class TestMutex:
    def test_uncontended_acquire(self):
        m = Mutex()
        t = thread(1)
        assert m.acquire(t)
        assert m.owner is t

    def test_contended_acquire_queues(self):
        m = Mutex()
        a, b = thread(1), thread(2)
        m.acquire(a)
        assert not m.acquire(b)
        assert m.queue_length == 1

    def test_release_hands_off_fifo(self):
        m = Mutex()
        a, b, c = thread(1), thread(2), thread(3)
        m.acquire(a)
        m.acquire(b)
        m.acquire(c)
        assert m.release(a) is b
        assert m.owner is b
        assert m.release(b) is c

    def test_release_with_no_waiters_frees(self):
        m = Mutex()
        a = thread(1)
        m.acquire(a)
        assert m.release(a) is None
        assert m.owner is None

    def test_release_by_non_owner_rejected(self):
        m = Mutex()
        a, b = thread(1), thread(2)
        m.acquire(a)
        with pytest.raises(SyncError):
            m.release(b)

    def test_recursive_acquire_rejected(self):
        m = Mutex()
        a = thread(1)
        m.acquire(a)
        with pytest.raises(SyncError):
            m.acquire(a)


class TestSemaphore:
    def test_wait_decrements(self):
        s = Semaphore(2)
        assert s.wait(thread(1))
        assert s.count == 1

    def test_wait_at_zero_queues(self):
        s = Semaphore(0)
        t = thread(1)
        assert not s.wait(t)
        assert s.queue_length == 1

    def test_post_hands_permit_to_waiter(self):
        s = Semaphore(0)
        t = thread(1)
        s.wait(t)
        assert s.post() is t
        assert s.count == 0  # direct handoff, count unchanged

    def test_post_without_waiters_increments(self):
        s = Semaphore(0)
        assert s.post() is None
        assert s.count == 1

    def test_fifo_wakeup(self):
        s = Semaphore(0)
        a, b = thread(1), thread(2)
        s.wait(a)
        s.wait(b)
        assert s.post() is a
        assert s.post() is b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)


class TestBarrier:
    def test_early_arrivals_block(self):
        b = Barrier(3)
        assert b.arrive(thread(1)) is None
        assert b.arrive(thread(2)) is None
        assert b.waiting == 2

    def test_last_arrival_wakes_all(self):
        b = Barrier(3)
        a, bb = thread(1), thread(2)
        b.arrive(a)
        b.arrive(bb)
        woken = b.arrive(thread(3))
        assert woken == [a, bb]
        assert b.waiting == 0

    def test_barrier_is_cyclic(self):
        b = Barrier(2)
        b.arrive(thread(1))
        b.arrive(thread(2))
        assert b.generation == 1
        assert b.arrive(thread(3)) is None  # next generation

    def test_single_party_never_blocks(self):
        b = Barrier(1)
        assert b.arrive(thread(1)) == []

    def test_zero_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(0)


class TestBarrierReuse:
    def test_same_threads_can_reuse_after_release(self):
        b = Barrier(2)
        a, bb = thread(1), thread(2)
        assert b.arrive(a) is None
        assert b.arrive(bb) == [a]
        # round two with the same threads: state fully reset
        assert b.waiting == 0
        assert b.arrive(bb) is None
        assert b.arrive(a) == [bb]
        assert b.generation == 2
        assert b.waiting == 0

    def test_generations_do_not_mix_waiters(self):
        b = Barrier(3)
        a, bb, c = thread(1), thread(2), thread(3)
        b.arrive(a)
        b.arrive(bb)
        b.arrive(c)
        late = thread(4)
        assert b.arrive(late) is None
        assert b.waiting == 1  # only the new generation's arrival


class TestCondition:
    def test_signal_pops_fifo(self):
        c = Condition()
        a, b = thread(1), thread(2)
        c.add_waiter(a)
        c.add_waiter(b)
        assert c.signal() is a
        assert c.signal() is b
        assert c.signal() is None

    def test_broadcast_pops_all(self):
        c = Condition()
        a, b = thread(1), thread(2)
        c.add_waiter(a)
        c.add_waiter(b)
        assert c.broadcast() == [a, b]
        assert c.queue_length == 0

    def test_signal_empty_is_none(self):
        assert Condition().signal() is None

    def test_broadcast_empty_is_empty(self):
        c = Condition()
        assert c.broadcast() == []
        assert c.queue_length == 0


class TestRuntimeNaming:
    """Unnamed sync objects are named per-runtime, not per-process."""

    def _first_mutex_name(self):
        runtime = _runtime()
        mutex = Mutex()

        def body():
            yield Acquire(mutex)
            yield Compute(10)
            yield Release(mutex)

        runtime.at_create(body, name="t")
        runtime.run()
        return mutex.name

    def test_fresh_runtimes_restart_the_counter(self):
        # before the per-runtime registry, a class-level counter leaked
        # across runtimes and the second run saw mutex-2
        assert self._first_mutex_name() == "mutex-1"
        assert self._first_mutex_name() == "mutex-1"

    def test_explicit_names_are_kept(self):
        runtime = _runtime()
        mutex = Mutex(name="my-lock")
        runtime.register_sync(mutex)
        assert mutex.name == "my-lock"

    def test_kinds_count_independently(self):
        runtime = _runtime()
        m1, m2, b = Mutex(), Mutex(), Barrier(2)
        for obj in (m1, m2, b):
            runtime.register_sync(obj)
        assert (m1.name, m2.name, b.name) == ("mutex-1", "mutex-2",
                                              "barrier-1")


class TestRuntimeCondition:
    def test_signal_and_broadcast_with_empty_queue_are_noops(self):
        runtime = _runtime()
        mutex = Mutex(name="m")
        cond = Condition(name="c")

        def notifier():
            yield Acquire(mutex)
            yield CondSignal(cond)     # nobody waiting: must not wake,
            yield CondBroadcast(cond)  # must not corrupt, must not block
            yield Release(mutex)
            yield Compute(10)

        runtime.at_create(notifier, name="notifier")
        runtime.run()
        assert all(
            t.state is ThreadState.DONE for t in runtime.threads.values()
        )
        assert cond.queue_length == 0
        assert mutex.owner is None


_STAGGER = st.lists(st.integers(1, 500), min_size=3, max_size=8)


class TestHandoffFuzz:
    """Mutex direct handoff is FIFO in request order under every policy."""

    @staticmethod
    def _contend(staggers, scheduler):
        runtime = _runtime(scheduler)
        mutex = Mutex(name="hot")
        requested, acquired = [], []

        def body(idx, stagger):
            def gen():
                yield Compute(stagger)
                requested.append(idx)
                yield Acquire(mutex)
                acquired.append(idx)
                yield Compute(50)
                yield Release(mutex)

            return gen

        for i, stagger in enumerate(staggers):
            runtime.at_create(body(i, stagger), name=f"c{i}")
        runtime.run(max_events=100_000)
        assert all(
            t.state is ThreadState.DONE for t in runtime.threads.values()
        )
        assert mutex.owner is None and mutex.queue_length == 0
        return requested, acquired

    @given(staggers=_STAGGER)
    @settings(max_examples=20, deadline=None)
    def test_acquisition_follows_request_order(self, staggers):
        for factory in (
            lambda: FCFSScheduler(model_scheduler_memory=False),
            lambda: make_lff(model_scheduler_memory=False),
            lambda: make_crt(model_scheduler_memory=False),
        ):
            requested, acquired = self._contend(staggers, factory())
            assert sorted(acquired) == list(range(len(staggers)))
            # whoever asks first gets the lock first: release hands the
            # mutex directly to the head of the wait queue, so no policy
            # and no stagger pattern can reorder or starve a waiter
            assert acquired == requested
