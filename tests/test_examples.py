"""Smoke tests for the example scripts.

The fast examples run end to end; the long ones (full Table 4 scales)
are imported and checked for a runnable entry point only -- they execute
in the benchmark suite's time budget, not the test suite's.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "mergesort_locality",
        "photo_pipeline",
        "tsp_search",
        "footprint_model",
        "inferred_sharing",
        "custom_policy",
    ],
)
def test_example_has_main(name):
    module = load(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "Locality scheduling" in out
    assert "lff" in out


def test_footprint_model_runs(capsys):
    load("footprint_model").main()
    out = capsys.readouterr().out
    assert "Markov" in out
    assert "stationary mean" in out


def test_custom_policy_scheduler_is_usable():
    """The example's from-scratch policy really schedules threads."""
    module = load("custom_policy")
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.threads.events import Compute, Sleep, Touch
    from repro.threads.runtime import Runtime

    machine = Machine(SMALL)
    runtime = Runtime(machine, module.MissBudgetScheduler())
    region = runtime.alloc_lines("r", 30)

    def body():
        for _ in range(3):
            yield Touch(region.lines())
            yield Sleep(1000)

    runtime.at_create(body)
    runtime.at_create(body)
    runtime.run()
    assert all(not t.alive for t in runtime.threads.values())
