"""Tests for the CML device and runtime sharing inference (section 7)."""

import numpy as np
import pytest

from repro.inference import CMLBuffer, SharingInference
from repro.inference.infer import _Signature
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_lff
from repro.threads.events import Sleep, Touch
from repro.threads.runtime import Runtime


class TestCMLBuffer:
    def test_records_page_of_misses(self, machine):
        device = CMLBuffer(machine.cpus[0], machine.vm.lines_per_page)
        device.set_current_thread(7)
        machine.touch(0, np.arange(machine.vm.lines_per_page + 1))
        records = device.drain()
        assert len(records) == 2  # two pages touched
        assert all(r.tid == 7 for r in records)

    def test_ignores_traffic_with_no_thread(self, machine):
        device = CMLBuffer(machine.cpus[0], machine.vm.lines_per_page)
        machine.touch(0, np.arange(10))
        assert device.drain() == []

    def test_hits_not_recorded(self, machine):
        device = CMLBuffer(machine.cpus[0], machine.vm.lines_per_page)
        device.set_current_thread(1)
        machine.touch(0, np.arange(10))
        device.drain()
        machine.touch(0, np.arange(10))  # all hits now
        assert device.drain() == []

    def test_bounded_capacity_drops_oldest(self, machine):
        device = CMLBuffer(
            machine.cpus[0], machine.vm.lines_per_page, capacity=2
        )
        device.set_current_thread(1)
        lpp = machine.vm.lines_per_page
        machine.touch(0, np.arange(4 * lpp))  # 4 pages -> 2 dropped
        records = device.drain()
        assert len(records) == 2
        assert device.dropped == 2

    def test_drain_clears(self, machine):
        device = CMLBuffer(machine.cpus[0], machine.vm.lines_per_page)
        device.set_current_thread(1)
        machine.touch(0, np.arange(5))
        device.drain()
        assert len(device) == 0

    def test_zero_capacity_rejected(self, machine):
        with pytest.raises(ValueError):
            CMLBuffer(machine.cpus[0], 32, capacity=0)


class TestSignature:
    def test_bounded_lru(self):
        sig = _Signature(max_pages=2)
        sig.add(1)
        sig.add(2)
        sig.add(3)  # evicts 1
        assert sig.pages() == {2, 3}

    def test_touch_refreshes_recency(self):
        sig = _Signature(max_pages=2)
        sig.add(1)
        sig.add(2)
        sig.add(1)  # refresh 1
        sig.add(3)  # evicts 2 (now oldest)
        assert sig.pages() == {1, 3}


def _shared_state_workload(runtime, rounds=10, shared_lines=64,
                           private_lines=64):
    shared = runtime.alloc_lines("shared", shared_lines)
    regions = {
        name: runtime.alloc_lines(f"{name}-priv", private_lines)
        for name in ("a", "b")
    }

    def body(priv):
        def gen():
            for _ in range(rounds):
                yield Touch(np.concatenate([shared.lines(), priv.lines()]))
                yield Sleep(2000)
        return gen

    tid_a = runtime.at_create(body(regions["a"]), name="a")
    tid_b = runtime.at_create(body(regions["b"]), name="b")
    return tid_a, tid_b


class TestSharingInference:
    def test_detects_overlap(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        # probe all four pages per switch so both shared pages re-miss
        inference = SharingInference(runtime, min_q=0.2, probe_pages=4)
        tid_a, tid_b = _shared_state_workload(runtime)
        estimates = []

        class Peek:
            def on_state_declared(self, *a):
                pass

            def on_touch(self, *a):
                pass

            def on_dispatch(self, *a):
                pass

            def on_block(self, cpu, thread, misses, finished):
                estimates.append(inference.estimate(tid_a, tid_b))

        runtime.add_observer(Peek())
        runtime.run()
        assert inference.edges_written > 0
        # half of each thread's pages are shared: q should approach ~0.5
        # (sampling loss keeps the estimate below the true value)
        assert max(estimates) > 0.35

    def test_disjoint_threads_get_no_edges(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        inference = SharingInference(runtime, min_q=0.2)
        for name in ("x", "y"):
            region = runtime.alloc_lines(f"{name}-state", 64)

            def body(region=region):
                for _ in range(8):
                    yield Touch(region.lines())
                    yield Sleep(2000)

            runtime.at_create(body, name=name)
        runtime.run()
        assert inference.edges_written == 0

    def test_probing_can_be_disabled(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        inference = SharingInference(runtime, probe_pages=0)
        _shared_state_workload(runtime, rounds=4)
        runtime.run()
        assert inference.probes == 0

    def test_edges_feed_the_real_graph(self, machine):
        """Inferred coefficients land in runtime.graph mid-run, where the
        locality schemes read them."""
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        inference = SharingInference(runtime, min_q=0.15)
        tid_a, tid_b = _shared_state_workload(runtime)
        seen = []

        class Peek:
            def on_state_declared(self, *a):
                pass

            def on_touch(self, *a):
                pass

            def on_dispatch(self, *a):
                pass

            def on_block(self, cpu, thread, misses, finished):
                seen.append(runtime.graph.coefficient(tid_a, tid_b))

        runtime.add_observer(Peek())
        runtime.run()
        assert max(seen) > 0.0

    def test_finished_threads_forgotten(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        inference = SharingInference(runtime)
        tid_a, tid_b = _shared_state_workload(runtime, rounds=3)
        runtime.run()
        assert inference.signature_size(tid_a) == 0
        assert inference.estimate(tid_a, tid_b) == 0.0

    def test_works_under_locality_scheduler(self, smp):
        runtime = Runtime(smp, make_lff(model_scheduler_memory=False))
        inference = SharingInference(runtime, min_q=0.15)
        _shared_state_workload(runtime, rounds=6)
        runtime.run()  # completes; devices on all 4 cpus
        assert len(inference.devices) == 4

    def test_invalid_params_rejected(self, machine):
        runtime = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))
        with pytest.raises(ValueError):
            SharingInference(runtime, smoothing=0.0)
        with pytest.raises(ValueError):
            SharingInference(runtime, probe_pages=-1)
