"""The cluster backend end to end: parity, retries, degradation.

These tests spawn real worker subprocesses speaking the socket protocol,
so the timing constants are tightened to keep each run under a couple of
seconds; the merged outcomes must still be bit-identical to serial.
"""

import pytest

from repro.parallel import (
    ClusterConfig,
    Shard,
    merged_values,
    run_shards,
)

SQUARE = "tests.parallel.workers:square"
RAISE_ONCE = "tests.parallel.workers:raise_once"
ALWAYS_RAISE = "tests.parallel.workers:always_raise"
SLEEPER = "tests.parallel.workers:sleep_then_value"


def fast_config(**overrides):
    """Test-speed cluster timing (same semantics, smaller constants)."""
    defaults = dict(
        heartbeat_s=0.1,
        liveness_factor=6.0,
        register_timeout_s=15.0,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        tick_s=0.02,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def squares(n):
    return [
        Shard(index=i, key=f"sq/{i}", fn=SQUARE, params={"x": i})
        for i in range(n)
    ]


class TestClusterParity:
    def test_merge_is_bit_identical_to_serial(self):
        serial = run_shards(squares(6))
        clustered = run_shards(
            squares(6), jobs=2, backend="cluster", cluster=fast_config()
        )
        assert merged_values(clustered) == merged_values(serial)
        assert [o.status for o in clustered] == [o.status for o in serial]
        assert [o.shard.index for o in clustered] == list(range(6))

    def test_outcomes_carry_the_executing_node_id(self):
        outcomes = run_shards(
            squares(4), jobs=2, backend="cluster", cluster=fast_config()
        )
        for o in outcomes:
            assert o.node.startswith("node")
            assert o.cached is False

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            run_shards(squares(1), backend="mesh")


class TestClusterRetries:
    def test_raising_shard_is_retried_with_node_attribution(self, tmp_path):
        shards = squares(2) + [
            Shard(index=2, key="r", fn=RAISE_ONCE,
                  params={"flag": str(tmp_path / "flag"), "value": 7})
        ]
        outcomes = run_shards(
            shards, jobs=2, backend="cluster", cluster=fast_config()
        )
        retried = outcomes[2]
        assert retried.ok and retried.value == 7
        assert retried.attempts == 2
        assert len(retried.history) == 1
        # the audit entry names the node the failed attempt ran on
        assert retried.history[0].startswith("[node")
        assert "injected first-attempt failure" in retried.history[0]

    def test_exhausted_shard_fails_cleanly_in_partial_mode(self):
        shards = squares(2) + [
            Shard(index=2, key="bad", fn=ALWAYS_RAISE)
        ]
        outcomes = run_shards(
            shards, jobs=2, retries=1, partial=True,
            backend="cluster", cluster=fast_config(),
        )
        assert [o.ok for o in outcomes] == [True, True, False]
        bad = outcomes[2]
        assert bad.attempts == 2
        assert len(bad.history) == 2
        assert merged_values(outcomes) == [0, 1]


class TestGracefulDegradation:
    def test_no_workers_ever_register_falls_back_to_local(self):
        # workers=0 and nothing external: the coordinator must hand the
        # whole batch back immediately, not wait out a timeout
        outcomes = run_shards(
            squares(4), jobs=2, backend="cluster",
            cluster=fast_config(workers=0, register_timeout_s=30.0),
        )
        assert merged_values(outcomes) == [0, 1, 4, 9]
        assert all(o.node == "local" for o in outcomes)

    def test_degraded_run_still_honours_retries(self, tmp_path):
        shards = [
            Shard(index=0, key="r", fn=RAISE_ONCE,
                  params={"flag": str(tmp_path / "flag"), "value": 5})
        ]
        outcomes = run_shards(
            shards, backend="cluster",
            cluster=fast_config(workers=0),
        )
        assert outcomes[0].ok and outcomes[0].attempts == 2


class TestExternalWorkers:
    def test_worker_cli_attaches_to_an_explicit_port(self):
        # workers=0 + an explicit port is the external-attach mode: the
        # coordinator must wait out register_timeout_s for dial-ins
        # instead of degrading on the first tick (it may only bail
        # immediately when the port is ephemeral -- nobody can know it)
        import socket
        import subprocess
        import sys
        import threading

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        box = {}

        def coordinate():
            box["outcomes"] = run_shards(
                squares(4), jobs=2, backend="cluster",
                cluster=fast_config(
                    workers=0, port=port, register_timeout_s=30.0
                ),
            )

        thread = threading.Thread(target=coordinate)
        thread.start()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.parallel.dispatch.worker",
                "--connect", f"127.0.0.1:{port}",
                "--node-id", "extern0",
            ]
        )
        try:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "coordinator never finished"
        finally:
            proc.wait(timeout=10.0)
        outcomes = box["outcomes"]
        assert merged_values(outcomes) == [0, 1, 4, 9]
        assert all(o.node == "extern0" for o in outcomes)


class TestWorkStealing:
    def test_slow_assignment_is_duplicated_onto_an_idle_node(self, caplog):
        import logging

        # shard 0 sleeps long enough to cross steal_after_s while the
        # other node drains the quick shards and goes idle
        shards = [
            Shard(index=0, key="slow", fn=SLEEPER,
                  params={"seconds": 1.2, "value": 99})
        ] + [
            Shard(index=i, key=f"sq/{i}", fn=SQUARE, params={"x": i})
            for i in range(1, 4)
        ]
        with caplog.at_level(
            logging.INFO, logger="repro.parallel.dispatch"
        ):
            outcomes = run_shards(
                shards, jobs=2, backend="cluster",
                cluster=fast_config(steal_after_s=0.3, max_duplicates=2),
            )
        assert merged_values(outcomes) == [99, 1, 4, 9]
        assert any("stealing" in r.message for r in caplog.records)
        # the first result wins; the discarded duplicate charges nothing
        assert outcomes[0].attempts == 1
