"""Kill workers at seeded points; the merge must never notice.

Each test gives one spawned worker a ``--chaos`` spec (see
``repro.parallel.dispatch.worker``) that kills it with ``os._exit`` at a
reproducible point -- mid-shard, mid-upload, mid-heartbeat -- and then
asserts the run's merged outcomes are bit-identical to a serial run,
with the crash visible only in the audit fields (``worker_crashes``,
``history``).
"""

import pytest

from repro.parallel import (
    ClusterConfig,
    ResultCache,
    Shard,
    merged_values,
    run_shards,
)
from repro.parallel.dispatch.worker import WorkerChaos, parse_chaos

SQUARE = "tests.parallel.workers:square"
COUNT = "tests.parallel.workers:count_calls"
SLEEPER = "tests.parallel.workers:sleep_then_value"


def chaos_config(worker_chaos, **overrides):
    defaults = dict(
        heartbeat_s=0.1,
        liveness_factor=6.0,
        register_timeout_s=15.0,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
        tick_s=0.02,
        max_respawns=4,
        worker_chaos=worker_chaos,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def squares(n):
    return [
        Shard(index=i, key=f"sq/{i}", fn=SQUARE, params={"x": i})
        for i in range(n)
    ]


class TestChaosSpecParsing:
    def test_parses_every_kill_point(self):
        chaos = parse_chaos(
            "die-before-result:2,die-mid-upload:1,die-after-results:3,"
            "die-at-heartbeat:4,freeze-at-heartbeat:5"
        )
        assert chaos == WorkerChaos(
            die_before_result=2,
            die_mid_upload=1,
            die_after_results=3,
            die_at_heartbeat=4,
            freeze_at_heartbeat=5,
        )

    def test_empty_spec_never_fires(self):
        assert parse_chaos("") == WorkerChaos()

    @pytest.mark.parametrize("spec", ["die", "die-before-result", "nope:1"])
    def test_malformed_spec_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_chaos(spec)


class TestKilledWorkers:
    """One worker dies mid-run; values stay bit-identical to serial."""

    def _run_with(self, chaos_spec, n=6):
        # a single worker (plus the respawn budget) pins the chaos
        # point: node0 *must* take the first shard, so the kill always
        # fires instead of racing a sibling that drains the batch first
        serial = run_shards(squares(n))
        chaotic = run_shards(
            squares(n), jobs=2, backend="cluster",
            cluster=chaos_config({"node0": chaos_spec}, workers=1),
        )
        assert merged_values(chaotic) == merged_values(serial)
        assert [o.status for o in chaotic] == ["ok"] * n
        return chaotic

    def test_die_mid_shard_before_the_result(self):
        outcomes = self._run_with("die-before-result:1")
        crashed = [o for o in outcomes if o.worker_crashes]
        assert crashed, "the kill must surface in the audit trail"
        assert any(
            "node0 died" in entry for o in crashed for entry in o.history
        )

    def test_die_mid_result_upload(self):
        # half a frame on the wire: the coordinator must treat the
        # truncated frame as node death, never parse it as a result
        outcomes = self._run_with("die-mid-upload:1")
        crashed = [o for o in outcomes if o.worker_crashes]
        assert crashed
        assert all(o.attempts >= 1 for o in outcomes)

    def test_die_after_delivering_a_result(self):
        # the value arrived; only the node's *later* shards reassign
        outcomes = self._run_with("die-after-results:1")
        delivered = [o for o in outcomes if o.node == "node0"]
        assert len(delivered) == 1
        assert delivered[0].worker_crashes == 0

    def test_die_at_heartbeat(self):
        self._run_with("die-at-heartbeat:1")

    def test_chaos_kill_shorthand_matches_explicit_spec(self):
        serial = run_shards(squares(6))
        killed = run_shards(
            squares(6), jobs=2, backend="cluster",
            cluster=chaos_config({}, chaos_kill=1),
        )
        assert merged_values(killed) == merged_values(serial)


class TestFrozenWorker:
    def test_silent_node_is_evicted_and_its_shard_reassigned(self):
        # node0 stops heartbeating immediately but keeps chewing a long
        # shard; the deadline must evict it and reassign, not wait
        shards = [
            Shard(index=0, key="slow", fn=SLEEPER,
                  params={"seconds": 1.0, "value": 42})
        ] + squares(3)[1:]
        outcomes = run_shards(
            shards, jobs=2, backend="cluster",
            cluster=chaos_config(
                {"node0": "freeze-at-heartbeat:1"},
                workers=1,  # node0 must take the slow shard
                liveness_factor=3.0,  # 0.3s deadline
                shard_timeout_s=60.0,
            ),
        )
        assert outcomes[0].ok and outcomes[0].value == 42
        assert outcomes[0].worker_crashes >= 1
        assert any(
            "missed heartbeat deadline" in entry
            for entry in outcomes[0].history
        )


class TestChaosWithCache:
    def test_warm_rerun_after_a_chaotic_campaign_executes_zero_cells(
        self, tmp_path
    ):
        counter = tmp_path / "executions"
        shards = [
            Shard(index=i, key=f"c/{i}", fn=COUNT,
                  params={"counter": str(counter), "value": i})
            for i in range(6)
        ]
        cold = run_shards(
            shards, jobs=2, backend="cluster",
            cluster=chaos_config({"node0": "die-before-result:1"}),
            cache=ResultCache(str(tmp_path / "cache"), version="v"),
        )
        executed_cold = len(counter.read_text())
        assert executed_cold >= 6  # the killed attempt may add one
        warm = run_shards(
            shards, jobs=2, backend="cluster",
            cluster=chaos_config({}),
            cache=ResultCache(str(tmp_path / "cache"), version="v"),
        )
        assert len(counter.read_text()) == executed_cold  # zero new runs
        assert all(o.cached and o.attempts == 0 for o in warm)
        assert merged_values(warm) == merged_values(cold)


class TestChaoticCampaignParity:
    def test_fault_campaign_rows_survive_a_worker_kill(self):
        from repro.faults import format_campaign, run_campaign

        kwargs = dict(
            scale="smoke",
            workload_names=["randomwalk", "tasks"],
            policies=("fcfs",),
            fault_classes=["counter_noise", "thread_crash"],
            seed=0,
        )
        serial = run_campaign(**kwargs)
        chaotic = run_campaign(
            jobs=2, backend="cluster",
            cluster=chaos_config({"node0": "die-before-result:1"}),
            **kwargs,
        )
        assert format_campaign(chaotic) == format_campaign(serial)
