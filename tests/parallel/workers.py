"""Worker callables for the parallel-engine tests.

Shards name their callables by dotted path, so everything the tests fan
out must be a module-level function in an importable module -- a closure
defined inside a test body has no name a worker process could resolve.

The ``*_once`` helpers coordinate across processes through a flag file
(passed in as a shard parameter): the first call finds no file, records
the attempt, and fails; the retry finds the file and succeeds.
"""

import os
from pathlib import Path

#: deliberately not callable, for resolve_callable's TypeError path
NOT_CALLABLE = 42


def square(x: int) -> int:
    return x * x


def raise_once(flag: str, value: int) -> int:
    """Raise on the first call (per flag file), succeed on the retry."""
    path = Path(flag)
    if not path.exists():
        path.write_text("attempt 1")
        raise RuntimeError("injected first-attempt failure")
    return value


def die_once(flag: str, value: int) -> int:
    """Kill the worker *process* on the first call (no exception, no
    cleanup -- the pool breaks), succeed on the retry.  Never run this
    with ``jobs=1``: inline execution would kill the caller."""
    path = Path(flag)
    if not path.exists():
        path.write_text("attempt 1")
        os._exit(17)
    return value


def always_raise() -> None:
    raise ValueError("boom")


def sleep_then_value(seconds: float, value: int) -> int:
    """Hold the worker busy for host ``seconds`` then return.

    Cluster tests only (steal/eviction timing): simulation shards never
    sleep host time -- their budgets are simulated steps.
    """
    import time

    time.sleep(seconds)
    return value


def count_calls(counter: str, value: int) -> int:
    """Append one byte to ``counter`` per execution, then return.

    The cache tests read the file's size to prove a warm re-run
    executed zero cells (append mode is atomic enough across the
    processes these tests spawn).
    """
    with open(counter, "a") as fh:
        fh.write("x")
    return value
