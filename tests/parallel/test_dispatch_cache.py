"""The content-addressed result cache: fingerprints and resumability."""

import pickle

import pytest

from repro.parallel import ResultCache, Shard, run_shards
from repro.parallel.dispatch.cache import (
    canonical_params,
    code_version,
    shard_fingerprint,
)

SQUARE = "tests.parallel.workers:square"
COUNT = "tests.parallel.workers:count_calls"


def _shard(index=0, key="s", fn=SQUARE, **params):
    return Shard(index=index, key=key, fn=fn, params=params)


class TestCanonicalEncoding:
    def test_dict_insertion_order_does_not_matter(self):
        a = Shard(index=0, key="a", fn=SQUARE, params={"x": 1, "y": 2})
        b = Shard(index=0, key="a", fn=SQUARE, params={"y": 2, "x": 1})
        assert canonical_params(a) == canonical_params(b)

    def test_set_order_does_not_matter(self):
        a = _shard(tags={"x", "y", "z"})
        b = _shard(tags={"z", "y", "x"})
        assert canonical_params(a) == canonical_params(b)

    def test_different_values_differ(self):
        assert canonical_params(_shard(x=1)) != canonical_params(_shard(x=2))

    def test_type_is_part_of_the_encoding(self):
        # 1 and True compare equal in Python; their results may differ
        assert canonical_params(_shard(x=1)) != canonical_params(
            _shard(x=True)
        )

    def test_nested_containers_encode_deterministically(self):
        params = {"cfg": {"b": [1, 2], "a": (3, {"k"})}, "n": 5}
        a = Shard(index=0, key="a", fn=SQUARE, params=params)
        b = Shard(index=0, key="a", fn=SQUARE, params=dict(params))
        assert canonical_params(a) == canonical_params(b)


class TestFingerprint:
    def test_depends_on_fn_params_and_version(self):
        base = shard_fingerprint(_shard(x=1), version="v1")
        assert shard_fingerprint(_shard(x=2), version="v1") != base
        assert (
            shard_fingerprint(_shard(x=1, fn=COUNT), version="v1") != base
        )
        assert shard_fingerprint(_shard(x=1), version="v2") != base

    def test_index_and_key_are_not_part_of_the_address(self):
        # the same cell at a different position in a later campaign must
        # still hit
        a = Shard(index=0, key="first", fn=SQUARE, params={"x": 1})
        b = Shard(index=9, key="other", fn=SQUARE, params={"x": 1})
        assert shard_fingerprint(a, "v") == shard_fingerprint(b, "v")

    def test_code_version_tracks_source_changes(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("A = 1\n")
        before = code_version(str(pkg))
        assert code_version(str(pkg)) == before
        (pkg / "mod.py").write_text("A = 2\n")
        assert code_version(str(pkg)) != before


class TestResultCache:
    def test_store_then_lookup(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v")
        shard = _shard(x=3)
        assert cache.lookup(shard) == (False, None)
        cache.store(shard, 9)
        assert cache.lookup(shard) == (True, 9)
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupt_entry_is_a_miss_not_a_failure(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v")
        shard = _shard(x=3)
        cache.store(shard, 9)
        path = cache._path(shard_fingerprint(shard, "v"))
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage")
        assert cache.lookup(shard) == (False, None)

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v")
        shard = _shard(x=3)
        cache.store(shard, {"big": list(range(100))})
        path = cache._path(shard_fingerprint(shard, "v"))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.lookup(shard)[0] is False

    def test_version_change_invalidates(self, tmp_path):
        old = ResultCache(str(tmp_path), version="v1")
        old.store(_shard(x=3), 9)
        new = ResultCache(str(tmp_path), version="v2")
        assert new.lookup(_shard(x=3)) == (False, None)

    def test_unwritable_root_degrades_to_no_op(self, tmp_path):
        missing = tmp_path / "file-not-dir"
        missing.write_text("in the way")
        cache = ResultCache(str(missing), version="v")
        cache.store(_shard(x=3), 9)  # must not raise
        assert cache.stores == 0

    def test_no_entry_is_ever_half_written(self, tmp_path):
        # whatever is on disk must unpickle completely or be absent
        cache = ResultCache(str(tmp_path), version="v")
        cache.store(_shard(x=3), list(range(1000)))
        for path in tmp_path.rglob("*.pkl"):
            with open(path, "rb") as fh:
                pickle.load(fh)
        assert not list(tmp_path.rglob("*.tmp"))


class TestRunShardsWithCache:
    def _counting_shards(self, tmp_path, n=4):
        counter = tmp_path / "executions"
        return counter, [
            Shard(index=i, key=f"c/{i}", fn=COUNT,
                  params={"counter": str(counter), "value": i * 10})
            for i in range(n)
        ]

    def test_cold_run_executes_and_stores(self, tmp_path):
        counter, shards = self._counting_shards(tmp_path)
        cache = ResultCache(str(tmp_path / "cache"), version="v")
        outcomes = run_shards(shards, cache=cache)
        assert [o.value for o in outcomes] == [0, 10, 20, 30]
        assert counter.read_text() == "xxxx"
        assert cache.stores == 4
        assert all(not o.cached for o in outcomes)

    def test_warm_run_executes_zero_cells(self, tmp_path):
        counter, shards = self._counting_shards(tmp_path)
        cache = ResultCache(str(tmp_path / "cache"), version="v")
        cold = run_shards(shards, cache=cache)
        warm = run_shards(shards, cache=ResultCache(
            str(tmp_path / "cache"), version="v"
        ))
        assert counter.read_text() == "xxxx"  # no new executions
        assert [o.value for o in warm] == [o.value for o in cold]
        for o in warm:
            assert o.cached is True
            assert o.attempts == 0
            assert o.node == "cache"
            assert o.history == ()

    def test_partially_warm_run_executes_only_the_missing_cells(
        self, tmp_path
    ):
        counter, shards = self._counting_shards(tmp_path)
        cache = ResultCache(str(tmp_path / "cache"), version="v")
        run_shards(shards[:2], cache=cache)
        outcomes = run_shards(shards, cache=ResultCache(
            str(tmp_path / "cache"), version="v"
        ))
        assert counter.read_text() == "xxxx"  # 2 cold + 2 resumed
        assert [o.cached for o in outcomes] == [True, True, False, False]
        assert [o.value for o in outcomes] == [0, 10, 20, 30]

    def test_failed_shards_are_not_cached(self, tmp_path):
        bad = Shard(index=0, key="bad",
                    fn="tests.parallel.workers:always_raise")
        cache = ResultCache(str(tmp_path / "cache"), version="v")
        first = run_shards([bad], retries=0, partial=True, cache=cache)
        assert not first[0].ok and cache.stores == 0
        again = run_shards([bad], retries=0, partial=True, cache=ResultCache(
            str(tmp_path / "cache"), version="v"
        ))
        assert not again[0].cached  # failures must re-execute

    def test_progress_counts_cached_shards(self, tmp_path):
        counter, shards = self._counting_shards(tmp_path)
        cache = ResultCache(str(tmp_path / "cache"), version="v")
        run_shards(shards, cache=cache)
        seen = []
        run_shards(
            shards,
            cache=ResultCache(str(tmp_path / "cache"), version="v"),
            progress=lambda o, done, total: seen.append(
                (o.shard.index, done, total, o.cached)
            ),
        )
        assert seen == [(0, 1, 4, True), (1, 2, 4, True),
                        (2, 3, 4, True), (3, 4, 4, True)]
