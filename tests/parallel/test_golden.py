"""Serial-vs-parallel golden tests.

The determinism contract of :mod:`repro.parallel` is that ``jobs > 1``
produces **bit-identical** output to ``jobs=1`` at every fan-out site.
These tests run each site both ways on small inputs and compare the
merged results exactly -- the campaign via its row fields and formatted
table (the rows embed :func:`~repro.sim.driver.workload_signature`
verdicts, so "identical rows" means "identical signatures"), the model
checker via its result/diagnostic dataclasses, the offline experiment
via its metrics dict.
"""

from repro.analysis.mc.explorer import SMALL_BUDGET, explore_all
from repro.experiments.offline import run_offline_comparison
from repro.faults import format_campaign, run_campaign


def _row_fields(row):
    """Everything reported about a cell except the embedded result
    object (process-local, deliberately excluded from the contract)."""
    return (
        row.workload,
        row.policy,
        row.fault_class,
        row.outcome,
        row.ok,
        row.slowdown,
        row.attempts,
        row.detail,
    )


class TestCampaignGolden:
    def test_jobs4_campaign_is_bit_identical_to_serial(self):
        kwargs = dict(
            scale="smoke",
            workload_names=("randomwalk",),
            policies=("fcfs", "lff"),
            fault_classes=["annotation_chaos", "counter_wrap"],
        )
        serial = run_campaign(jobs=1, **kwargs)
        pooled = run_campaign(jobs=4, **kwargs)
        assert [_row_fields(r) for r in pooled] == [
            _row_fields(r) for r in serial
        ]
        assert format_campaign(pooled) == format_campaign(serial)
        assert all(r.ok for r in serial)


class TestModelCheckerGolden:
    def test_jobs2_exploration_is_bit_identical_to_serial(self):
        serial_results, serial_diags = explore_all(SMALL_BUDGET, jobs=1)
        pooled_results, pooled_diags = explore_all(SMALL_BUDGET, jobs=2)
        assert pooled_results == serial_results
        assert pooled_diags == serial_diags


class TestOfflineGolden:
    def test_jobs2_offline_experiment_is_bit_identical_to_serial(self):
        serial = run_offline_comparison(apps=("merge", "barnes"), jobs=1)
        pooled = run_offline_comparison(apps=("merge", "barnes"), jobs=2)
        assert pooled == serial
        assert list(pooled) == ["merge", "barnes"]
