"""The dispatch wire format: frames, payloads, and failure modes."""

import socket
import struct

import pytest

from repro.parallel.dispatch.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_payload,
    pack_frame,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    for sock in (left, right):
        try:
            sock.close()
        except OSError:
            pass


class TestFrames:
    def test_send_recv_roundtrip(self, pair):
        left, right = pair
        message = {"type": "assign", "seq": 7, "key": "faults/merge/lff"}
        send_frame(left, message)
        assert recv_frame(right) == message

    def test_frames_do_not_bleed_into_each_other(self, pair):
        left, right = pair
        send_frame(left, {"type": "heartbeat", "node": "a"})
        send_frame(left, {"type": "heartbeat", "node": "b"})
        assert recv_frame(right)["node"] == "a"
        assert recv_frame(right)["node"] == "b"

    def test_clean_eof_between_frames_is_none(self, pair):
        left, right = pair
        send_frame(left, {"type": "shutdown"})
        left.close()
        assert recv_frame(right) == {"type": "shutdown"}
        assert recv_frame(right) is None

    def test_eof_mid_frame_is_protocol_error(self, pair):
        left, right = pair
        blob = pack_frame({"type": "result", "seq": 1, "payload": "x" * 64})
        left.sendall(blob[: len(blob) // 2])
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_eof_after_length_prefix_is_protocol_error(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 10))
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_corrupt_length_prefix_is_rejected_not_allocated(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_non_json_body_is_protocol_error(self, pair):
        left, right = pair
        body = b"\xff\xfenot json"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)

    @pytest.mark.parametrize("body", [b"[1, 2]", b'"text"', b'{"seq": 1}'])
    def test_envelope_must_be_object_with_type(self, pair, body):
        left, right = pair
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)

    def test_oversized_outbound_frame_is_refused(self):
        with pytest.raises(ProtocolError):
            pack_frame({"type": "x", "pad": "y" * (MAX_FRAME_BYTES + 1)})


class TestPayloads:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            {"nested": [1, 2, {"k": (3, 4)}]},
            {"seed": 0, "config": frozenset({"a", "b"})},
        ],
    )
    def test_roundtrip(self, value):
        assert decode_payload(encode_payload(value)) == value

    def test_payload_travels_inside_a_json_envelope(self, pair):
        left, right = pair
        params = {"x": 3, "weights": [0.5, 0.25]}
        send_frame(left, {"type": "assign", "payload": encode_payload(params)})
        message = recv_frame(right)
        assert decode_payload(message["payload"]) == params
