"""Node registry liveness and the retry backoff, on a fake clock."""

import pytest

from repro.parallel.dispatch.backoff import DecorrelatedJitter
from repro.parallel.dispatch.registry import NodeRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _conn():
    """Registry tests never touch the socket; any object will do."""
    return object()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    # heartbeat 1s, deadline 4s
    return NodeRegistry(heartbeat_s=1.0, liveness_factor=4.0, clock=clock)


class TestMembership:
    def test_register_and_contains(self, registry):
        registry.register("node0", _conn(), pid=100)
        assert "node0" in registry
        assert len(registry) == 1

    def test_duplicate_live_id_is_rejected(self, registry):
        registry.register("node0", _conn())
        with pytest.raises(ValueError):
            registry.register("node0", _conn())

    def test_evict_records_the_reason(self, registry):
        registry.register("node0", _conn())
        state = registry.evict("node0", "missed heartbeat deadline")
        assert state is not None and state.node_id == "node0"
        assert "node0" not in registry
        assert registry.departed["node0"] == "missed heartbeat deadline"

    def test_evicting_an_unknown_node_is_a_noop(self, registry):
        assert registry.evict("ghost", "whatever") is None
        assert "ghost" not in registry.departed

    def test_id_can_reregister_after_eviction(self, registry):
        registry.register("node0", _conn())
        registry.evict("node0", "died")
        registry.register("node0", _conn())
        assert "node0" in registry

    def test_bad_config_rejected(self, clock):
        with pytest.raises(ValueError):
            NodeRegistry(heartbeat_s=0.0, clock=clock)
        with pytest.raises(ValueError):
            NodeRegistry(heartbeat_s=1.0, liveness_factor=0.5, clock=clock)


class TestLiveness:
    def test_fresh_node_is_not_expired(self, registry, clock):
        registry.register("node0", _conn())
        clock.advance(3.9)
        assert registry.expired() == []

    def test_silent_node_expires_past_the_deadline(self, registry, clock):
        registry.register("node0", _conn())
        clock.advance(4.1)
        assert [s.node_id for s in registry.expired()] == ["node0"]

    def test_heartbeat_extends_the_deadline(self, registry, clock):
        registry.register("node0", _conn())
        clock.advance(3.0)
        assert registry.heard_from("node0")
        clock.advance(3.0)  # 6s after register, 3s after the beat
        assert registry.expired() == []

    def test_heard_from_unknown_node_is_false(self, registry):
        assert not registry.heard_from("ghost")

    def test_expired_is_sorted_by_id(self, registry, clock):
        for node_id in ("b", "a", "c"):
            registry.register(node_id, _conn())
        clock.advance(10.0)
        assert [s.node_id for s in registry.expired()] == ["a", "b", "c"]


class TestOrderedViews:
    def test_sorted_nodes_ignores_registration_order(self, registry):
        for node_id in ("z", "m", "a"):
            registry.register(node_id, _conn())
        assert [s.node_id for s in registry.sorted_nodes()] == ["a", "m", "z"]

    def test_idle_nodes_skips_busy_ones(self, registry):
        for node_id in ("a", "b", "c"):
            registry.register(node_id, _conn())
        registry.nodes["b"].outstanding.append(17)
        assert [s.node_id for s in registry.idle_nodes()] == ["a", "c"]
        registry.nodes["b"].outstanding.clear()
        assert [s.node_id for s in registry.idle_nodes()] == ["a", "b", "c"]


class TestDecorrelatedJitter:
    def test_delays_stay_within_base_and_cap(self):
        backoff = DecorrelatedJitter(0.1, 2.0, seed=1)
        delays = [backoff.next_delay(0) for _ in range(50)]
        assert all(0.1 <= d <= 2.0 for d in delays)

    def test_same_seed_reproduces_the_timeline(self):
        a = DecorrelatedJitter(0.05, 1.0, seed=7)
        b = DecorrelatedJitter(0.05, 1.0, seed=7)
        assert [a.next_delay(3) for _ in range(10)] == [
            b.next_delay(3) for _ in range(10)
        ]

    def test_delays_grow_toward_the_cap(self):
        backoff = DecorrelatedJitter(0.1, 10.0, seed=0)
        delays = [backoff.next_delay(0) for _ in range(40)]
        # decorrelated jitter is noisy, but the tail must sit well above
        # the first draw's ceiling
        assert max(delays[10:]) > 3 * delays[0]

    def test_reset_starts_the_shard_over(self):
        backoff = DecorrelatedJitter(0.1, 10.0, seed=0)
        for _ in range(10):
            backoff.next_delay(5)
        backoff.reset(5)
        # after reset the next draw is from the initial [base, 3*base]
        assert backoff.next_delay(5) <= 0.3

    def test_shards_have_independent_state(self):
        backoff = DecorrelatedJitter(0.1, 10.0, seed=0)
        for _ in range(10):
            backoff.next_delay(1)
        # shard 2 never failed before: its first draw is an initial draw
        assert backoff.next_delay(2) <= 0.3

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            DecorrelatedJitter(0.0, 1.0)
        with pytest.raises(ValueError):
            DecorrelatedJitter(1.0, 0.5)
