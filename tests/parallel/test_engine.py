"""Unit tests for the :mod:`repro.parallel` execution engine."""

import pytest

from repro.parallel import (
    Shard,
    ShardError,
    merged_values,
    resolve_callable,
    run_shards,
)

SQUARE = "tests.parallel.workers:square"
RAISE_ONCE = "tests.parallel.workers:raise_once"
DIE_ONCE = "tests.parallel.workers:die_once"
ALWAYS_RAISE = "tests.parallel.workers:always_raise"


def squares(n):
    return [
        Shard(index=i, key=f"sq/{i}", fn=SQUARE, params={"x": i})
        for i in range(n)
    ]


class TestResolveCallable:
    def test_resolves_by_dotted_path(self):
        assert resolve_callable(SQUARE)(x=3) == 9

    @pytest.mark.parametrize("path", ["square", "tests.parallel.workers:",
                                      ":square", "no.colon.here"])
    def test_malformed_path_rejected(self, path):
        with pytest.raises(ValueError):
            resolve_callable(path)

    def test_non_callable_target_rejected(self):
        with pytest.raises(TypeError):
            resolve_callable("tests.parallel.workers:NOT_CALLABLE")

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            resolve_callable("tests.parallel.workers:nope")


class TestValidation:
    def test_duplicate_index_rejected(self):
        shards = [
            Shard(index=0, key="a", fn=SQUARE, params={"x": 1}),
            Shard(index=0, key="b", fn=SQUARE, params={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate shard index"):
            run_shards(shards)

    def test_duplicate_key_rejected(self):
        shards = [
            Shard(index=0, key="a", fn=SQUARE, params={"x": 1}),
            Shard(index=1, key="a", fn=SQUARE, params={"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate shard key"):
            run_shards(shards)

    def test_jobs_and_retries_bounds(self):
        with pytest.raises(ValueError):
            run_shards(squares(2), jobs=0)
        with pytest.raises(ValueError):
            run_shards(squares(2), retries=-1)


class TestSerial:
    def test_outcomes_sorted_by_index_regardless_of_input_order(self):
        shards = squares(5)
        outcomes = run_shards(list(reversed(shards)), jobs=1)
        assert [o.shard.index for o in outcomes] == [0, 1, 2, 3, 4]
        assert merged_values(outcomes) == [0, 1, 4, 9, 16]

    def test_clean_run_is_single_attempt(self):
        (outcome,) = run_shards(squares(1), jobs=1)
        assert outcome.ok
        assert outcome.attempts == 1
        assert outcome.worker_crashes == 0

    def test_raising_shard_retried_once_then_succeeds(self, tmp_path):
        flag = str(tmp_path / "flag")
        shard = Shard(index=0, key="r", fn=RAISE_ONCE,
                      params={"flag": flag, "value": 7})
        (outcome,) = run_shards([shard], jobs=1)
        assert outcome.ok
        assert outcome.value == 7
        assert outcome.attempts == 2

    def test_exhausted_retries_raise_shard_error(self):
        shard = Shard(index=0, key="bad", fn=ALWAYS_RAISE)
        with pytest.raises(ShardError) as excinfo:
            run_shards([shard], jobs=1, retries=1)
        err = excinfo.value
        assert len(err.failed) == 1
        assert err.failed[0].attempts == 2
        assert "ValueError: boom" in err.failed[0].error

    def test_partial_mode_returns_failed_outcomes(self):
        shards = squares(2) + [
            Shard(index=2, key="bad", fn=ALWAYS_RAISE)
        ]
        outcomes = run_shards(shards, jobs=1, retries=0, partial=True)
        assert [o.ok for o in outcomes] == [True, True, False]
        assert merged_values(outcomes) == [0, 1]

    def test_progress_reports_every_shard(self):
        seen = []
        run_shards(
            squares(3), jobs=1,
            progress=lambda o, done, total: seen.append(
                (o.shard.key, done, total)
            ),
        )
        assert seen == [("sq/0", 1, 3), ("sq/1", 2, 3), ("sq/2", 3, 3)]


class TestPool:
    def test_pool_matches_serial_bit_for_bit(self):
        serial = run_shards(squares(8), jobs=1)
        pooled = run_shards(squares(8), jobs=4)
        assert merged_values(pooled) == merged_values(serial)
        assert [o.shard.key for o in pooled] == [o.shard.key for o in serial]

    def test_raising_shard_retried_in_pool(self, tmp_path):
        flag = str(tmp_path / "flag")
        shards = squares(3) + [
            Shard(index=3, key="r", fn=RAISE_ONCE,
                  params={"flag": flag, "value": 7})
        ]
        outcomes = run_shards(shards, jobs=2)
        assert all(o.ok for o in outcomes)
        assert merged_values(outcomes) == [0, 1, 4, 7]
        assert outcomes[3].attempts == 2

    def test_killed_worker_breaks_pool_and_shard_is_retried(self, tmp_path):
        flag = str(tmp_path / "flag")
        shards = squares(3) + [
            Shard(index=3, key="die", fn=DIE_ONCE,
                  params={"flag": flag, "value": 9})
        ]
        outcomes = run_shards(shards, jobs=2)
        assert all(o.ok for o in outcomes)
        assert merged_values(outcomes) == [0, 1, 4, 9]
        # the killer itself must have been charged a crash; innocent
        # bystanders may or may not have been (the pool cannot attribute
        # the death), but every shard still produced its value
        assert outcomes[3].worker_crashes >= 1
        assert outcomes[3].attempts >= 2

    def test_pool_partial_mode_isolates_the_failure(self):
        shards = squares(3) + [
            Shard(index=3, key="bad", fn=ALWAYS_RAISE)
        ]
        outcomes = run_shards(shards, jobs=2, retries=0, partial=True)
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert merged_values(outcomes) == [0, 1, 4]

    def test_pool_failure_raises_shard_error_when_not_partial(self):
        shards = [Shard(index=0, key="bad", fn=ALWAYS_RAISE)] + [
            Shard(index=1, key="ok", fn=SQUARE, params={"x": 5})
        ]
        with pytest.raises(ShardError) as excinfo:
            run_shards(shards, jobs=2, retries=0)
        assert [o.ok for o in excinfo.value.outcomes] == [False, True]

    def test_pool_progress_covers_all_shards(self):
        seen = []
        run_shards(
            squares(5), jobs=2,
            progress=lambda o, done, total: seen.append((done, total)),
        )
        assert len(seen) == 5
        assert seen[-1] == (5, 5)


class TestProgressIsolation:
    """A bad progress observer must never abort or skew a run."""

    def test_raising_callback_does_not_abort_the_run(self):
        def bad_progress(outcome, done, total):
            raise RuntimeError("observer bug")

        outcomes = run_shards(squares(4), progress=bad_progress)
        assert [o.ok for o in outcomes] == [True] * 4
        assert merged_values(outcomes) == [0, 1, 4, 9]

    def test_callback_fault_is_logged_once_but_still_invoked(self, caplog):
        import logging

        calls = []

        def flaky_progress(outcome, done, total):
            calls.append(done)
            raise RuntimeError("observer bug")

        with caplog.at_level(logging.ERROR, logger="repro.parallel"):
            run_shards(squares(4), progress=flaky_progress)
        # every shard still reached the callback ...
        assert calls == [1, 2, 3, 4]
        # ... but the fault was logged exactly once
        faults = [
            r for r in caplog.records if "progress callback" in r.message
        ]
        assert len(faults) == 1

    def test_callback_fault_does_not_skew_outcomes(self, tmp_path):
        # a raising observer alongside a retried shard: attempt counts
        # and values match the observer-free run exactly
        def shards():
            return [
                Shard(index=0, key="r", fn=RAISE_ONCE,
                      params={"flag": str(tmp_path / "flag"), "value": 7})
            ] + [
                Shard(index=i, key=f"sq/{i}", fn=SQUARE, params={"x": i})
                for i in range(1, 4)
            ]

        noisy = run_shards(
            shards(), progress=lambda *a: (_ for _ in ()).throw(ValueError())
        )
        (tmp_path / "flag").unlink()
        quiet = run_shards(shards())
        assert [o.value for o in noisy] == [o.value for o in quiet]
        assert [o.attempts for o in noisy] == [o.attempts for o in quiet]


class TestAttemptAudit:
    """Satellite 2: per-attempt history and provenance on outcomes."""

    def test_clean_run_has_empty_history_and_local_node(self):
        outcomes = run_shards(squares(2))
        for o in outcomes:
            assert o.history == ()
            assert o.node == "local"
            assert o.cached is False

    def test_retried_shard_records_each_failed_attempt(self, tmp_path):
        shard = Shard(index=0, key="r", fn=RAISE_ONCE,
                      params={"flag": str(tmp_path / "flag"), "value": 3})
        (outcome,) = run_shards([shard])
        assert outcome.ok and outcome.attempts == 2
        assert len(outcome.history) == 1
        assert "injected first-attempt failure" in outcome.history[0]

    def test_exhausted_shard_history_covers_every_attempt(self):
        shard = Shard(index=0, key="bad", fn=ALWAYS_RAISE)
        (outcome,) = run_shards([shard], retries=2, partial=True)
        assert not outcome.ok
        assert outcome.attempts == 3
        assert len(outcome.history) == 3
        assert all("boom" in entry for entry in outcome.history)

    def test_pool_crash_appears_in_history(self, tmp_path):
        shards = squares(3) + [
            Shard(index=3, key="die", fn=DIE_ONCE,
                  params={"flag": str(tmp_path / "flag"), "value": 9})
        ]
        outcomes = run_shards(shards, jobs=2)
        assert outcomes[3].ok and outcomes[3].worker_crashes >= 1
        assert any(
            "worker process died" in entry for entry in outcomes[3].history
        )

    def test_shard_error_detail_includes_attempts_and_history(self):
        shard = Shard(index=0, key="bad", fn=ALWAYS_RAISE)
        with pytest.raises(ShardError) as excinfo:
            run_shards([shard], retries=1)
        text = str(excinfo.value)
        assert "attempt 2" in text
        assert "earlier:" in text
