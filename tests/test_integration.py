"""End-to-end integration tests: the paper's headline effects, in miniature."""

from dataclasses import replace

import numpy as np
import pytest

from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched.fcfs import FCFSScheduler
from repro.sched.locality import make_crt, make_lff
from repro.sim.driver import run_performance
from repro.sim.tracer import FootprintTracer
from repro.threads.events import Compute, Join, Sleep, Touch
from repro.threads.runtime import Runtime
from repro.workloads import TasksParams, TasksWorkload


def tasks_result(scheduler, config=SMALL, seed=0):
    return run_performance(
        TasksWorkload(TasksParams(num_tasks=24, footprint_lines=40, periods=8)),
        config,
        scheduler,
        seed=seed,
    )


class TestHeadlineEffects:
    def test_locality_policies_beat_fcfs_on_tasks(self):
        """The paper's core result: with footprints exceeding the cache,
        LFF and CRT eliminate most E-cache misses and run faster."""
        base = tasks_result(FCFSScheduler())
        lff = tasks_result(make_lff())
        crt = tasks_result(make_crt())
        assert lff.misses_eliminated_vs(base) > 0.5
        assert crt.misses_eliminated_vs(base) > 0.5
        assert lff.speedup_vs(base) > 1.15
        assert crt.speedup_vs(base) > 1.15

    def test_lff_and_crt_are_similar(self):
        """'the two locality policies demonstrate quite similar
        performance' (section 5)."""
        lff = tasks_result(make_lff())
        crt = tasks_result(make_crt())
        assert abs(lff.l2_misses - crt.l2_misses) < 0.3 * lff.l2_misses

    def test_smp_gains(self, smp_config):
        base = tasks_result(FCFSScheduler(), config=smp_config)
        lff = tasks_result(make_lff(), config=smp_config)
        # four small caches hold most of the working set, so the margin is
        # smaller than on one cpu -- but still clearly positive
        assert lff.misses_eliminated_vs(base) > 0.15

    def test_annotation_driven_gain(self, small_config):
        """Parent-child sharing: with annotations, the parent resumes on
        the cpu (and cache state) its children built."""

        def run(annotate, scheduler_factory):
            machine = Machine(small_config, seed=5)
            rt = Runtime(machine, scheduler_factory())
            parent_region = machine.address_space.allocate_lines("p", 120)

            def child(lo, hi):
                def gen():
                    yield Touch(parent_region.lines()[lo:hi])
                    yield Compute(200)
                return gen

            def evictor():
                region = machine.address_space.allocate_lines("e", 200)

                def gen():
                    for _ in range(3):
                        yield Touch(region.lines())
                        yield Sleep(300)
                return gen

            def parent():
                kids = [
                    rt.at_create(child(i * 40, (i + 1) * 40)) for i in range(3)
                ]
                if annotate:
                    for kid in kids:
                        rt.at_share(kid, rt.at_self(), 1.0)
                rt.at_create(evictor())
                for kid in kids:
                    yield Join(kid)
                yield Touch(parent_region.lines())

            rt.at_create(parent)
            rt.run()
            return machine.total_l2_misses()

        annotated = run(True, lambda: make_lff(threshold_lines=8,
                                               model_scheduler_memory=False))
        assert annotated > 0  # smoke: the path executes end to end


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        a = tasks_result(make_lff(), seed=11)
        b = tasks_result(make_lff(), seed=11)
        assert a.l2_misses == b.l2_misses
        assert a.cycles == b.cycles
        assert a.context_switches == b.context_switches

    def test_different_seeds_may_differ_but_complete(self):
        a = tasks_result(make_lff(), seed=1)
        b = tasks_result(make_lff(), seed=2)
        assert a.context_switches == b.context_switches  # same structure


class TestTracerSchedulerSeparation:
    def test_scheduler_estimates_track_tracer_observations(self, small_config):
        """The scheduler's model-based footprints and the tracer's ground
        truth must agree in *order* for disjoint threads (the estimates
        are what make LFF work)."""
        machine = Machine(small_config, seed=3)
        scheduler = make_lff(threshold_lines=4, model_scheduler_memory=False)
        rt = Runtime(machine, scheduler)
        tracer = FootprintTracer(machine)
        rt.add_observer(tracer)
        regions = {}

        def body(i):
            region = machine.address_space.allocate_lines(f"r{i}", 20 * (i + 1))
            regions[i + 1] = region

            def gen():
                yield Touch(region.lines())
                yield Sleep(10_000)
                yield Compute(10)
            return gen

        tids = [rt.at_create(body(i)) for i in range(3)]
        for i, tid in enumerate(tids):
            rt.declare_state(tid, [regions[i + 1]])

        snapshots = {}

        class Snapshot:
            def on_state_declared(self, *a):
                pass

            def on_touch(self, *a):
                pass

            def on_dispatch(self, *a):
                pass

            def on_block(self, cpu, thread, misses, finished):
                if len(snapshots) < 3 and not finished:
                    # first sleep of each thread: estimates are live
                    snapshots[thread.tid] = [
                        scheduler.scheme.current_footprint(0, t) for t in tids
                    ]

        rt.add_observer(Snapshot())
        rt.run()
        est = snapshots[tids[2]]  # taken right as the last thread sleeps
        # footprints of disjoint threads: larger region => larger estimate
        assert est[0] < est[1] < est[2]


class TestGraphLifecycle:
    def test_annotations_cleaned_up_at_thread_exit(self, machine):
        rt = Runtime(machine, FCFSScheduler(model_scheduler_memory=False))

        def child():
            yield Compute(10)

        def parent():
            kid = rt.at_create(child)
            rt.at_share(kid, rt.at_self(), 1.0)
            yield Join(kid)

        rt.at_create(parent)
        rt.run()
        assert rt.graph.num_edges() == 0


class TestCycleAccountingSanity:
    def test_cycles_scale_with_misses(self, small_config):
        """More misses must mean more cycles, all else equal."""
        cold = tasks_result(FCFSScheduler(model_scheduler_memory=False))
        warm = tasks_result(make_lff(model_scheduler_memory=False))
        assert cold.l2_misses > warm.l2_misses
        assert cold.cycles > warm.cycles

    def test_instructions_independent_of_policy(self):
        """Policies change placement, not the program: instruction counts
        stay within scheduler-overhead distance of each other."""
        base = tasks_result(FCFSScheduler(model_scheduler_memory=False))
        lff = tasks_result(make_lff(model_scheduler_memory=False))
        assert abs(base.instructions - lff.instructions) < 0.1 * base.instructions
