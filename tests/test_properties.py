"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.markov import expected_footprint_markov
from repro.core.model import SharedStateModel
from repro.core.priorities import CRTScheme, LFFScheme, PrecomputedTables
from repro.core.sharing import SharingGraph
from repro.machine.cache import DirectMappedCache, SetAssociativeCache, _net_effect


# -- the analytical model -----------------------------------------------------


@given(
    n_lines=st.integers(2, 512),
    s0=st.floats(0, 1, exclude_max=False),
    q=st.floats(0, 1),
    misses=st.integers(0, 5000),
)
def test_model_footprints_stay_in_bounds(n_lines, s0, q, misses):
    model = SharedStateModel(n_lines)
    initial = s0 * n_lines
    value = model.expected_dependent(initial, q, misses)
    assert -1e-9 <= value <= n_lines + 1e-9


@given(
    n_lines=st.integers(2, 256),
    s0=st.floats(0, 1),
    q=st.floats(0, 1),
    n1=st.integers(0, 1000),
    n2=st.integers(0, 1000),
)
def test_model_is_a_semigroup_in_misses(n_lines, s0, q, n1, n2):
    """Applying n1 then n2 misses equals applying n1+n2 at once (the
    closed form composes)."""
    model = SharedStateModel(n_lines)
    initial = s0 * n_lines
    step = model.expected_dependent(
        model.expected_dependent(initial, q, n1), q, n2
    )
    joint = model.expected_dependent(initial, q, n1 + n2)
    assert step == pytest.approx(joint, rel=1e-9, abs=1e-9)


@given(
    n_lines=st.integers(2, 40),
    q=st.floats(0, 1),
    s0=st.integers(0, 40),
    misses=st.integers(0, 60),
)
@settings(max_examples=40, deadline=None)
def test_markov_chain_matches_closed_form(n_lines, q, s0, misses):
    s0 = min(s0, n_lines)
    model = SharedStateModel(n_lines)
    exact = expected_footprint_markov(n_lines, q, s0, misses)
    closed = model.expected_dependent(float(s0), q, misses)
    assert exact == pytest.approx(closed, abs=1e-7)


@given(
    n_lines=st.integers(2, 256),
    s_a=st.floats(0, 1),
    s_b=st.floats(0, 1),
    misses=st.integers(0, 2000),
)
def test_case2_preserves_footprint_order(n_lines, s_a, s_b, misses):
    """Decay is monotone: larger footprints stay larger."""
    model = SharedStateModel(n_lines)
    a = model.expected_independent(s_a * n_lines, misses)
    b = model.expected_independent(s_b * n_lines, misses)
    assert (a <= b) == (s_a * n_lines <= s_b * n_lines) or a == pytest.approx(b)


# -- priority schemes -----------------------------------------------------------


@given(
    footprints=st.lists(
        st.integers(1, 8000), min_size=2, max_size=6, unique=True
    ),
    extra_misses=st.integers(0, 5000),
)
@settings(max_examples=50, deadline=None)
def test_lff_priority_order_equals_footprint_order(footprints, extra_misses):
    """For any set of blocking histories, LFF priorities sort exactly like
    materialised expected footprints."""
    model = SharedStateModel(8192)
    scheme = LFFScheme(model, SharingGraph(), 1)
    for tid, n in enumerate(footprints):
        scheme.on_dispatch(0, tid)
        scheme.on_block(0, tid, n)
    if extra_misses:
        scheme.on_dispatch(0, 999)
        scheme.on_block(0, 999, extra_misses)
    tids = list(range(len(footprints)))
    by_priority = sorted(tids, key=lambda t: scheme.entry(0, t).priority)
    by_footprint = sorted(tids, key=lambda t: scheme.current_footprint(0, t))
    # allow ties from the integer-rounded log table
    def footprint_key(t):
        return round(scheme.current_footprint(0, t))

    assert [footprint_key(t) for t in by_priority] == sorted(
        footprint_key(t) for t in by_footprint
    )


@given(n=st.integers(0, 100_000))
def test_pow_k_table_matches_direct_computation(n):
    t = PrecomputedTables(256)
    expected = (255 / 256) ** n
    if n > t.max_power:
        assert t.pow_k(n) == 0.0
    else:
        assert t.pow_k(n) == pytest.approx(expected, rel=1e-9)


# -- cache simulators -----------------------------------------------------------


@given(
    accesses=st.lists(st.integers(0, 200), min_size=1, max_size=300),
)
@settings(max_examples=50, deadline=None)
def test_direct_mapped_residency_invariant(accesses):
    """After any access sequence: a line is resident iff it was the last
    line mapped to its index."""
    cache = DirectMappedCache(16 * 64, 64)
    last_at_index = {}
    for line in accesses:
        cache.access(np.asarray([line], dtype=np.int64))
        last_at_index[line % 16] = line
    for idx, line in last_at_index.items():
        assert cache.contains(line)
    assert cache.resident_lines().size == len(last_at_index)


@given(
    batch=st.lists(st.integers(0, 100), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_batched_equals_serial_counts(batch):
    """One big batch produces the same hit/miss totals as line-at-a-time."""
    batched = DirectMappedCache(16 * 64, 64)
    arr = np.asarray(batch, dtype=np.int64)
    result = batched.access(arr)
    serial = DirectMappedCache(16 * 64, 64)
    hits = misses = 0
    for line in batch:
        r = serial.access(np.asarray([line], dtype=np.int64))
        hits += r.hits
        misses += r.misses
    assert (result.hits, result.misses) == (hits, misses)
    assert sorted(batched.resident_lines()) == sorted(serial.resident_lines())


@given(
    batch=st.lists(st.integers(0, 100), min_size=1, max_size=80),
)
@settings(max_examples=50, deadline=None)
def test_net_effect_reconstructs_residency(batch):
    """Accumulating net install/evict events reproduces cache contents."""
    cache = DirectMappedCache(16 * 64, 64)
    resident = set()
    cache.on_install(lambda arr: resident.update(arr.tolist()))
    cache.on_evict(lambda arr: resident.difference_update(arr.tolist()))
    cache.access(np.asarray(batch, dtype=np.int64))
    assert resident == set(cache.resident_lines().tolist())


@given(
    accesses=st.lists(st.integers(0, 120), min_size=1, max_size=200),
    ways=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=40, deadline=None)
def test_assoc_cache_never_exceeds_capacity(accesses, ways):
    cache = SetAssociativeCache(16 * 64, 64, ways=ways)
    for line in accesses:
        cache.access(np.asarray([line], dtype=np.int64))
    assert cache.resident_lines().size <= cache.num_lines
    # no duplicates resident
    lines = cache.resident_lines().tolist()
    assert len(lines) == len(set(lines))


@given(
    installed=st.lists(st.integers(0, 20), max_size=30),
    evicted=st.lists(st.integers(0, 20), max_size=30),
)
def test_net_effect_partition(installed, evicted):
    """Net lists are disjoint and only contain mentioned lines."""
    net_in, net_out = _net_effect(installed, evicted)
    set_in, set_out = set(net_in.tolist()), set(net_out.tolist())
    assert set_in.isdisjoint(set_out)
    assert set_in <= set(installed)
    assert set_out <= set(evicted)


# -- sharing graph ----------------------------------------------------------------


@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 10), st.integers(0, 10), st.floats(0.01, 1.0)
        ),
        max_size=40,
    )
)
def test_sharing_graph_out_degree_consistency(edges):
    graph = SharingGraph()
    for src, dst, q in edges:
        if src != dst:
            graph.share(src, dst, q)
    total = sum(graph.out_degree(t) for t in range(11))
    assert total == graph.num_edges()
    for src, dst, q in graph.edges():
        assert graph.coefficient(src, dst) == q
