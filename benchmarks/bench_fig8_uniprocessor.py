"""Figure 8: locality scheduling on the 1-cpu Ultra-1.

Shape targets (paper Figure 8 / Table 5 1-cpu column):

- tasks: both policies eliminate the vast majority of E-misses and run
  about twice as fast;
- merge: substantial, annotation-driven gains;
- photo: FCFS order is already near-optimal -- the locality policies gain
  essentially nothing (paper: about -1% misses, 0.97x);
- tsp: only a small fraction of misses is eliminable (compulsory
  initialisation misses dominate).
"""

from conftest import once, report

from repro.experiments.fig8 import format_fig8, run_fig8


def test_fig8_uniprocessor(benchmark):
    results = once(benchmark, run_fig8)
    report("fig8", format_fig8(results))

    for policy in ("lff", "crt"):
        base = {wl: res["fcfs"] for wl, res in results.items()}

        tasks = results["tasks"][policy]
        assert tasks.misses_eliminated_vs(base["tasks"]) > 0.80
        assert tasks.speedup_vs(base["tasks"]) > 1.8

        merge = results["merge"][policy]
        assert merge.misses_eliminated_vs(base["merge"]) > 0.15
        assert merge.speedup_vs(base["merge"]) > 1.05

        # photo: FCFS order is already cache-friendly; whatever misses the
        # locality policies save, their heavier machinery eats the gain
        # (the paper's 0.97x)
        photo = results["photo"][policy]
        assert -0.10 < photo.misses_eliminated_vs(base["photo"]) < 0.35
        assert 0.85 < photo.speedup_vs(base["photo"]) < 1.05

        tsp = results["tsp"][policy]
        assert 0.0 < tsp.misses_eliminated_vs(base["tsp"]) < 0.30
