"""Model-checker bench: DPOR + sleep sets vs exhaustive enumeration.

Not a paper figure -- this bench quantifies the state-space reduction
the partial-order machinery buys on the MC fixtures, and pins the
soundness invariant that makes the reduction usable: both searches see
exactly the same set of end-state signatures, so the pruned runs were
genuinely redundant.
"""

from conftest import report_suite

from repro.analysis.mc import FIXTURES, SMALL_BUDGET, explore
from repro.bench import ONCE, measure
from repro.sim.report import format_table


def run_dpor_comparison():
    results = {}
    for name, factory in FIXTURES.items():
        dpor = explore(factory, SMALL_BUDGET, dpor=True, fixture_name=name)
        full = explore(factory, SMALL_BUDGET, dpor=False, fixture_name=name)
        results[name] = (dpor, full)
    return results


def format_dpor_comparison(results) -> str:
    rows = []
    for name, (dpor, full) in results.items():
        saved = 100.0 * (1.0 - (dpor.runs + dpor.pruned) / max(full.runs, 1))
        rows.append(
            (
                name,
                full.runs,
                dpor.runs,
                dpor.pruned,
                f"{saved:.0f}%",
                len(dpor.signatures),
            )
        )
    return format_table(
        ["fixture", "exhaustive", "dpor runs", "pruned", "saved", "results"],
        rows,
        title="Schedule exploration: DPOR + sleep sets vs exhaustive",
    )


def _dpor_counters(results):
    return {
        "exhaustive_runs": float(sum(f.runs for _, f in results.values())),
        "dpor_runs": float(sum(d.runs for d, _ in results.values())),
        "pruned": float(sum(d.pruned for d, _ in results.values())),
    }


def test_dpor_prunes_without_losing_results():
    results, result = measure(
        "mc_dpor",
        run_dpor_comparison,
        counters=_dpor_counters,
        policy=ONCE,
    )
    report_suite("mc_dpor", result, text=format_dpor_comparison(results))

    for name, (dpor, full) in results.items():
        # soundness: identical end-state coverage...
        assert dpor.complete and full.complete, name
        assert dpor.signatures == full.signatures, name
        # ...at no more cost than brute force
        assert dpor.runs + dpor.pruned <= full.runs, name
    # and at least one fixture shows a genuine reduction
    assert any(d.runs + d.pruned < f.runs for d, f in results.values())
