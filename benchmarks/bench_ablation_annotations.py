"""Ablation: LFF without user annotations (paper section 5).

Shape targets: merge's gains are "almost entirely through user
annotations" (retention well below 1); photo retains part of its gain
from the counter-driven model alone (the paper: 41% of the eliminated
misses); tsp barely changes ("adding annotations does not improve
performance much further").
"""

from conftest import once, report

from repro.experiments.ablations import (
    format_annotation_ablation,
    run_annotation_ablation,
)


def test_annotation_ablation(benchmark):
    rows = once(benchmark, run_annotation_ablation)
    report("ablation_annotations", format_annotation_ablation(rows))

    # annotations matter for the sharing-heavy workloads
    assert rows["photo"]["elim_with"] > 0
    assert rows["photo"]["elim_retained"] < 0.6
    assert rows["merge"]["elim_with"] > rows["merge"]["elim_without"]
    # tsp's gain is substantially counter-driven: retention stays sizeable
    assert rows["tsp"]["elim_retained"] > 0.3
