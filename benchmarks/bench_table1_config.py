"""Table 1: the simulated UltraSPARC-1 memory hierarchy.

Asserts and prints the exact configuration every other bench runs on, so
the reproduction's platform parameters are part of the recorded output.
"""

from conftest import once, report

from repro.machine.configs import E5000_8CPU, ULTRA1
from repro.sim.report import format_table


def build_rows():
    rows = []
    for config in (ULTRA1, E5000_8CPU):
        rows.append(
            (
                config.name,
                config.num_cpus,
                f"{config.l1i_bytes // 1024}K/{config.l1d_bytes // 1024}K",
                f"{config.l2_bytes // 1024}K x{config.l2_ways}",
                config.line_bytes,
                config.timings.l2_hit,
                config.timings.l2_miss,
                config.timings.l2_miss_remote,
            )
        )
    return rows


def test_table1_configuration(benchmark):
    rows = once(benchmark, build_rows)
    text = format_table(
        [
            "platform",
            "cpus",
            "L1 I/D",
            "E-cache",
            "line B",
            "hit cyc",
            "miss cyc",
            "remote cyc",
        ],
        rows,
        title="Table 1: simulated memory hierarchies",
    )
    report("table1", text)
    # the Table 1 numbers themselves
    assert ULTRA1.l2_bytes == 512 * 1024
    assert ULTRA1.line_bytes == 64
    assert ULTRA1.timings.l2_hit == 3
    assert ULTRA1.timings.l2_miss == 42
    assert E5000_8CPU.timings.l2_miss == 50
    assert E5000_8CPU.timings.l2_miss_remote == 80
