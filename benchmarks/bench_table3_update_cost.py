"""Table 3: priority-update costs in floating-point instructions.

Shape targets: independent threads cost exactly zero (the schemes'
defining trick); blocking and dependent updates cost "just a few"
floating-point instructions each.
"""

from conftest import once, report

from repro.experiments.table3 import format_table3, run_table3


def test_table3_priority_update_costs(benchmark):
    results = once(benchmark, run_table3)
    report("table3", format_table3(results))

    for policy, costs in results.items():
        assert costs["independent"] == 0.0, policy
        assert 1 <= costs["blocking"] <= 10, policy
        assert 1 <= costs["dependent"] <= 10, policy
    # CRT's blocking update is the cheapest case in the paper
    assert results["crt"]["blocking"] <= results["lff"]["blocking"]
