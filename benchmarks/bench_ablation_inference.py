"""Extension bench: runtime sharing inference (paper section 7).

"It is even more attractive to identify state sharing patterns entirely
at runtime ... perhaps with the use of a related hardware device combined
with the VM techniques, some sharing patterns could be inferred without
user intervention."

Shape targets on the producer/consumer workload (where write invalidation
blinds the counters-only model, section 3.4):

- user annotations deliver a large win over counters-only LFF;
- CML-based inference, with zero annotations, recovers a substantial
  fraction of that win.
"""

from conftest import once, report

from repro.experiments.inference_exp import (
    format_inference_comparison,
    run_inference_comparison,
)


def test_sharing_inference(benchmark):
    results = once(benchmark, run_inference_comparison)
    report("ablation_inference", format_inference_comparison(results))

    base = results["fcfs"]["misses"]
    counters_only = 1 - results["lff"]["misses"] / base
    annotated = 1 - results["lff+annotations"]["misses"] / base
    inferred = 1 - results["lff+inference"]["misses"] / base

    # annotations are the big lever on this workload
    assert annotated > 0.7
    assert annotated > counters_only + 0.3
    # inference closes a substantial part of the gap, without annotations
    assert inferred > counters_only + 0.15
    assert results["lff+inference"]["edges"] > 0
