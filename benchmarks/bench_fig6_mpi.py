"""Figure 6: average E-cache misses per 1000 instructions over time.

Shape target: "unblocking threads usually experience bursts of reload
transient misses followed by a period of a relatively stable number of
misses" -- early-window MPI must exceed the late steady state for the
reload-transient apps.
"""

from conftest import once, report

from repro.experiments.fig6 import format_fig6, run_fig6, transient_ratio


def test_fig6_mpi_series(benchmark):
    series = once(benchmark, run_fig6)
    report("fig6", format_fig6(series))

    ratios = {
        name: transient_ratio(instr, mpi)
        for name, (instr, mpi) in series.items()
        if mpi.size
    }
    # a clear reload burst exists for most apps
    bursty = [name for name, ratio in ratios.items() if ratio > 1.2]
    assert len(bursty) >= 3, ratios
