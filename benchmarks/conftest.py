"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs the
corresponding experiment once, prints the rows/series the paper reports,
and persists them under ``benchmarks/results/`` so the output survives
pytest's capture.  Shape assertions (who wins, roughly by how much) keep
the reproduction honest without pinning absolute numbers.

Two generations of plumbing coexist here:

- ``report``/``once``: the original pytest-benchmark path writing
  ``results/<name>.txt``; still used by the figure/table benches;
- ``report_suite``: the ``repro.bench`` path -- timing flows through the
  audited harness (:func:`repro.bench.measure`) and results land as
  machine-readable ``results/<name>.json`` in the same schema as the
  repo-root ``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import pathlib

from repro.bench import SuiteResult, format_suite, write_suite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def report_suite(name: str, *results, text: str = "") -> None:
    """Persist harness results as ``benchmarks/results/<name>.json``.

    ``results`` are :class:`repro.bench.BenchResult` values (from
    :func:`repro.bench.measure`); ``text`` optionally adds the
    human-readable block the old ``.txt`` files carried, printed but no
    longer persisted -- the JSON is the artifact.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    suite = SuiteResult(suite=name, results=tuple(results))
    write_suite(str(RESULTS_DIR / f"{name}.json"), suite)
    print(f"\n{format_suite(suite)}\n")
    if text:
        print(f"{text}\n")


def once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
