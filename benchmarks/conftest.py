"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs the
corresponding experiment once (timed by pytest-benchmark), prints the
rows/series the paper reports, and writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
Shape assertions (who wins, roughly by how much) keep the reproduction
honest without pinning absolute numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
