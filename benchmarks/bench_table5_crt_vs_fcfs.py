"""Table 5: CRT relative to FCFS on one and eight processors, with the
paper's numbers printed alongside.

Shape targets from the paper's table: tasks is the big uniprocessor win
(92%, 2.38x); photo's uniprocessor result is approximately zero/negative;
tsp's uniprocessor elimination is small (compulsory misses); the SMP
column is positive for tasks and tsp.
"""

from conftest import once, report

from repro.experiments.table5 import format_table5, run_table5


def test_table5_crt_vs_fcfs(benchmark):
    measured = once(benchmark, run_table5)
    report("table5", format_table5(measured))

    assert measured["tasks"]["elim_1cpu"] > 80.0
    assert measured["tasks"]["perf_1cpu"] > 1.8

    assert abs(measured["photo"]["elim_1cpu"]) < 10.0
    assert 0.85 < measured["photo"]["perf_1cpu"] < 1.1

    assert 0.0 < measured["tsp"]["elim_1cpu"] < 30.0
    assert measured["tsp"]["elim_8cpu"] > 10.0

    assert measured["merge"]["elim_1cpu"] > 15.0
