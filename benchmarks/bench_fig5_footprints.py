"""Figure 5: observed vs predicted footprints for six applications.

Shape targets: C (SPLASH-like) apps mildly overestimated (ratio >= 1);
Sather apps in good agreement (ratio near 1); nothing anomalous (that is
Figure 7's job).
"""

from conftest import once, report

from repro.experiments.fig5 import format_fig5, run_fig5


def test_fig5_application_footprints(benchmark):
    results = once(benchmark, run_fig5)
    report("fig5", format_fig5(results))

    for name, res in results.items():
        # every app produced a substantial trace
        assert res.misses[-1] > 1000, name
        # no Figure-5 app is wildly mispredicted
        assert 0.6 < res.final_ratio < 1.6, (name, res.final_ratio)

    # the C apps lean toward overestimation (clustering/conflicts)...
    c_ratios = [r.final_ratio for r in results.values() if r.language == "c"]
    assert max(c_ratios) > 1.0
    # ...while the Sather apps agree well on average
    sather = [r.final_ratio for r in results.values() if r.language == "sather"]
    assert sum(sather) / len(sather) < 1.25
