"""Figure 7: the applications whose footprints the model overestimates.

Shape targets: for typechecker and raytrace "the footprints in the cache
predicted by the model were substantially larger than those observed";
the paper's suggested MPI-switch heuristic (section 3.4) should reduce the
error.
"""

from conftest import once, report

from repro.experiments.fig7 import (
    adaptive_prediction,
    format_fig7,
    run_fig7,
)

import numpy as np


def test_fig7_overestimated_footprints(benchmark):
    results = once(benchmark, run_fig7)
    report("fig7", format_fig7(results))

    for name, res in results.items():
        # substantial overestimation is the figure's defining feature
        assert res.final_ratio > 1.3, (name, res.final_ratio)

    # the MPI-switch heuristic reduces the error for the nonstationary app
    tc = results["typechecker"]
    adaptive = adaptive_prediction(tc)
    base_err = tc.mean_absolute_error
    adaptive_err = float(np.mean(np.abs(adaptive - tc.observed)))
    assert adaptive_err < base_err
