"""Ablation: photo thread creation order (the SMP banding mechanism).

With row-order creation (the default, matching the paper's layout) the
8 cpus consume neighbouring rows in lockstep and no placement policy can
do better or worse -- the uniprocessor FCFS-is-already-optimal result.
With tiled creation, neighbour rows remain queued when a row finishes, so
the annotation-driven dependent-repush machinery clusters bands of rows
per cpu -- the paper-scale SMP gain.  Together the two rows localise this
reproduction's photo-SMP deviation to workload structure, not to the
scheduler (see EXPERIMENTS.md).
"""

from conftest import once, report

from repro.experiments.ablations import (
    format_photo_order_ablation,
    run_photo_order_ablation,
)


def test_photo_creation_order_ablation(benchmark):
    results = once(benchmark, run_photo_order_ablation)
    report("ablation_photo_order", format_photo_order_ablation(results))

    # row order: the policies cannot beat FCFS anywhere meaningful
    assert abs(results[("ultra1", "row")]["eliminated"]) < 35.0
    # tiled order: the banding mechanism delivers a large SMP gain
    assert results[("e5000", "tiled")]["eliminated"] > 30.0
    assert results[("e5000", "tiled")]["speedup"] > 1.3
