"""Methodology bench: off-line trace inference vs the on-line model.

The paper replaces trace-driven footprint inference (Agarwal et al.,
section 2.1) with a counter-driven closed form.  Shape targets: the
off-line replay is at least as accurate (it stores everything), but its
storage grows with the run while the model's tables are a fixed few
hundred KiB -- the trade the paper's design makes explicit.
"""

from conftest import once, report

from repro.experiments.offline import (
    format_offline_comparison,
    run_offline_comparison,
)


def test_offline_vs_online(benchmark):
    results = once(benchmark, run_offline_comparison)
    report("ablation_offline", format_offline_comparison(results))

    for name, r in results.items():
        # the on-line model is usable everywhere...
        assert r["online_mae"] < 2000, name
        # ...and the off-line method pays storage proportional to the run
        assert r["trace_bytes"] > r["model_bytes"], name

    # where references are scattered (merge), the stored trace replays to
    # near-exact footprints -- accuracy the model cannot match...
    assert results["merge"]["offline_mae"] < results["merge"]["online_mae"]
    # ...but the trace records *virtual* lines, so on layouts where VM
    # placement matters (barnes' arena slabs) the replay aliases pages the
    # physical cache separates and the on-line model wins outright
    assert results["barnes"]["offline_mae"] > results["barnes"]["online_mae"]
