"""Figure 4: the random-memory-walk microbenchmark, all four panels.

Shape target: "excellent correspondence between the observed footprints
and those predicted by the model" -- the walk satisfies the independence
assumption by construction, so mean relative error must be small in every
panel.
"""

from conftest import once, report

from repro.experiments.fig4 import run_fig4
from repro.sim.report import format_series, format_table


def test_fig4_random_walk(benchmark):
    panels = once(benchmark, run_fig4)
    rows = []
    details = []
    for panel, curves in panels.items():
        for curve in curves:
            rows.append(
                (
                    panel,
                    curve.label,
                    int(curve.misses[-1]),
                    int(curve.observed[-1]),
                    float(curve.predicted[-1]),
                    100.0 * curve.mean_relative_error,
                )
            )
            details.append(
                f"{panel} {curve.label}: "
                + format_series(curve.misses, curve.observed, max_points=6)
            )
    text = format_table(
        ["panel", "curve", "misses", "observed", "predicted", "rel.err %"],
        rows,
        title="Figure 4: random walk, observed vs predicted footprints",
    )
    report("fig4", text + "\n" + "\n".join(details))

    # every curve tracks the model closely
    for panel, curves in panels.items():
        for curve in curves:
            assert curve.mean_relative_error < 0.08, (panel, curve.label)

    # panel b decays; panel a grows
    for curve in panels["b_independent"]:
        assert curve.observed[-1] < curve.observed[0]
    grow = panels["a_executing"][0]
    assert grow.observed[-1] > grow.observed[0]
