"""Event-driven engine: order-of-magnitude wins on sparse workloads.

The event engine (``--engine event``, ``src/repro/sim/events.py``)
exists for workloads whose threads are mostly blocked: instead of
ticking every idle cpu forward one cycle at a time, it jumps simulated
time to the next event and replays certified idle iterations virtually.
This bench runs the sparse ``server`` workload (>= 90% of simulated
cpu-cycles idle on 32 cpus) under both engines and gates the two halves
of the engine's contract:

- **parity**: every simulated counter -- global time, per-cpu clocks and
  instruction counts, misses, context switches, executed events, timer
  wakeups -- is bit-identical between engines (the full policy x
  workload matrix lives in ``tests/sim/test_engine_parity.py``; this is
  the bench-fixture cell);
- **speed**: the event engine is at least 5x faster wall-clock on this
  fixture (typically 7-10x), with the work shift visible in the audited
  step counters: faithful ``loop_steps`` collapse and certified
  ``virtual_steps`` replace them.

Timing is best-of-2: both runs are deterministic, so the minimum is the
least-noise sample and needs no steady-state detection.
"""

from conftest import report_suite

from repro.bench import RepeatPolicy, measure
from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.sched import SCHEDULERS
from repro.threads.runtime import Runtime
from repro.workloads.server import ServerWorkload

NUM_CPUS = 32
_CONFIG = SMALL.with_cpus(NUM_CPUS)

#: deterministic simulation: the faster of two samples is the signal
BEST_OF_2 = RepeatPolicy(
    warmup=0, min_repeats=2, max_repeats=2, time_budget_s=120.0,
    steady_rel_spread=0.0,
)


def _run(engine: str):
    machine = Machine(_CONFIG, seed=0)
    runtime = Runtime(machine, SCHEDULERS["lff"](), engine=engine)
    ServerWorkload().build(runtime)
    runtime.run()
    return machine, runtime


def _signature(machine, runtime):
    """Every simulated counter the parity guarantee covers."""
    return (
        machine.time(),
        machine.total_l2_misses(),
        machine.total_instructions(),
        runtime.context_switches,
        runtime.events_executed,
        runtime.timer_wakeups,
        tuple(p.cycles for p in machine.cpus),
        tuple(p.instructions for p in machine.cpus),
    )


def _counters(value):
    machine, runtime = value
    return {
        "events": float(runtime.events_executed),
        "loop_steps": float(runtime.loop_steps),
        "virtual_steps": float(runtime.virtual_steps),
        "sim_misses": float(machine.total_l2_misses()),
        "cycles": float(machine.time()),
    }


def test_event_engine_sparse_speedup():
    (m_step, r_step), stepped = measure(
        "engine_stepped", lambda: _run("stepped"),
        counters=_counters, policy=BEST_OF_2,
    )
    (m_evt, r_evt), event = measure(
        "engine_event", lambda: _run("event"),
        counters=_counters, policy=BEST_OF_2,
    )
    speedup = stepped.stats.min_s / event.stats.min_s
    blocked = 1.0 - m_step.total_instructions() / (
        NUM_CPUS * m_step.time()
    )
    report_suite(
        "engine_event", stepped, event,
        text=(
            f"server on {NUM_CPUS} cpus (lff): "
            f"{100.0 * blocked:.1f}% of cpu-cycles idle; "
            f"stepped {stepped.stats.min_s:.3f}s "
            f"({r_step.loop_steps:,} faithful steps) vs event "
            f"{event.stats.min_s:.3f}s ({r_evt.loop_steps:,} faithful + "
            f"{r_evt.virtual_steps:,} virtual) -> {speedup:.2f}x"
        ),
    )

    # parity: the engines must agree bit-for-bit on every counter
    assert _signature(m_step, r_step) == _signature(m_evt, r_evt)

    # the fixture is genuinely sparse -- that's what the win feeds on
    assert blocked >= 0.90, f"fixture lost its sparsity: {blocked:.3f}"

    # the work moved from faithful iterations to certified virtual ones
    assert r_evt.virtual_steps > 0
    assert r_evt.loop_steps * 10 < r_step.loop_steps, (
        f"event engine still does {r_evt.loop_steps:,} faithful steps "
        f"vs stepped {r_step.loop_steps:,}"
    )

    # the gate: >= 5x wall-clock on the sparse fixture (typically 7-10x)
    assert speedup >= 5.0, (
        f"event engine speedup {speedup:.2f}x under the 5x gate "
        f"(stepped {stepped.stats.min_s:.3f}s, "
        f"event {event.stats.min_s:.3f}s)"
    )
