"""Dispatch chaos: the full fault matrix survives a killed worker.

The acceptance bar for the fault-tolerant dispatch layer
(docs/PARALLEL.md): the 80-cell campaign -- 5 workloads x 2 policies x
8 fault classes -- runs on the cluster backend with one worker killed
mid-run, and

- the merged rows are **bit-identical** to the serial campaign (node
  deaths may move work and charge attempts, never change results);
- an immediately following warm-cache re-run executes **zero** cells
  (every (workload, policy) pair's fingerprint is already on disk).
"""

import tempfile

from conftest import report_suite

from repro.bench import ONCE, measure
from repro.faults import FAULT_CLASSES, format_campaign, run_campaign
from repro.parallel import ClusterConfig, ResultCache


def _row_lines(rows):
    return format_campaign(rows)


def test_dispatch_chaos_campaign():
    serial = run_campaign(scale="smoke", seed=0)
    assert len(serial) == 5 * 2 * len(FAULT_CLASSES) == 80

    cluster = ClusterConfig(
        heartbeat_s=0.2,
        backoff_base_s=0.02,
        backoff_cap_s=0.2,
        tick_s=0.02,
        max_respawns=4,
        chaos_kill=1,  # node0 dies right after its first delivered result
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        rows, result = measure(
            "dispatch_chaos_campaign",
            lambda: run_campaign(
                scale="smoke",
                seed=0,
                jobs=2,
                backend="cluster",
                cluster=cluster,
                cache=ResultCache(cache_dir),
            ),
            counters=lambda rows: {"cells": float(len(rows))},
            policy=ONCE,
        )
        report_suite(
            "dispatch_chaos_campaign", result, text=_row_lines(rows)
        )

        # bit-identical merge despite the injected worker kill
        assert _row_lines(rows) == _row_lines(serial)

        # warm re-run: every pair comes from the cache, zero executions
        warm_cache = ResultCache(cache_dir)
        warm = run_campaign(
            scale="smoke", seed=0, jobs=2, cache=warm_cache
        )
        assert _row_lines(warm) == _row_lines(serial)
        assert warm_cache.hits == 10  # all 10 (workload, policy) shards
        assert warm_cache.misses == 0
