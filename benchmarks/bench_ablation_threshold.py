"""Ablation: the heap eviction threshold (paper section 5).

"Threads whose footprints drop below a certain threshold on some heap are
removed from that heap to bound heap sizes and keep the cost of elementary
heap operations low."  Shape target: small thresholds preserve the
locality win; a threshold comparable to typical footprints destroys it
(nothing qualifies for the heaps and scheduling degenerates to FIFO).
"""

from conftest import once, report

from repro.experiments.ablations import (
    format_threshold_ablation,
    run_threshold_ablation,
)


def test_threshold_ablation(benchmark):
    results = once(benchmark, run_threshold_ablation)
    report("ablation_threshold", format_threshold_ablation(results))

    small = results[0.0]["misses"]
    moderate = results[32.0]["misses"]
    huge = results[256.0]["misses"]
    assert moderate < 2 * small  # moderate thresholds are near-free
    assert huge > 5 * moderate  # over-eviction destroys affinity
