"""Ablation: Kessler-Hill hierarchical page placement vs naive placement.

The paper implements the hierarchical policy because it "was shown to
perform better than a naive (arbitrary) page placement" (section 3.1).
Shape target: fewer E-cache misses under Kessler-Hill for a sub-cache
working set with revisits, where placement decides whether pages conflict
at all.
"""

from conftest import once, report

from repro.experiments.ablations import format_vm_ablation, run_vm_ablation


def test_vm_placement_ablation(benchmark):
    results = once(benchmark, run_vm_ablation)
    report("ablation_vm", format_vm_ablation(results))

    assert results["kessler-hill"] < results["naive"]
