"""Extension bench: locality scheduling also preserves TLB locality.

The paper's introduction lists TLB misses among the locality costs of
fine-grained threading but evaluates only the E-cache.  With per-cpu
dTLBs modelled (64-entry fully associative, ~30-cycle misses), a thread
resuming on its previous processor finds its translations as well as its
lines -- so the locality policies should eliminate a large share of TLB
misses too, for free.
"""

from dataclasses import replace

from conftest import once, report

from repro.machine.configs import E5000_8CPU
from repro.machine.smp import Machine
from repro.sched import FCFSScheduler, make_lff
from repro.sim.report import format_table
from repro.threads.runtime import Runtime
from repro.workloads import TasksParams, TasksWorkload


def run_tlb_ablation(seed: int = 0):
    config = replace(E5000_8CPU, name="e5000-tlb", model_tlb=True)
    results = {}
    for factory in (FCFSScheduler, make_lff):
        scheduler = factory()
        machine = Machine(config, seed=seed)
        runtime = Runtime(machine, scheduler)
        workload = TasksWorkload(TasksParams())
        workload.build(runtime)
        runtime.run()
        results[scheduler.name] = {
            "l2_misses": machine.total_l2_misses(),
            "tlb_misses": sum(t.misses for t in machine.tlbs),
            "cycles": machine.time(),
        }
    return results


def format_tlb_ablation(results) -> str:
    base = results["fcfs"]
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                r["l2_misses"],
                r["tlb_misses"],
                100.0 * (1 - r["tlb_misses"] / base["tlb_misses"]),
                base["cycles"] / r["cycles"],
            )
        )
    return format_table(
        ["policy", "E-misses", "TLB misses", "TLB misses eliminated %",
         "rel perf"],
        rows,
        title="Ablation: TLB locality under the scheduling policies "
        "(tasks, 8-cpu E5000, dTLBs modelled)",
    )


def test_tlb_ablation(benchmark):
    results = once(benchmark, run_tlb_ablation)
    report("ablation_tlb", format_tlb_ablation(results))

    base = results["fcfs"]
    lff = results["lff"]
    # cache affinity is translation affinity: most TLB misses go away too
    assert lff["tlb_misses"] < 0.5 * base["tlb_misses"]
