"""Fault campaign: the paper's robustness contract under chaos.

Section 2.3: annotations and counter readings are hints -- "incorrect
information may affect performance, but it does not affect the
correctness of the program."  This bench runs the fig4/fig8 workloads
under every fault class and asserts the three halves of the contract:

- hint faults (corrupted annotations, perturbed counters) and absorbed
  thread delays/crashes leave per-thread results **bit-identical**;
- a counter-faulted LFF degrades gracefully: no worse than 1.10x the
  fault-free FCFS baseline's cycles (the scheduler clamps implausible
  readings and falls back to FCFS ordering when anomalies persist);
- every injected livelock is converted by the watchdog into a
  diagnostic WatchdogTimeout instead of a hang.
"""

from conftest import report_suite

from repro.bench import ONCE, measure
from repro.faults import EXPECTS_TIMEOUT, run_campaign, format_campaign
from repro.faults.campaign import campaign_workloads
from repro.machine.configs import SMALL
from repro.sched import SCHEDULERS
from repro.sim.driver import run_hardened


def test_fault_campaign():
    rows, result = measure(
        "fault_campaign",
        lambda: run_campaign(
            workloads=campaign_workloads("smoke"),
            policies=("fcfs", "lff"),
        ),
        counters=lambda rows: {"cells": float(len(rows))},
        policy=ONCE,
    )
    report_suite("fault_campaign", result, text=format_campaign(rows))

    assert rows, "campaign produced no cells"
    for row in rows:
        cell = f"{row.workload}/{row.policy}/{row.fault_class}"
        if row.fault_class in EXPECTS_TIMEOUT:
            # a hang must become a diagnostic, never a completed lie
            assert row.outcome == "watchdog-timeout", (
                f"{cell}: expected watchdog diagnosis, got {row.outcome} "
                f"({row.detail})"
            )
        else:
            assert row.outcome == "identical", (
                f"{cell}: {row.outcome} ({row.detail})"
            )


def test_lff_counter_fault_degradation():
    """Counter-faulted LFF stays within 1.10x of fault-free FCFS."""
    from repro.faults import FAULT_CLASSES

    factory = campaign_workloads("smoke")["tasks"]
    fcfs = run_hardened(factory, SMALL, SCHEDULERS["fcfs"], plan=None)
    budget = 1.10 * fcfs.perf.cycles
    for cname in ("counter_noise", "counter_saturate", "counter_wrap",
                  "counter_zero"):
        faulty = run_hardened(
            factory, SMALL, SCHEDULERS["lff"], plan=FAULT_CLASSES[cname](0)
        )
        assert faulty.signature == fcfs.signature, cname
        assert faulty.perf.cycles <= budget, (
            f"{cname}: {faulty.perf.cycles} cycles vs FCFS "
            f"{fcfs.perf.cycles} (budget {budget:.0f})"
        )
