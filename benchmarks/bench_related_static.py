"""Related-work bench: static mapping + load balancing ([15]) vs the
counter/annotation approach.

The paper cites Markatos & LeBlanc's memory-conscious scheduling (static
initial mapping for locality, dynamic balancing for load) as the prior
alternative.  Shape targets on the E5000: plain stickiness recovers a
real fraction of the affinity win on stable thread pools (tasks) with
zero hardware support -- and the model-driven policy stays well ahead,
which is the paper's reason to exist.
"""

from conftest import once, report

from repro.experiments.fig8 import default_workloads
from repro.machine.configs import E5000_8CPU
from repro.sched import SCHEDULERS
from repro.sim.driver import run_performance
from repro.sim.report import format_table


def run_static_comparison(seed: int = 0):
    results = {}
    for wl_name, factory in default_workloads().items():
        results[wl_name] = {}
        for policy in ("fcfs", "static", "lff"):
            results[wl_name][policy] = run_performance(
                factory(), E5000_8CPU, SCHEDULERS[policy](), seed=seed
            )
    return results


def format_static_comparison(results) -> str:
    rows = []
    for wl_name, by_policy in results.items():
        base = by_policy["fcfs"]
        for policy, res in by_policy.items():
            rows.append(
                (
                    wl_name,
                    policy,
                    res.l2_misses,
                    100.0 * res.misses_eliminated_vs(base),
                    res.speedup_vs(base),
                )
            )
    return format_table(
        ["workload", "policy", "E-misses", "eliminated %", "rel perf"],
        rows,
        title="Related work [15]: static mapping + balancing vs LFF "
        "(8-cpu E5000)",
    )


def test_static_mapping_comparison(benchmark):
    results = once(benchmark, run_static_comparison)
    report("related_static", format_static_comparison(results))

    tasks = results["tasks"]
    static_elim = tasks["static"].misses_eliminated_vs(tasks["fcfs"])
    lff_elim = tasks["lff"].misses_eliminated_vs(tasks["fcfs"])
    # stickiness alone helps a stable thread pool...
    assert static_elim > 0.15
    # ...but the counter-driven model is decisively ahead
    assert lff_elim > static_elim + 0.3
