"""Analytic cache backend: order-of-magnitude wins on sweep fixtures.

The analytic backend (``--backend analytic``,
``src/repro/machine/analytic.py``) prices touch batches with the
closed-form reuse-distance model instead of replaying every reference
through the VM layer, the residency arrays, and the coherence
directory.  This bench runs the five sweep-scale fixture cells (large
touch batches, 8 cpus, LFF -- see
``repro.bench.suites.analytic_sweep_cells``) under both backends and
gates the two halves of the backend's contract:

- **ground truth**: the per-thread correctness signature (name, refs,
  instructions, final state) is bit-identical between backends for
  every cell -- the backend prices misses, it never changes what the
  programs did (miss-count *accuracy* is the oracle job's gate, with
  per-workload bounds; it is not asserted here);
- **speed**: the analytic sweep is at least 10x faster wall-clock in
  total (typically ~12-13x).  The merge/tsp cells are event-bound and
  nearly break even by design -- they document that the win comes from
  the per-reference work, not the per-event work -- so the gate is on
  the summed sweep time, which the batch-heavy cells dominate.

Timing is best-of-2: both runs are deterministic, so the minimum is the
least-noise sample and needs no steady-state detection.
"""

from conftest import report_suite

from repro.bench import RepeatPolicy, measure
from repro.bench.suites import analytic_sweep_cells
from repro.machine.configs import ULTRA1
from repro.machine.smp import Machine
from repro.sched import SCHEDULERS
from repro.sim.driver import workload_signature
from repro.threads.runtime import Runtime

NUM_CPUS = 8
_CONFIG = ULTRA1.with_cpus(NUM_CPUS)

#: deterministic simulation: the faster of two samples is the signal
BEST_OF_2 = RepeatPolicy(
    warmup=0, min_repeats=2, max_repeats=2, time_budget_s=300.0,
    steady_rel_spread=0.0,
)

#: the wall-clock gate on the summed sweep (measured ~12.7x)
MIN_SPEEDUP = 10.0


def _run_cell(factory, backend: str):
    machine = Machine(_CONFIG, seed=0, backend=backend)
    runtime = Runtime(machine, SCHEDULERS["lff"](), engine="stepped")
    factory().build(runtime)
    runtime.run()
    return machine, runtime


def _counters(value):
    machine, runtime = value
    return {
        "events": float(runtime.events_executed),
        "context_switches": float(runtime.context_switches),
        "sim_refs": float(sum(c.l2.stats.refs for c in machine.cpus)),
        "sim_misses": float(machine.total_l2_misses()),
    }


def test_analytic_backend_sweep_speedup():
    cells = analytic_sweep_cells()
    total_sim = total_ana = 0.0
    lines = []
    for name, factory in cells:
        (m_sim, r_sim), sim = measure(
            f"sweep_sim_{name}", lambda: _run_cell(factory, "sim"),
            counters=_counters, policy=BEST_OF_2,
        )
        (m_ana, r_ana), ana = measure(
            f"sweep_analytic_{name}", lambda: _run_cell(factory, "analytic"),
            counters=_counters, policy=BEST_OF_2,
        )
        # ground truth is backend-invariant, per cell, bit-for-bit
        assert workload_signature(r_sim) == workload_signature(r_ana), (
            f"{name}: per-thread ground truth diverged across backends"
        )
        total_sim += sim.stats.min_s
        total_ana += ana.stats.min_s
        cell_speedup = sim.stats.min_s / ana.stats.min_s
        lines.append(
            f"{name}: sim {sim.stats.min_s:.3f}s vs analytic "
            f"{ana.stats.min_s:.3f}s -> {cell_speedup:.2f}x "
            f"(sim misses {m_sim.total_l2_misses():,}, "
            f"analytic {m_ana.total_l2_misses():,})"
        )
        report_suite(f"analytic_sweep_{name}", sim, ana)

    speedup = total_sim / total_ana
    print(
        "\n".join(
            lines
            + [
                f"total: sim {total_sim:.3f}s vs analytic "
                f"{total_ana:.3f}s -> {speedup:.2f}x"
            ]
        )
    )

    # the gate: >= 10x total wall-clock on the sweep fixture
    assert speedup >= MIN_SPEEDUP, (
        f"analytic sweep speedup {speedup:.2f}x under the "
        f"{MIN_SPEEDUP:.0f}x gate (sim {total_sim:.3f}s, "
        f"analytic {total_ana:.3f}s)"
    )
