"""Ablation: model accuracy vs E-cache associativity.

The model is derived for direct-mapped caches (section 2.1; the paper
notes extending it to associative caches would be "more complex with a
higher runtime overhead").  Shape target: prediction error grows with
associativity while staying small for the direct-mapped case.
"""

import pytest

from conftest import once, report

from repro.experiments.ablations import (
    format_associativity_ablation,
    run_associativity_ablation,
)


def test_associativity_ablation(benchmark):
    results = once(benchmark, run_associativity_ablation)
    report("ablation_assoc", format_associativity_ablation(results))

    assert results[1]["mae"] < results[2]["mae"] < results[4]["mae"]
    assert results[1]["mae"] < 300  # direct-mapped: the model's home turf

    # the W-way extension restores decay accuracy on associative caches
    for w in (2, 4):
        assert (
            results[w]["decay_mae_extension"] < results[w]["decay_mae_direct"]
        )
    # ...and reduces to the paper's model at W = 1 (up to the numerical
    # difference between the binomial-CDF and exp-log evaluations of k^n)
    assert results[1]["decay_mae_extension"] == pytest.approx(
        results[1]["decay_mae_direct"], rel=1e-6, abs=1e-6
    )
