"""Figure 9: locality scheduling on the 8-cpu Enterprise 5000.

Shape targets: on the SMP the locality policies eliminate a large share of
E-cache misses for tasks and tsp and speed them up well beyond the
uniprocessor margins; merge gains modestly.  Photo is the documented
deviation of this reproduction: with single-interval row threads created
in row order, lockstep FIFO consumption leaves no placement freedom (see
EXPERIMENTS.md); the tiled-creation ablation shows the paper-scale gain.
"""

from conftest import once, report

from repro.experiments.fig9 import format_fig9, run_fig9


def test_fig9_smp(benchmark):
    results = once(benchmark, run_fig9)
    report("fig9", format_fig9(results))

    base = {wl: res["fcfs"] for wl, res in results.items()}

    tasks_lff = results["tasks"]["lff"]
    assert tasks_lff.misses_eliminated_vs(base["tasks"]) > 0.6
    assert tasks_lff.speedup_vs(base["tasks"]) > 1.4

    tsp_lff = results["tsp"]["lff"]
    assert tsp_lff.misses_eliminated_vs(base["tsp"]) > 0.2
    assert tsp_lff.speedup_vs(base["tsp"]) > 1.1

    merge_lff = results["merge"]["lff"]
    assert merge_lff.speedup_vs(base["merge"]) > 1.0

    # no workload regresses badly under either policy
    for wl, by_policy in results.items():
        for policy in ("lff", "crt"):
            assert by_policy[policy].speedup_vs(base[wl]) > 0.9, (wl, policy)
