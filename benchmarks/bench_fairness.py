"""Extension bench: the locality/fairness trade-off (paper section 7).

Shape targets: LFF's pure priority order starves cold threads (maximum
wait far above FCFS's); the fairness-boost escape hatch bounds waits at a
measurable locality cost, with smaller boost intervals trading more.
"""

from conftest import once, report

from repro.experiments.fairness import (
    format_fairness_sweep,
    run_fairness_sweep,
)


def test_fairness_tradeoff(benchmark):
    results = once(benchmark, run_fairness_sweep)
    report("fairness", format_fairness_sweep(results))

    # LFF starves relative to FCFS...
    assert results["lff"]["max_wait"] > 2 * results["fcfs"]["max_wait"]
    # ...while eliminating most misses
    assert results["lff"]["misses"] < 0.3 * results["fcfs"]["misses"]
    # the escape hatch reduces the worst wait...
    assert results["lff boost=4"]["max_wait"] < results["lff"]["max_wait"]
    # ...at a locality cost (more misses than pure LFF)
    assert results["lff boost=4"]["misses"] >= results["lff"]["misses"]