"""The scheduler interface the runtime drives.

Every callback returns an *instruction cost* that the runtime charges to
the simulated clock, so scheduling overhead is part of the measured
performance rather than being assumed away -- the paper's premise is that
"the scheduling overhead imposed by any such policy must be less than the
avoided cache reload penalty" (section 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from repro.threads.runtime import Runtime
    from repro.threads.thread import ActiveThread


class Scheduler:
    """Abstract scheduling policy."""

    name = "abstract"

    def attach(self, runtime: "Runtime") -> None:
        """Bind to a runtime (called once, from Runtime.__init__)."""
        raise NotImplementedError

    def thread_created(self, thread: "ActiveThread") -> int:
        """A thread was created; returns instruction cost."""
        return 0

    def thread_ready(self, thread: "ActiveThread") -> int:
        """A thread became runnable; returns instruction cost."""
        raise NotImplementedError

    def thread_dispatched(self, cpu: int, thread: "ActiveThread") -> int:
        """A thread starts a scheduling interval on ``cpu``."""
        return 0

    def thread_blocked(
        self, cpu: int, thread: "ActiveThread", misses: int, finished: bool
    ) -> int:
        """A scheduling interval ended with ``misses`` E-cache misses
        (from the performance counters); returns instruction cost."""
        raise NotImplementedError

    def pick(self, cpu: int) -> Tuple[Optional["ActiveThread"], int]:
        """Choose the next thread for ``cpu``; (thread or None, cost)."""
        raise NotImplementedError

    def has_runnable(self) -> bool:
        """Whether any thread is runnable anywhere."""
        raise NotImplementedError
