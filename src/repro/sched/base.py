"""The scheduler interface the runtime drives.

Every callback returns an *instruction cost* that the runtime charges to
the simulated clock, so scheduling overhead is part of the measured
performance rather than being assumed away -- the paper's premise is that
"the scheduling overhead imposed by any such policy must be less than the
avoided cache reload penalty" (section 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from repro.threads.runtime import Runtime
    from repro.threads.thread import ActiveThread


class Scheduler:
    """Abstract scheduling policy."""

    name = "abstract"

    def attach(self, runtime: "Runtime") -> None:
        """Bind to a runtime (called once, from Runtime.__init__)."""
        raise NotImplementedError

    def thread_created(self, thread: "ActiveThread") -> int:
        """A thread was created; returns instruction cost."""
        return 0

    def thread_ready(self, thread: "ActiveThread") -> int:
        """A thread became runnable; returns instruction cost."""
        raise NotImplementedError

    def thread_dispatched(self, cpu: int, thread: "ActiveThread") -> int:
        """A thread starts a scheduling interval on ``cpu``."""
        return 0

    def thread_blocked(
        self, cpu: int, thread: "ActiveThread", misses: int, finished: bool
    ) -> int:
        """A scheduling interval ended with ``misses`` E-cache misses
        (from the performance counters); returns instruction cost."""
        raise NotImplementedError

    def pick(self, cpu: int) -> Tuple[Optional["ActiveThread"], int]:
        """Choose the next thread for ``cpu``; (thread or None, cost)."""
        raise NotImplementedError

    def has_runnable(self) -> bool:
        """Whether any thread is runnable anywhere."""
        raise NotImplementedError

    # -- idle-quiescence contract (the event engine's fast path) -----------

    def idle_pick_cost(self, cpu: int) -> Optional[int]:
        """Closed-form cost of a failed :meth:`pick` in idle quiescence.

        The event engine (:mod:`repro.sim.events`) parks an idle cpu and
        replays its failed-pick iterations arithmetically instead of
        calling :meth:`pick`.  Returning an ``int`` here certifies that,
        in the scheduler's *current* state with no runnable threads, a
        ``pick(cpu)`` would (a) return ``(None, cost)`` with exactly this
        cost and (b) mutate nothing except the bookkeeping later settled
        by :meth:`account_idle_picks`.  Return ``None`` whenever that
        cannot be certified -- stale entries to drain, runnable threads,
        any state the next pick would change -- and the engine falls back
        to faithful ``pick()`` calls, which is always correct.

        The default is ``None``: unknown schedulers are never virtualised.
        """
        return None

    def account_idle_picks(self, count: int) -> None:
        """Settle bookkeeping for ``count`` virtualised failed picks.

        Called by the event engine before any state the picks could have
        influenced is observed (in particular before any real
        :meth:`pick`).  The default is a no-op for schedulers whose
        failed picks keep no bookkeeping at all.
        """
