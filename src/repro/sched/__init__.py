"""Thread scheduling policies.

- :mod:`repro.sched.fcfs` -- the paper's baseline first-come first-served
  policy (one shared FIFO queue).
- :mod:`repro.sched.locality` -- the locality-conscious scheduler
  machinery of sections 4-5: per-processor binary heaps keyed by the
  priority schemes of :mod:`repro.core.priorities`, threshold eviction to
  a global queue, and lowest-priority work stealing.  Instantiated with
  the LFF or CRT scheme via :func:`make_lff` / :func:`make_crt`.
- :mod:`repro.sched.heap` -- the lazy-deletion priority heap both locality
  policies share.
"""

from repro.sched.base import Scheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.heap import HeapEntry, PriorityHeap
from repro.sched.locality import LocalityScheduler, make_crt, make_lff
from repro.sched.static import StaticScheduler

__all__ = [
    "FCFSScheduler",
    "StaticScheduler",
    "HeapEntry",
    "LocalityScheduler",
    "PriorityHeap",
    "Scheduler",
    "make_crt",
    "make_lff",
]

#: name -> factory, for drivers and benches
SCHEDULERS = {
    "fcfs": FCFSScheduler,
    "lff": make_lff,
    "crt": make_crt,
    "static": StaticScheduler,
}
