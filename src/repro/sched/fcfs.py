"""First-come first-served: the paper's baseline policy (section 5).

One FIFO queue shared by all processors.  The policy ignores the
performance counters and the annotation graph entirely; its only cost is
queue manipulation.  On a multiprocessor this is exactly the
locality-oblivious behaviour the paper measures against: a rescheduled
thread lands on whichever processor asks next, regardless of where its
state is cached.

Like the locality scheduler, FCFS can model its queue as simulated memory
(one ring-buffer line per operation) so the comparison of scheduler cache
pollution is apples-to-apples: the paper attributes the locality policies'
small uniprocessor regression to their "substantially more complex data
structures" relative to this queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.sched.base import Scheduler
from repro.threads.thread import ActiveThread, ThreadState

#: instruction cost of one queue operation
QUEUE_OP_COST = 5


class FCFSScheduler(Scheduler):
    """A single global FIFO ready queue."""

    name = "fcfs"

    def __init__(self, model_scheduler_memory: bool = True) -> None:
        self._queue: Deque[Tuple[ActiveThread, int]] = deque()
        self._ready = 0
        self.model_scheduler_memory = model_scheduler_memory
        self.runtime = None
        self._queue_region = None
        self._queue_pos = 0

    def attach(self, runtime) -> None:
        self.runtime = runtime
        if self.model_scheduler_memory:
            self._queue_region = runtime.machine.address_space.allocate_lines(
                "fcfs-queue", 64
            )

    def _touch_queue(self, cpu: Optional[int]) -> None:
        if self._queue_region is None or cpu is None:
            return
        region = self._queue_region
        self._queue_pos = (self._queue_pos + 1) % region.num_lines
        lines = np.asarray([region.first_line + self._queue_pos], dtype=np.int64)
        machine = self.runtime.machine
        machine.kernel_mode = True
        try:
            machine.touch(cpu, lines, write=True)
        finally:
            machine.kernel_mode = False

    def thread_ready(self, thread: ActiveThread) -> int:
        self._queue.append((thread, thread.ready_seq))
        self._ready += 1
        self._touch_queue(thread.last_cpu)
        return QUEUE_OP_COST

    def thread_blocked(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> int:
        return 0  # FCFS keeps no per-thread scheduling state

    def pick(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        while self._queue:
            thread, seq = self._queue.popleft()
            cost += QUEUE_OP_COST
            if thread.state is ThreadState.READY and thread.ready_seq == seq:
                self._ready -= 1
                self._touch_queue(cpu)
                return thread, cost
        return None, cost

    def has_runnable(self) -> bool:
        return self._ready > 0

    def idle_pick_cost(self, cpu: int) -> Optional[int]:
        # A pick on an empty queue pops nothing and costs nothing; with
        # stale entries still queued a pick would drain (mutate) them, so
        # quiescence requires the queue itself to be empty.
        if self._queue or self._ready:
            return None
        return 0

    # account_idle_picks: the base no-op is exact -- a failed FCFS pick
    # keeps no bookkeeping (no pick counter, no queue traffic).
