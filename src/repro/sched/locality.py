"""The locality-conscious scheduler (sections 4-5).

One :class:`LocalityScheduler` implements all of the paper's runtime
machinery; the policy (LFF vs CRT) is the injected priority scheme:

- a binary max-heap per processor, keyed by the scheme's priorities;
- threshold eviction: a popped thread whose expected footprint fell below
  ``threshold_lines`` is demoted to the single global FIFO queue, bounding
  heap sizes and "keeping the cost of elementary heap operations low";
- an idle processor "consults the global queue for threads to dispatch.
  If the queue is also empty, an idle processor steals a thread with the
  lowest priority from a neighbor to balance load";
- O(d) priority updates at context switches, delegated to the scheme, with
  the scheme's floating-point instruction count charged to the simulated
  clock;
- optionally, the scheduler's own data structures occupy simulated memory,
  so heap manipulation pollutes the cache the way it did on the real
  machine (this is what makes FCFS slightly *better* than the locality
  policies when the arrival order is already cache-optimal -- the photo
  1-cpu case).

An optional fairness escape hatch (section 7: "a practical scheduler must
provide an escape mechanism to bypass the default priority evaluation")
dispatches from the global FIFO every ``fairness_boost``-th pick.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.core.model import SharedStateModel
from repro.core.priorities import CRTScheme, LFFScheme, PriorityScheme
from repro.sched.base import Scheduler
from repro.sched.heap import PriorityHeap
from repro.threads.thread import ActiveThread, ThreadState

#: instruction cost of one FIFO queue operation
QUEUE_OP_COST = 5
#: fixed instruction cost of one heap push/pop, on top of depth
HEAP_OP_COST = 8
#: heap entries per cache line for the simulated-memory model
ENTRIES_PER_LINE = 2
#: an interval's miss reading above this multiple of the cache size is
#: implausible (even a pure-miss interval touching a region this many
#: times the cache would be pathological) and treated as a counter fault
MISS_CAP_FACTOR = 16
#: implausible readings tolerated before the scheduler stops trusting the
#: counters altogether and falls back to FCFS ordering
DEGRADE_AFTER = 3


class LocalityScheduler(Scheduler):
    """Per-cpu priority heaps + global queue + stealing, around a scheme."""

    def __init__(
        self,
        scheme_cls: Callable[..., PriorityScheme],
        threshold_lines: Optional[float] = None,
        model_scheduler_memory: bool = True,
        steal: bool = True,
        steal_max_footprint: Optional[float] = None,
        fairness_boost: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self._scheme_cls = scheme_cls
        #: None = 1/256 of the cache, resolved at attach time
        self.threshold_lines = threshold_lines
        self.model_scheduler_memory = model_scheduler_memory
        self.steal = steal
        #: None = 1/16 of the cache, resolved at attach time
        self.steal_max_footprint = steal_max_footprint
        self.fairness_boost = fairness_boost
        if name is not None:
            self.name = name
        self.runtime = None
        self.scheme: Optional[PriorityScheme] = None
        self.heaps: List[PriorityHeap] = []
        self._version_fns: List[Callable] = []
        self._global: Deque[Tuple[ActiveThread, int]] = deque()
        self._ready = 0
        self._picks = 0
        self._heap_regions = []
        self._entry_regions = []
        self._queue_region = None
        self._queue_pos = 0
        self.steals = 0
        self.demotions = 0
        self.compactions = 0
        #: implausible counter readings seen (negative or absurdly large)
        self.counter_anomalies = 0
        #: set once the counters are deemed untrustworthy: the scheduler
        #: then degrades gracefully to FCFS ordering via the global queue
        #: instead of acting on garbage priorities
        self.degraded = False
        self._miss_cap = None  # resolved at attach time

    def attach(self, runtime) -> None:
        self.runtime = runtime
        machine = runtime.machine
        num_cpus = machine.config.num_cpus
        model = SharedStateModel(machine.config.l2_lines)
        self.scheme = self._scheme_cls(model, runtime.graph, num_cpus)
        if self.steal_max_footprint is None:
            self.steal_max_footprint = machine.config.l2_lines / 16
        if self.threshold_lines is None:
            self.threshold_lines = max(1.0, machine.config.l2_lines / 256)
        self._miss_cap = MISS_CAP_FACTOR * machine.config.l2_lines
        self.heaps = [PriorityHeap() for _ in range(num_cpus)]
        # one validity closure per cpu, built once: _pop_heap runs per
        # context switch and must not allocate a fresh closure each time
        self._version_fns = [
            self._version_fn(cpu) for cpu in range(num_cpus)
        ]
        if self.model_scheduler_memory:
            space = machine.address_space
            # scheduler tables scale with the machine (they are sized for
            # the thread population a cache of this size can serve)
            self._heap_lines = max(16, machine.config.l2_lines // 16)
            self._entry_lines = max(16, machine.config.l2_lines // 16)
            queue_lines = max(8, machine.config.l2_lines // 128)
            self._heap_regions = [
                space.allocate_lines(f"sched-heap-cpu{i}", self._heap_lines)
                for i in range(num_cpus)
            ]
            self._queue_region = space.allocate_lines(
                "sched-global-queue", queue_lines
            )
            # the scheme's per-thread priority entries are memory too: one
            # line per two thread records, per cpu
            self._entry_regions = [
                space.allocate_lines(f"sched-entries-cpu{i}", self._entry_lines)
                for i in range(num_cpus)
            ]

    # -- simulated memory traffic of the scheduler itself --------------------

    def _touch_heap(self, heap_cpu: int, on_cpu: Optional[int] = None) -> None:
        """Touch the root-to-leaf path of ``heap_cpu``'s heap array, from
        the cache of the cpu doing the manipulation."""
        if not self.model_scheduler_memory:
            return
        if on_cpu is None:
            on_cpu = heap_cpu
        region = self._heap_regions[heap_cpu]
        pos = max(1, len(self.heaps[heap_cpu]))
        line_idxs = set()
        while pos >= 1:
            line_idxs.add((pos // ENTRIES_PER_LINE) % self._heap_lines)
            pos >>= 1
        lines = region.first_line + np.fromiter(
            sorted(line_idxs), dtype=np.int64, count=len(line_idxs)
        )
        self._kernel_touch(on_cpu, lines)

    def _touch_entries(self, cpu: int, tids, on_cpu: Optional[int] = None) -> None:
        """Touch the priority-entry records consulted or rewritten for
        ``tids`` in ``cpu``'s entry table."""
        if not self.model_scheduler_memory or not tids:
            return
        if on_cpu is None:
            on_cpu = cpu
        region = self._entry_regions[cpu]
        lines = region.first_line + (
            np.asarray(sorted(set(tids)), dtype=np.int64) // 2
        ) % self._entry_lines
        self._kernel_touch(on_cpu, np.unique(lines))

    def _touch_queue(self, cpu: int) -> None:
        """Touch the global queue's ring buffer slot."""
        if not self.model_scheduler_memory or cpu is None:
            return
        region = self._queue_region
        self._queue_pos = (self._queue_pos + 1) % region.num_lines
        lines = np.asarray([region.first_line + self._queue_pos], dtype=np.int64)
        self._kernel_touch(cpu, lines)

    def _kernel_touch(self, cpu: int, lines: np.ndarray) -> None:
        """Scheduler data-structure traffic runs in supervisor mode, so
        user-mode-only monitors (e.g. the CML device) can exclude it."""
        machine = self.runtime.machine
        machine.kernel_mode = True
        try:
            machine.touch(cpu, lines, write=True)
        finally:
            machine.kernel_mode = False

    # -- scheduler callbacks ---------------------------------------------------

    def _sanitize_misses(self, misses: int, suspect: bool = False) -> int:
        """Clamp an interval miss reading to the plausible range.

        The counters are hints: a reading outside [0, cap] (negative from
        a wrap glitch, enormous from saturation or a stuck register) must
        not be allowed to poison the footprint model or crash priority
        arithmetic.  Repeated anomalies flip the scheduler into degraded
        FCFS mode -- correctness is never at stake, only locality.

        ``suspect`` marks a reading the counter view *already* clamped
        (wrapped deltas, a physically impossible hits > refs pair from a
        stuck register, a mid-interval PCR reprogram).  Those arrive
        in-range -- typically as zero -- so the range check alone would
        never count them, and a register stuck in a glitched state could
        feed the scheduler garbage forever without ever tripping the
        degraded-FCFS fallback.  A clamped reading is an anomaly no
        matter which layer did the clamping: both paths now count toward
        ``counter_anomalies`` consistently.
        """
        if 0 <= misses <= self._miss_cap:
            if not suspect:
                return misses
        self.counter_anomalies += 1
        if self.counter_anomalies >= DEGRADE_AFTER:
            self.degraded = True
        return min(max(misses, 0), self._miss_cap)

    def _interval_suspect(self, cpu: int) -> bool:
        """Whether ``cpu``'s view flagged the just-ended interval."""
        runtime = self.runtime
        if runtime is None:
            return False
        view = runtime.counter_view(cpu)
        return view is not None and bool(view.last_overflow_suspect)

    def thread_ready(self, thread: ActiveThread) -> int:
        cost = QUEUE_OP_COST
        scheme = self.scheme
        placed = False
        cpu_hint = thread.last_cpu
        if self.degraded:
            # Counters are untrusted: skip priority placement entirely and
            # serve everyone from the global FIFO, FCFS-style.
            self._global.append((thread, thread.ready_seq))
            self._touch_queue(cpu_hint)
            self._ready += 1
            return cost
        for cpu in range(len(self.heaps)):
            entry = scheme.entry(cpu, thread.tid)
            if entry is None:
                continue
            self._touch_entries(cpu, [thread.tid], on_cpu=cpu_hint)
            footprint = scheme.current_footprint(cpu, thread.tid)
            cost += 2
            if footprint >= self.threshold_lines:
                cost += HEAP_OP_COST + self.heaps[cpu].push(
                    thread, entry.priority, entry.version
                )
                if cpu_hint is not None:
                    self._touch_heap(cpu, on_cpu=cpu_hint)
                placed = True
        if not placed:
            self._global.append((thread, thread.ready_seq))
            self._touch_queue(cpu_hint)
        self._ready += 1
        return cost

    def thread_dispatched(self, cpu: int, thread: ActiveThread) -> int:
        self.scheme.on_dispatch(cpu, thread.tid)
        return 0

    def thread_blocked(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> int:
        misses = self._sanitize_misses(
            misses, suspect=self._interval_suspect(cpu)
        )
        scheme = self.scheme
        flops_before = scheme.cost.blocking + scheme.cost.dependent
        scheme.on_block(cpu, thread.tid, misses)
        cost = (scheme.cost.blocking + scheme.cost.dependent) - flops_before
        updated = [thread.tid] + [
            dep for dep, _q in self.runtime.graph.dependents(thread.tid)
        ]
        self._touch_entries(cpu, updated)
        # Re-insert READY dependents whose priorities just changed so their
        # heap position reflects the new value (old entries go stale).
        for dep_tid, _q in self.runtime.graph.dependents(thread.tid):
            dep = self.runtime.threads.get(dep_tid)
            if dep is None or dep.state is not ThreadState.READY:
                continue
            entry = scheme.entry(cpu, dep_tid)
            if entry is None:
                continue
            if scheme.current_footprint(cpu, dep_tid) >= self.threshold_lines:
                cost += HEAP_OP_COST + self.heaps[cpu].push(
                    dep, entry.priority, entry.version
                )
            else:
                # The version bump above just invalidated any heap entry
                # the dependent had here; if it is not worth a heap slot it
                # must still be findable, so demote it to the global queue.
                self._global.append((dep, dep.ready_seq))
                cost += QUEUE_OP_COST
        if finished:
            scheme.forget(thread.tid)
        return cost

    def pick(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        self._picks += 1
        cost = 0
        if self.degraded:
            # FCFS fallback: global queue first, then drain whatever is
            # left in the heaps from before degradation, then steal.
            thread, fifo_cost = self._pop_global(cpu)
            cost += fifo_cost
            if thread is not None:
                self._ready -= 1
                return thread, cost
        if (
            self.fairness_boost
            and self._picks % self.fairness_boost == 0
        ):
            thread, fifo_cost = self._pop_global(cpu)
            cost += fifo_cost
            if thread is not None:
                self._ready -= 1
                return thread, cost
        thread, heap_cost = self._pop_heap(cpu)
        cost += heap_cost
        if thread is not None:
            self._ready -= 1
            return thread, cost
        thread, fifo_cost = self._pop_global(cpu)
        cost += fifo_cost
        if thread is not None:
            self._ready -= 1
            return thread, cost
        if self.steal:
            thread, steal_cost = self._steal(cpu)
            cost += steal_cost
            if thread is not None:
                self._ready -= 1
                return thread, cost
        return None, cost

    def _version_fn(self, cpu: int):
        scheme = self.scheme
        def current_version(thread: ActiveThread):
            entry = scheme.entry(cpu, thread.tid)
            return None if entry is None else entry.version
        return current_version

    def _pop_heap(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        heap = self.heaps[cpu]
        version_fn = self._version_fns[cpu]
        # bound heap sizes (section 5): when dead entries dominate, compact
        if len(heap) > 4 * max(16, self._ready):
            cost += len(heap)
            heap.compact(version_fn)
            self.compactions += 1
        while True:
            entry, pops = heap.pop_valid(version_fn)
            cost += pops * HEAP_OP_COST
            if entry is None:
                return None, cost
            footprint = self.scheme.current_footprint(cpu, entry.thread.tid)
            cost += 2
            if footprint < self.threshold_lines:
                # Demote: not enough state left here to be worth affinity.
                self._global.append((entry.thread, entry.seq))
                self._touch_queue(cpu)
                self.demotions += 1
                cost += QUEUE_OP_COST
                continue
            self._touch_heap(cpu)
            return entry.thread, cost

    def _pop_global(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        while self._global:
            thread, seq = self._global.popleft()
            cost += QUEUE_OP_COST
            if thread.state is ThreadState.READY and thread.ready_seq == seq:
                self._touch_queue(cpu)
                return thread, cost
        return None, cost

    def _steal(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        """Steal the lowest-priority thread from a neighbour's heap.

        Stealing the *lowest* priority does the least locality damage (the
        paper's rule); the footprint cap extends that logic: a thread with
        a large footprint on its home cpu is worth more waiting for than
        stealing, so an idle cpu leaves it and spins instead.
        """
        cost = 0
        num_cpus = len(self.heaps)
        for offset in range(1, num_cpus):
            victim = (cpu + offset) % num_cpus
            heap = self.heaps[victim]
            cost += max(1, len(heap))  # O(n) scan for the minimum
            entry = heap.min_valid(self._version_fns[victim])
            if entry is None:
                continue
            footprint = self.scheme.current_footprint(
                victim, entry.thread.tid
            )
            if footprint > self.steal_max_footprint:
                continue  # too much cached state to sacrifice
            self.steals += 1
            return entry.thread, cost
        return None, cost

    def has_runnable(self) -> bool:
        return self._ready > 0

    def idle_pick_cost(self, cpu: int) -> Optional[int]:
        """Closed-form failed-pick cost in idle quiescence.

        With no READY threads anywhere, the global queue empty, and this
        cpu's own heap fully drained (its previous failed pick popped any
        stale entries), :meth:`pick` provably touches nothing but
        ``_picks``: the fairness-boost and fallback ``_pop_global`` calls
        cost 0 on an empty deque, ``_pop_heap`` pops nothing from an
        empty heap (and cannot trigger compaction), and the steal scan
        reads the neighbours' heaps without popping, charging
        ``max(1, len(heap))`` per victim.  That scan cost is the value
        returned; heap lengths cannot change while no thread runs a
        scheduler callback, so the certificate stays valid for the whole
        parked span and is re-computed by the engine every virtual step
        anyway (see repro.sim.events).
        """
        if self._ready or self._global or len(self.heaps[cpu]):
            return None
        if not self.steal:
            return 0
        heaps = self.heaps
        num_cpus = len(heaps)
        cost = 0
        for offset in range(1, num_cpus):
            size = len(heaps[(cpu + offset) % num_cpus])
            cost += size if size > 1 else 1
        return cost

    def account_idle_picks(self, count: int) -> None:
        # the only bookkeeping a quiescent failed pick performs
        self._picks += count


def make_lff(**kwargs) -> LocalityScheduler:
    """Largest Footprint First scheduler (section 4.1)."""
    return LocalityScheduler(LFFScheme, name="lff", **kwargs)


def make_crt(**kwargs) -> LocalityScheduler:
    """Smallest cache-reload-ratio scheduler (section 4.2)."""
    return LocalityScheduler(CRTScheme, name="crt", **kwargs)
