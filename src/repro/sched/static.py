"""Static initial mapping with dynamic load balancing (related work [15]).

The paper's related-work section cites Markatos & LeBlanc's
"memory-conscious scheduling policy [which] suggests a combination of a
static initial mapping for locality with dynamic load balancing to
improve performance of fine-grained threads".  This scheduler implements
that alternative so the counter/annotation approach can be compared
against it:

- each thread is assigned a *home* processor round-robin at creation and
  always re-queues there (the static mapping -- threads keep returning to
  the same cache without any model);
- an idle processor with an empty home queue takes work from the longest
  other queue (the dynamic load balancing).

No counters, no annotations, no footprint model: everything it knows is
the creation order.  Where it wins (tasks-like stable thread pools) it
shows how much of LFF's benefit is plain stickiness; where it loses
(sharing-structured workloads, uneven thread lifetimes) it shows what the
model and annotations add.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.sched.base import Scheduler
from repro.threads.thread import ActiveThread, ThreadState

#: instruction cost of one queue operation
QUEUE_OP_COST = 5


class StaticScheduler(Scheduler):
    """Round-robin home assignment + per-cpu FIFOs + longest-queue balance."""

    name = "static"

    def __init__(self, rebalance: bool = True) -> None:
        self.rebalance = rebalance
        self.runtime = None
        self._queues: List[Deque[Tuple[ActiveThread, int]]] = []
        self._home = {}
        self._next_home = 0
        self._ready = 0
        self.migrations = 0

    def attach(self, runtime) -> None:
        self.runtime = runtime
        num_cpus = runtime.machine.config.num_cpus
        self._queues = [deque() for _ in range(num_cpus)]

    def thread_created(self, thread: ActiveThread) -> int:
        self._home[thread.tid] = self._next_home
        self._next_home = (self._next_home + 1) % len(self._queues)
        return 0

    def thread_ready(self, thread: ActiveThread) -> int:
        home = self._home.get(thread.tid, 0)
        self._queues[home].append((thread, thread.ready_seq))
        self._ready += 1
        return QUEUE_OP_COST

    def thread_blocked(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> int:
        if finished:
            self._home.pop(thread.tid, None)
        return 0

    def pick(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        thread, pop_cost = self._pop(self._queues[cpu])
        cost += pop_cost
        if thread is not None:
            self._ready -= 1
            return thread, cost
        if self.rebalance:
            victim = max(
                range(len(self._queues)), key=lambda i: len(self._queues[i])
            )
            cost += len(self._queues)  # the balance scan
            if victim != cpu:
                thread, pop_cost = self._pop(self._queues[victim])
                cost += pop_cost
                if thread is not None:
                    # the thread moves home: stickiness follows the balance
                    self._home[thread.tid] = cpu
                    self.migrations += 1
                    self._ready -= 1
                    return thread, cost
        return None, cost

    def _pop(self, queue) -> Tuple[Optional[ActiveThread], int]:
        cost = 0
        while queue:
            thread, seq = queue.popleft()
            cost += QUEUE_OP_COST
            if thread.state is ThreadState.READY and thread.ready_seq == seq:
                return thread, cost
        return None, cost

    def has_runnable(self) -> bool:
        return self._ready > 0
