"""A max-priority heap with lazy deletion, one per processor.

Both locality policies "use the same binary heap data structure associated
with each processor" (section 5).  Entries are invalidated lazily: each
carries the thread's readiness sequence number and the priority-entry
version at insertion time; a popped entry is discarded unless both still
match and the thread is READY.  This gives O(log n) pushes/pops without
ever searching the heap, at the cost of occasional dead entries -- the
standard technique, and the reason the scheduler must be able to re-push a
thread whose priority changed (dependency updates) instead of decrease-key.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.threads.errors import HeapCorruption
from repro.threads.thread import ActiveThread, ThreadState

#: maps a thread to the live version of its priority entry (None if absent)
VersionFn = Callable[[ActiveThread], Optional[int]]


class HeapEntry:
    """One heap slot.  Ordered by descending priority (min-heap on the
    negated key), with an insertion counter as a deterministic tiebreak.

    A ``__slots__`` class rather than a dataclass: the scheduler allocates
    one per push, and slot storage plus a plain tuple ``__lt__`` keep the
    per-switch heap work allocation-light (the ``heap_churn`` benchmark
    guards this path).  Comparison follows the old dataclass semantics:
    only ``sort_key`` participates.
    """

    __slots__ = ("sort_key", "thread", "priority", "seq", "version")

    def __init__(
        self,
        sort_key: Tuple[float, int],
        thread: ActiveThread,
        priority: float,
        seq: int,
        version: int,
    ) -> None:
        self.sort_key = sort_key
        self.thread = thread
        self.priority = priority
        self.seq = seq
        self.version = version

    def __lt__(self, other: "HeapEntry") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "HeapEntry") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "HeapEntry") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "HeapEntry") -> bool:
        return self.sort_key >= other.sort_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeapEntry):
            return NotImplemented
        return self.sort_key == other.sort_key

    def __hash__(self) -> int:
        return hash(self.sort_key)

    def __repr__(self) -> str:
        return (
            f"HeapEntry(thread={self.thread!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, version={self.version!r})"
        )


class PriorityHeap:
    """Max-heap of threads keyed by scheduling priority."""

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._counter = 0
        self.pushes = 0
        self.pops = 0
        #: back-map: tid -> number of entries (live or dead) currently in
        #: the heap array.  Maintained on every push/pop/compact so
        #: :meth:`validate` can cross-check the array against it.
        self._by_tid: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, thread: ActiveThread, priority: float, version: int
    ) -> int:
        """Insert an entry; returns the heap depth (for cost accounting)."""
        self._counter += 1
        entry = HeapEntry(
            sort_key=(-priority, self._counter),
            thread=thread,
            priority=priority,
            seq=thread.ready_seq,
            version=version,
        )
        heapq.heappush(self._heap, entry)
        self.pushes += 1
        self._by_tid[thread.tid] = self._by_tid.get(thread.tid, 0) + 1
        return max(1, len(self._heap)).bit_length()

    def pop_valid(
        self, current_version: "VersionFn"
    ) -> Tuple[Optional[HeapEntry], int]:
        """Pop the highest-priority *valid* entry.

        ``current_version(thread)`` maps a thread to the live version of
        its priority entry (or None if it has none).  Returns
        (entry or None, number of pops performed) -- the pop count feeds
        cost accounting.

        Back-map audit note: every entry popped here was counted by
        :meth:`push` (or recounted by :meth:`compact`), so its tid's
        back-map count must be positive when the entry leaves the array.
        A zero count would mean an entry the back-map never saw -- drift
        that :meth:`validate` would only catch at the *next* call --
        so decrementing through zero raises :class:`HeapCorruption`
        immediately instead of silently re-inserting a bogus count.
        """
        pops = 0
        heap = self._heap
        by_tid = self._by_tid
        heappop = heapq.heappop
        while heap:
            entry = heappop(heap)
            pops += 1
            thread = entry.thread
            tid = thread.tid
            remaining = by_tid.get(tid, 0) - 1
            if remaining > 0:
                by_tid[tid] = remaining
            elif remaining == 0:
                by_tid.pop(tid, None)
            else:
                raise HeapCorruption(
                    f"popped heap entry for tid {tid} but the back-map "
                    f"holds no entries for it: push/pop accounting drifted"
                )
            if (
                thread.state is ThreadState.READY
                and entry.seq == thread.ready_seq
                and current_version(thread) == entry.version
            ):
                self.pops += pops
                return entry, pops
        self.pops += pops
        return None, pops

    def _is_valid(self, entry: HeapEntry, current_version: "VersionFn") -> bool:
        thread = entry.thread
        if thread.state is not ThreadState.READY:
            return False
        if entry.seq != thread.ready_seq:
            return False
        return current_version(thread) == entry.version

    def min_valid(self, current_version: "VersionFn") -> Optional[HeapEntry]:
        """The lowest-priority valid entry (an O(n) scan, used only by the
        rare work-stealing path: the paper steals "a thread with the
        lowest priority from a neighbor")."""
        best: Optional[HeapEntry] = None
        for entry in self._heap:
            if not self._is_valid(entry, current_version):
                continue
            if best is None or entry.priority < best.priority:
                best = entry
        return best

    def compact(self, current_version: "VersionFn") -> int:
        """Drop dead entries in place; returns the surviving count.
        Called when dead entries accumulate, to bound heap size
        (section 5's heap-size concern)."""
        live = [e for e in self._heap if self._is_valid(e, current_version)]
        heapq.heapify(live)
        self._heap = live
        self._by_tid = {}
        for entry in live:
            tid = entry.thread.tid
            self._by_tid[tid] = self._by_tid.get(tid, 0) + 1
        return len(live)

    def entries_for(self, tid: int) -> int:
        """Entries (live or dead) a thread currently has in the heap,
        from the back-map -- O(1), no array scan."""
        return self._by_tid.get(tid, 0)

    def validate(self) -> None:
        """Check the heap's structural invariants; raises
        :class:`HeapCorruption` (a typed :class:`InvariantViolation`
        subclass, never a bare ``AssertionError``) on the first breach.

        Three properties must always hold, no matter how corrupted the
        priorities fed to :meth:`push` were (they are hints):

        - the array satisfies the binary-heap order: every parent's sort
          key is <= both children's (min-heap on the negated priority);
        - every entry's sort key is consistent with its recorded priority;
        - the per-thread back-map (:meth:`entries_for`) agrees exactly
          with a recount of the heap array: same tids, same counts.
        """
        heap = self._heap
        for i, entry in enumerate(heap):
            if entry.sort_key[0] != -entry.priority:
                raise HeapCorruption(
                    f"heap entry {i} sort key {entry.sort_key} inconsistent "
                    f"with priority {entry.priority}"
                )
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(heap) and heap[i].sort_key > heap[child].sort_key:
                    raise HeapCorruption(
                        f"heap order violated at index {i}: parent "
                        f"{heap[i].sort_key} > child {heap[child].sort_key}"
                    )
        recount: Dict[int, int] = {}
        for entry in heap:
            tid = entry.thread.tid
            recount[tid] = recount.get(tid, 0) + 1
        if recount != self._by_tid:
            drift = sorted(
                set(recount) ^ set(self._by_tid)
            ) or sorted(
                tid for tid in recount if recount[tid] != self._by_tid[tid]
            )
            raise HeapCorruption(
                f"heap back-map drifted from array contents for tid(s) "
                f"{drift}: array has {recount}, back-map says {self._by_tid}"
            )

    def __iter__(self) -> Iterator[HeapEntry]:
        return iter(self._heap)
