"""The Sather typechecker workload (Figure 7's other anomaly).

The paper: "The Sather typechecker thread is characterized by a fairly
large working set -- the type graph including the subtyping information
for the entire compiled source tree ...  The unblocking thread initially
experiences a very intensive burst of misses as the type graph is brought
into cache.  The typechecker thread walks the abstract machine tree and
performs semantic analysis for each node with the help of the type graph.
The abstract tree is traversed in the order of creation which causes long
run lengths and high clustering of cache references ...  After the
initial burst, the typechecker thread experiences a relatively small
number of misses per instruction" (section 3.4).

Reproduced mechanics:

- the type graph lives in a compiler arena of same-colored pages (arena
  allocators hand out cache-aligned slabs), so its pages pile into a few
  cache bins and repeatedly conflict -- misses that do not grow the
  footprint;
- the AST is traversed strictly in creation order (long sequential runs);
- each AST node consults several type-graph nodes (the real subtype walk
  over an actual randomly generated subtyping DAG), with heavy Compute per
  node, so steady-state MPI is low after the burst.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Compute, Touch
from repro.workloads.base import MonitoredApp


class TypecheckerLike(MonitoredApp):
    """AST walk in creation order against an arena-allocated type graph."""

    name = "typechecker"
    language = "sather"

    def __init__(
        self,
        num_types: int = 1200,
        ast_nodes: int = 9000,
        arena_span_pages: int = 24,
        compute_per_node: int = 400,
        seed: int = 51,
    ):
        self.num_types = num_types
        self.ast_nodes = ast_nodes
        self.arena_span_pages = arena_span_pages
        self.compute_per_node = compute_per_node
        self.seed = seed
        self.type_pages: List[Region] = []
        self.ast_region: Optional[Region] = None
        self.parents: Optional[np.ndarray] = None
        self.ast_types: Optional[np.ndarray] = None

    def setup(self, runtime) -> None:
        rng = np.random.default_rng(self.seed)
        # A real subtyping forest: each type's supertype precedes it.
        self.parents = np.array(
            [-1] + [int(rng.integers(i)) for i in range(1, self.num_types)],
            dtype=np.int64,
        )
        self.ast_types = rng.integers(
            0, self.num_types, size=self.ast_nodes
        ).astype(np.int64)
        space = runtime.machine.address_space
        cache_pages = runtime.machine.config.l2_bytes // space.page_bytes
        # The compiler arena: type-graph slabs at cache-aligned strides,
        # all preferring the same bin color.
        for i in range(self.arena_span_pages):
            self.type_pages.append(
                space.allocate(f"typegraph-slab-{i}", space.page_bytes)
            )
            if i < self.arena_span_pages - 1:
                space.allocate(
                    f"typegraph-gap-{i}", (cache_pages - 1) * space.page_bytes
                )
        self.ast_region = runtime.alloc_lines("ast", self.ast_nodes // 2)

    def _type_lines(self, type_id: int) -> np.ndarray:
        """The line holding one type node, inside its arena slab."""
        lines_per_page = self.type_pages[0].num_lines
        slot = type_id % (len(self.type_pages) * lines_per_page)
        page, offset = divmod(slot, lines_per_page)
        return self.type_pages[page].lines()[offset : offset + 1]

    def init_body(self) -> Generator:
        for region in self.type_pages:
            yield Touch(region.lines(), write=True)
        yield Touch(self.ast_region.lines(), write=True)
        yield Compute(self.num_types * 50)

    def work_body(self) -> Generator:
        ast_lines = self.ast_region.lines()
        # The initial burst: the whole type graph is brought in.
        for region in self.type_pages:
            yield Touch(region.lines())
        yield Compute(self.num_types * 4)
        # Then the creation-order AST walk, a subtype chase per node.
        for node in range(self.ast_nodes):
            ast_line = node * ast_lines.size // self.ast_nodes
            yield Touch(ast_lines[ast_line : ast_line + 1])
            # walk the real subtype chain to the root
            t = int(self.ast_types[node])
            chain = []
            while t >= 0:
                chain.append(self._type_lines(t))
                t = int(self.parents[t])
            yield Touch(np.concatenate(chain))
            yield Compute(self.compute_per_node)

    def state_regions(self) -> List[Region]:
        return list(self.type_pages) + [self.ast_region]
