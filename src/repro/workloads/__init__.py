"""Workloads: the applications of the paper's Tables 2 and 4.

Performance applications (Figures 8-9, Table 5): ``tasks``, ``merge``,
``photo``, ``tsp``.  Model-accuracy applications (Figures 5-7): the
SPLASH-2-like trio (``barnes``, ``fmm``, ``ocean``), the Sather trio
(``merge``, ``photo``, ``tsp``), and the two anomalous apps
(``typechecker``, ``raytrace``).
"""

from repro.workloads.base import MonitoredApp, Workload
from repro.workloads.mergesort import MergeMonitored, MergeWorkload
from repro.workloads.params import MergeParams, PhotoParams, TasksParams, TspParams
from repro.workloads.photo import PhotoMonitored, PhotoWorkload
from repro.workloads.randomwalk import (
    WalkPlan,
    build_walk,
    sleeper_state_lines,
    walk_batches,
)
from repro.workloads.raytrace_like import RaytraceLike
from repro.workloads.server import ServerParams, ServerWorkload
from repro.workloads.splash import BarnesLike, FmmLike, OceanLike
from repro.workloads.tasks import TasksWorkload
from repro.workloads.tsp import TspMonitored, TspWorkload
from repro.workloads.typechecker import TypecheckerLike

__all__ = [
    "BarnesLike",
    "FmmLike",
    "MergeMonitored",
    "MergeParams",
    "MergeWorkload",
    "MonitoredApp",
    "OceanLike",
    "PhotoMonitored",
    "PhotoParams",
    "PhotoWorkload",
    "RaytraceLike",
    "ServerParams",
    "ServerWorkload",
    "TasksParams",
    "TasksWorkload",
    "TspMonitored",
    "TspParams",
    "TspWorkload",
    "TypecheckerLike",
    "WalkPlan",
    "Workload",
    "build_walk",
    "sleeper_state_lines",
    "walk_batches",
]

#: the four performance applications, by paper name
PERFORMANCE_WORKLOADS = {
    "tasks": TasksWorkload,
    "merge": MergeWorkload,
    "photo": PhotoWorkload,
    "tsp": TspWorkload,
    "server": ServerWorkload,
}

#: the monitored applications for the Figure 5/6 accuracy runs
MONITORED_APPS = {
    "barnes": BarnesLike,
    "fmm": FmmLike,
    "ocean": OceanLike,
    "merge": MergeMonitored,
    "photo": PhotoMonitored,
    "tsp": TspMonitored,
}

#: the Figure 7 anomalous applications
ANOMALOUS_APPS = {
    "typechecker": TypecheckerLike,
    "raytrace": RaytraceLike,
}
