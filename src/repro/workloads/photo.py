"""`photo`: a softening filter over an RGB pixmap (paper Tables 2 and 4).

"A separate thread is created to retouch each row of pixels.  During the
course of computation, a thread accesses the states of several 'neighbor'
rows.  The annotations indicate that the closer the corresponding row
numbers, the more prefetched state is reused" (section 5).

This is the workload where *both* kinds of information matter: without
annotations LFF recovers only ~41% of the miss elimination and ~53% of the
speedup.  It is also the workload where FCFS on one processor "happens to
be very well suited for cache reuse" (creation order = row order, and
adjacent rows overlap), so the locality policies' extra data-structure
traffic makes them marginally *worse* there (Table 5: -1% misses, 0.97x).

The filter itself is real: a 3x3 box blur applied to an actual uint8
array, row by row, by the owning thread.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Compute, SemPost, SemWait, Touch
from repro.threads.sync import Semaphore
from repro.workloads.base import MonitoredApp, Workload
from repro.workloads.params import PhotoParams

#: bytes per pixel (r, g, b)
PIXEL_BYTES = 3


class PhotoWorkload(Workload):
    """One thread per pixmap row, annotated by row distance."""

    name = "photo"

    def __init__(
        self,
        params: PhotoParams = PhotoParams(),
        annotate: bool = True,
        creation_order: str = "row",
    ):
        if creation_order not in ("row", "tiled"):
            raise ValueError("creation_order must be 'row' or 'tiled'")
        self.params = params
        self.annotate = annotate
        #: 'row' = threads created in row order (the paper's layout: FCFS
        #: is then near-optimal on one cpu); 'tiled' = strided creation, so
        #: neighbouring rows stay queued and the annotation-driven banding
        #: mechanism can cluster them per-cpu on the SMP (ablation)
        self.creation_order = creation_order
        self.image: Optional[np.ndarray] = None
        self.output: Optional[np.ndarray] = None
        self.pixmap: Optional[Region] = None
        self.out_region: Optional[Region] = None
        self.row_tids: List[int] = []
        self._row_done: List[Semaphore] = []

    def _row_lines(self, region: Region, row: int) -> np.ndarray:
        p = self.params
        row_bytes = p.width * PIXEL_BYTES
        first = (row * row_bytes) // region.line_bytes
        count = -(-row_bytes // region.line_bytes)
        return region.line_slice(first, count)

    def build(self, runtime) -> None:
        p = self.params
        rng = np.random.default_rng(p.image_seed)
        self.image = rng.integers(
            0, 256, size=(p.height, p.width, PIXEL_BYTES), dtype=np.uint8
        )
        self.output = np.zeros_like(self.image)
        row_bytes = p.width * PIXEL_BYTES
        self.pixmap = runtime.alloc("photo-pixmap", p.height * row_bytes)
        self.out_region = runtime.alloc("photo-output", p.height * row_bytes)
        self._row_done = [
            Semaphore(0, name=f"row-done-{r}") for r in range(p.height)
        ]

        if self.creation_order == "row":
            order = list(range(p.height))
        else:
            stride = max(1, p.height // 64)
            order = [
                row
                for start in range(stride)
                for row in range(start, p.height, stride)
            ]
        tid_by_row = {}
        for row in order:
            tid_by_row[row] = runtime.at_create(
                lambda row=row: self._row_body(row), name=f"photo-row-{row}"
            )
        self.row_tids = [tid_by_row[row] for row in range(p.height)]
        if self.annotate:
            self._annotate(runtime)

    def _annotate(self, runtime) -> None:
        """Annotate by true window overlap: rows ``i`` and ``j`` read the
        bands ``[i-halo, i+halo]`` and ``[j-halo, j+halo]``, which overlap
        for ``|i-j| <= 2*halo``; the shared fraction of a thread's state is
        the overlap over the window size -- "the closer the corresponding
        row numbers, the more prefetched state is reused"."""
        p = self.params
        window = 2 * p.halo + 1
        for i, tid in enumerate(self.row_tids):
            for d in range(1, 2 * p.halo + 1):
                q = (window - d) / window
                if i - d >= 0:
                    runtime.at_share(tid, self.row_tids[i - d], q)
                    runtime.at_share(self.row_tids[i - d], tid, q)
                if i + d < p.height:
                    runtime.at_share(tid, self.row_tids[i + d], q)
                    runtime.at_share(self.row_tids[i + d], tid, q)

    def _row_body(self, row: int) -> Generator:
        """Load own row, publish it, then gather neighbours as they become
        ready.

        Each neighbour gather can block on the neighbour's done-semaphore,
        so a row thread is rescheduled several times mid-computation --
        where it resumes decides whether its already-loaded window is still
        cached.  This is the structure behind the paper's photo result:
        FCFS scatters the resumptions across processors while the locality
        policies bring each thread back to its window.
        """
        p = self.params
        for _ in range(p.passes):
            # Phase 1: load and preprocess this thread's own row.
            yield Touch(self._row_lines(self.pixmap, row))
            yield Compute(p.compute_per_row // 2)
            readers = len(self._window_rows(row)) - 1
            for _i in range(readers):
                yield SemPost(self._row_done[row])
            # Phase 2: gather each neighbour row once it is published.
            gathered = [self.image[row].astype(np.uint16)]
            for other in self._window_rows(row):
                if other == row:
                    continue
                yield SemWait(self._row_done[other])
                yield Touch(self._row_lines(self.pixmap, other))
                gathered.append(self.image[other].astype(np.uint16))
            # The real softening filter: mean over the gathered window.
            window = np.stack(gathered)
            self.output[row] = (window.sum(axis=0) // window.shape[0]).astype(
                np.uint8
            )
            yield Compute(p.compute_per_row)
            yield Touch(self._row_lines(self.out_region, row), write=True)

    def _window_rows(self, row: int) -> List[int]:
        """Rows inside this thread's filter window, own row included."""
        p = self.params
        lo = max(0, row - p.halo)
        hi = min(p.height - 1, row + p.halo)
        return list(range(lo, hi + 1))


class PhotoMonitored(MonitoredApp):
    """The photo work thread for Figures 5-6: retouches a strided subset
    of rows (its share of a band-partitioned image), revisiting each band
    twice -- moderately scattered access, the Sather-app regime."""

    name = "photo"
    language = "sather"

    def __init__(self, width: int = 1024, height: int = 512, stride: int = 4):
        self.width = width
        self.height = height
        self.stride = stride
        self.pixmap: Optional[Region] = None
        self.out_region: Optional[Region] = None

    def setup(self, runtime) -> None:
        row_bytes = self.width * PIXEL_BYTES
        self.pixmap = runtime.alloc("photo-pixmap", self.height * row_bytes)
        self.out_region = runtime.alloc("photo-output", self.height * row_bytes)

    def init_body(self) -> Generator:
        yield Touch(self.pixmap.lines(), write=True)
        yield Compute(self.height * self.width // 16)

    def _row_lines(self, region: Region, row: int) -> np.ndarray:
        row_bytes = self.width * PIXEL_BYTES
        first = (row * row_bytes) // region.line_bytes
        count = -(-row_bytes // region.line_bytes)
        return region.line_slice(first, count)

    def work_body(self) -> Generator:
        for sweep in range(2):
            for row in range(sweep % self.stride, self.height, self.stride):
                lo, hi = max(0, row - 1), min(self.height - 1, row + 1)
                lines = np.concatenate(
                    [self._row_lines(self.pixmap, r) for r in range(lo, hi + 1)]
                )
                yield Touch(lines)
                yield Compute(self.width)
                yield Touch(self._row_lines(self.out_region, row), write=True)

    def state_regions(self) -> List[Region]:
        return [self.pixmap, self.out_region]
