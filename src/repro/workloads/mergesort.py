"""Parallel mergesort -- the paper's running annotation example.

The code fragment in section 2.3 splits the input into two sublists sorted
by child threads, then merges in the parent; the annotations

    at_share(tid_l, at_self(), 1.0)
    at_share(tid_r, at_self(), 1.0)

record that each child's state is fully contained in the parent's.  The
paper's measured configuration (Table 4): 100,000 uniformly distributed
elements, insertion sort below 100 elements, 1024 threads; speedup comes
"almost entirely through user annotations: very light-weight threads are
created to perform a single operation, but substantial locality across
threads exists for any path in a task tree from the root to the leafs"
(section 5).

The sort is real: a shared numpy array is actually sorted, and the
simulated touches cover exactly the slices each thread reads and writes.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Acquire, Compute, Join, Release, Touch
from repro.threads.sync import Mutex
from repro.workloads.base import MonitoredApp, Workload
from repro.workloads.params import MergeParams

#: 8-byte elements, 64-byte lines
ELEMENTS_PER_LINE = 8


def _slice_lines(region: Region, lo: int, hi: int) -> np.ndarray:
    """Virtual lines backing elements [lo, hi) of the array region."""
    first = lo // ELEMENTS_PER_LINE
    last = (hi - 1) // ELEMENTS_PER_LINE
    return region.line_slice(first, last - first + 1)


class MergeWorkload(Workload):
    """Thread-per-node parallel mergesort with full sharing annotations."""

    name = "merge"

    def __init__(
        self, params: MergeParams = MergeParams(), annotate: bool = True
    ):
        self.params = params
        self.annotate = annotate  # off for the annotation ablation
        self.data: Optional[np.ndarray] = None
        self.array: Optional[Region] = None
        self.threads_created = 0
        #: the runtime allocator's lock: merge buffers are heap-allocated,
        #: and allocation is serialised exactly as in the paper's tsp note
        self.alloc_mutex = Mutex(name="merge-allocator")

    def build(self, runtime) -> None:
        p = self.params
        rng = np.random.default_rng(p.seed)
        self.data = rng.integers(0, 2**31, size=p.num_elements, dtype=np.int64)
        self.array = runtime.alloc("merge-array", p.num_elements * 8)
        runtime.at_create(
            lambda: self._sort_body(runtime, 0, p.num_elements), name="merge-root"
        )

    def _sort_body(self, runtime, lo: int, hi: int) -> Generator:
        p = self.params
        size = hi - lo
        lines = _slice_lines(self.array, lo, hi)
        if size <= p.leaf_cutoff:
            yield Touch(lines)
            self.data[lo:hi].sort()  # the real leaf sort
            yield Compute(size * p.compute_per_element)
            yield Touch(lines, write=True)
            return
        mid = (lo + hi) // 2
        tid_l = runtime.at_create(
            lambda: self._sort_body(runtime, lo, mid), name=f"merge-{lo}-{mid}"
        )
        tid_r = runtime.at_create(
            lambda: self._sort_body(runtime, mid, hi), name=f"merge-{mid}-{hi}"
        )
        self.threads_created += 2
        if self.annotate:
            me = runtime.at_self()
            runtime.at_share(tid_l, me, 1.0)
            runtime.at_share(tid_r, me, 1.0)
        yield Join(tid_l)
        yield Join(tid_r)
        # The real merge of the two sorted halves: read both halves, then
        # heap-allocate the output buffer (serialised allocator).
        yield Touch(lines)
        yield Acquire(self.alloc_mutex)
        yield Compute(40)
        yield Release(self.alloc_mutex)
        merged = np.empty(size, dtype=np.int64)
        left, right = self.data[lo:mid], self.data[mid:hi]
        # Vectorised stable merge: each right element lands after the left
        # elements at most its size plus the right elements preceding it.
        positions = np.searchsorted(left, right, side="right")
        merged_idx = positions + np.arange(right.size)
        merged[merged_idx] = right
        mask = np.ones(size, dtype=bool)
        mask[merged_idx] = False
        merged[mask] = left
        self.data[lo:hi] = merged
        yield Compute(size * p.compute_per_element)
        yield Touch(lines, write=True)

    def verify_sorted(self) -> bool:
        """Whether the shared array ended up actually sorted."""
        return bool(np.all(np.diff(self.data) >= 0))


class MergeMonitored(MonitoredApp):
    """Single 'work' thread doing the whole sort (Figures 5-6).

    Leaf slices are processed in a shuffled order before the hierarchical
    merges, giving the scattered, linked-structure-like reference pattern
    the paper associates with Sather programs (which "demonstrate less
    clustering of references than programs written in C") -- the regime
    where the model matches well.
    """

    name = "merge"
    language = "sather"

    def __init__(self, num_elements: int = 150_000, leaf_cutoff: int = 128,
                 seed: int = 7):
        self.num_elements = num_elements
        self.leaf_cutoff = leaf_cutoff
        self.seed = seed
        self.data: Optional[np.ndarray] = None
        self.array: Optional[Region] = None

    def setup(self, runtime) -> None:
        rng = np.random.default_rng(self.seed)
        self.data = rng.integers(0, 2**31, size=self.num_elements, dtype=np.int64)
        self.array = runtime.alloc("merge-array", self.num_elements * 8)

    def init_body(self) -> Generator:
        # Initialisation stage: populate the array (faults pages in).
        yield Touch(self.array.lines(), write=True)
        yield Compute(self.num_elements)

    def work_body(self) -> Generator:
        rng = np.random.default_rng(self.seed + 1)
        n = self.num_elements
        cutoff = self.leaf_cutoff
        # Shuffled leaf pass.
        leaves = list(range(0, n, cutoff))
        rng.shuffle(leaves)
        for lo in leaves:
            hi = min(n, lo + cutoff)
            yield Touch(_slice_lines(self.array, lo, hi))
            self.data[lo:hi].sort()
            yield Compute((hi - lo) * 4)
            yield Touch(_slice_lines(self.array, lo, hi), write=True)
        # Hierarchical merges, also in shuffled order per level.
        width = cutoff
        while width < n:
            starts = list(range(0, n, 2 * width))
            rng.shuffle(starts)
            for lo in starts:
                mid = min(n, lo + width)
                hi = min(n, lo + 2 * width)
                if mid >= hi:
                    continue
                yield Touch(_slice_lines(self.array, lo, hi))
                chunk = np.sort(self.data[lo:hi], kind="mergesort")
                self.data[lo:hi] = chunk
                yield Compute((hi - lo) * 4)
                yield Touch(_slice_lines(self.array, lo, hi), write=True)
            width *= 2

    def state_regions(self) -> List[Region]:
        return [self.array]
