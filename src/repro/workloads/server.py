"""The `server` workload: a sparse, mostly-blocked request mix.

The paper's motivating setting is a multiprogrammed server whose thread
population far exceeds the processor count and whose threads spend most
of their lifetime *blocked* -- waiting on I/O, timers, or clients --
punctuated by short bursts that touch a small per-request state
(section 2).  ``tasks`` stresses the cache-affinity model with dense
wake/touch/block cycles; ``server`` stresses the *scheduling loop
itself*: with the default parameters well over 90% of all simulated
cycles have every thread asleep, so a quantum-stepped simulator burns
almost all its wall time idling cpus forward one tick at a time.

That makes this the reference fixture for the event-driven engine
(``--engine event``, docs/MODEL.md): the event engine jumps simulated
time across the sleep gaps and the ``bench_engine_event`` benchmark
gates an order-of-magnitude wall-time win on exactly this shape --
while the counters stay bit-identical to the stepped engine.

Each request thread staggers in, then alternates short touch bursts
over its private region with long sleeps.  States are disjoint, so as
with ``tasks`` no sharing annotations apply and any locality win is the
counter-driven model's alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.threads.events import Compute, Sleep, touch_region
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ServerParams:
    """A sparse request mix: many threads, mostly asleep.

    The defaults give a ~96-97% idle fraction on a 32-cpu machine --
    the ``bench_engine_event`` fixture; ``paper_scale()`` is the same
    shape with more requests and more service periods.
    """

    num_requests: int = 96
    footprint_lines: int = 8  # per-request state (small: service is short)
    burst: int = 12  # touches per service period
    periods: int = 2  # service periods per request
    compute_per_touch: int = 40
    sleep_cycles: int = 700_000  # inter-arrival gap: the sparse part
    stagger_cycles: int = 6_000  # spreads initial arrivals out

    @staticmethod
    def paper_scale() -> "ServerParams":
        return ServerParams(
            num_requests=400,
            burst=30,
            periods=4,
            sleep_cycles=400_000,
            stagger_cycles=2_000,
        )


class ServerWorkload(Workload):
    """Staggered request threads: short touch bursts, long sleeps."""

    name = "server"

    def __init__(self, params: ServerParams = ServerParams()):
        self.params = params
        self.tids: List[int] = []

    def build(self, runtime) -> None:
        p = self.params
        for i in range(p.num_requests):
            region = runtime.alloc_lines(f"req-{i}", p.footprint_lines)

            def body(region=region, i=i):
                yield Sleep(i * p.stagger_cycles + 1)
                for _ in range(p.periods):
                    for _ in range(p.burst):
                        yield touch_region(region)
                        yield Compute(p.compute_per_touch)
                    yield Sleep(p.sleep_cycles)

            tid = runtime.at_create(body, name=f"req-{i}")
            runtime.declare_state(tid, [region])
            self.tids.append(tid)
