"""Input parameters for the performance applications (paper Table 4).

The paper's runs:

====== ======================================================================
tasks  1024 tasks, footprints 100 lines each, 100 scheduling periods per task
merge  100,000 uniformly distributed elements; insertion sort below size 100;
       creates 1024 threads
photo  "softening" filter on a 2048 x 2048 rgb pixmap; creates 2048 threads
tsp    suboptimal path for 100 cities; measured the execution of 1000 threads
====== ======================================================================

``paper_scale()`` reproduces those sizes.  ``default()`` scales thread
counts and data sizes down (documented per field) so the full Figure 8/9
sweeps complete in minutes of wall-clock on the Python simulator; the
*ratios* that drive the paper's effects (total working set several times
the cache, per-thread footprints of ~100 lines, fine-grained threads) are
preserved.  EXPERIMENTS.md records which scale each reported run used.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TasksParams:
    """Squillante-Lazowska `tasks`: disjoint wake/touch/block threads."""

    num_tasks: int = 256
    footprint_lines: int = 100  # the paper's per-task footprint
    periods: int = 25
    compute_per_period: int = 2200
    sleep_cycles: int = 12_000  # ~ the active duration, per the benchmark

    @staticmethod
    def paper_scale() -> "TasksParams":
        return TasksParams(num_tasks=1024, periods=100)


@dataclass(frozen=True)
class MergeParams:
    """Parallel mergesort over uniformly distributed integers."""

    num_elements: int = 100_000
    leaf_cutoff: int = 100  # switch to insertion sort at or below this
    compute_per_element: int = 4
    seed: int = 12345

    @staticmethod
    def paper_scale() -> "MergeParams":
        return MergeParams(num_elements=100_000)


@dataclass(frozen=True)
class PhotoParams:
    """Softening filter over an RGB pixmap, one thread per row."""

    width: int = 1024
    height: int = 512  # threads = height
    halo: int = 4  # neighbour rows read on each side
    passes: int = 1
    compute_per_row: int = 2_000
    image_seed: int = 99  # pixmap content generator seed

    @staticmethod
    def paper_scale() -> "PhotoParams":
        return PhotoParams(width=2048, height=2048)


@dataclass(frozen=True)
class TspParams:
    """Branch-and-bound TSP over adjacency matrices."""

    num_cities: int = 48
    #: branch while the partial path is at most this long, so the subspace
    #: tree (at most 2**branch_levels leaves before pruning) is identical
    #: under every scheduling policy
    branch_levels: int = 8
    #: hard safety cap; never binding for the default parameters
    max_threads: int = 1000
    compute_per_node: int = 1_500
    seed: int = 424242

    @staticmethod
    def paper_scale() -> "TspParams":
        return TspParams(num_cities=100, branch_levels=9, max_threads=2000)
