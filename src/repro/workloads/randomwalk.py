"""The random-memory-walk microbenchmark (paper section 3.2, Figure 4).

A "main" thread touches uniformly random lines of a large region -- the
access pattern that *exactly* satisfies the model's independence
assumption, so observed and predicted footprints should coincide (the
paper reports "excellent correspondence", as expected).  Companion sleeping
threads with configurable initial footprints and sharing coefficients let
the experiment observe all three model cases:

- the executing thread's footprint growth (Fig. 4a),
- decay of independent sleepers (Fig. 4b),
- growth/decay of dependent sleepers vs initial size and q (Fig. 4c-d).

Sharing coefficient ``q`` is realised *physically*: a dependent sleeper's
state region overlaps the walker's region for a ``q`` fraction of its
lines, so the ground-truth tracer sees real shared lines, not just an
annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.machine.address import Region


@dataclass(frozen=True)
class WalkPlan:
    """Layout for one random-walk experiment on a cache of ``n_lines``."""

    walker_region: Region
    sleeper_regions: List[Region]
    sleeper_shares: List[float]  # fraction of walker state each overlaps


def build_walk(
    space,
    cache_lines: int,
    sleeper_footprints: List[int],
    sleeper_shares: Optional[List[float]] = None,
    walker_lines: Optional[int] = None,
) -> WalkPlan:
    """Allocate the walker and sleeper regions.

    ``sleeper_shares[i]`` is the fraction of sleeper i's state drawn from
    the walker's own region (physically shared lines); the rest is private.
    Defaults to fully independent sleepers.
    """
    if sleeper_shares is None:
        sleeper_shares = [0.0] * len(sleeper_footprints)
    if len(sleeper_shares) != len(sleeper_footprints):
        raise ValueError("one share per sleeper footprint required")
    if walker_lines is None:
        # Big enough that uniform line choices rarely repeat, the regime
        # the model assumes.
        walker_lines = 8 * cache_lines
    walker = space.allocate_lines("walker", walker_lines)
    sleepers: List[Region] = []
    for i, (lines, share) in enumerate(zip(sleeper_footprints, sleeper_shares)):
        if not 0.0 <= share <= 1.0:
            raise ValueError("shares must be in [0, 1]")
        private = max(0, round(lines * (1.0 - share)))
        if private:
            sleepers.append(space.allocate_lines(f"sleeper-{i}", private))
        else:
            # Fully shared: a zero-length private part is represented by a
            # one-line placeholder region so the Region stays valid.
            sleepers.append(space.allocate_lines(f"sleeper-{i}", 1))
    return WalkPlan(walker, sleepers, list(sleeper_shares))


def sleeper_state_lines(plan: WalkPlan, index: int, footprint: int) -> np.ndarray:
    """Virtual lines comprising sleeper ``index``'s state.

    The shared part is the *prefix* of the walker's region (so the walker
    really does touch it during its walk); the private part is the
    sleeper's own region.
    """
    share = plan.sleeper_shares[index]
    shared_count = round(footprint * share)
    private_count = footprint - shared_count
    parts = []
    if shared_count:
        parts.append(plan.walker_region.lines()[:shared_count])
    if private_count:
        parts.append(plan.sleeper_regions[index].lines()[:private_count])
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def walk_batches(
    region: Region,
    total_touches: int,
    rng: np.random.Generator,
    batch: int = 256,
) -> Iterator[np.ndarray]:
    """Uniformly random virtual lines from ``region`` in batches."""
    lines = region.lines()
    remaining = total_touches
    while remaining > 0:
        take = min(batch, remaining)
        yield rng.choice(lines, size=take, replace=True)
        remaining -= take
