"""The random-memory-walk microbenchmark (paper section 3.2, Figure 4).

A "main" thread touches uniformly random lines of a large region -- the
access pattern that *exactly* satisfies the model's independence
assumption, so observed and predicted footprints should coincide (the
paper reports "excellent correspondence", as expected).  Companion sleeping
threads with configurable initial footprints and sharing coefficients let
the experiment observe all three model cases:

- the executing thread's footprint growth (Fig. 4a),
- decay of independent sleepers (Fig. 4b),
- growth/decay of dependent sleepers vs initial size and q (Fig. 4c-d).

Sharing coefficient ``q`` is realised *physically*: a dependent sleeper's
state region overlaps the walker's region for a ``q`` fraction of its
lines, so the ground-truth tracer sees real shared lines, not just an
annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Compute, Sleep, Touch
from repro.workloads.base import Workload


@dataclass(frozen=True)
class WalkPlan:
    """Layout for one random-walk experiment on a cache of ``n_lines``."""

    walker_region: Region
    sleeper_regions: List[Region]
    sleeper_shares: List[float]  # fraction of walker state each overlaps


def build_walk(
    space,
    cache_lines: int,
    sleeper_footprints: List[int],
    sleeper_shares: Optional[List[float]] = None,
    walker_lines: Optional[int] = None,
) -> WalkPlan:
    """Allocate the walker and sleeper regions.

    ``sleeper_shares[i]`` is the fraction of sleeper i's state drawn from
    the walker's own region (physically shared lines); the rest is private.
    Defaults to fully independent sleepers.
    """
    if sleeper_shares is None:
        sleeper_shares = [0.0] * len(sleeper_footprints)
    if len(sleeper_shares) != len(sleeper_footprints):
        raise ValueError("one share per sleeper footprint required")
    if walker_lines is None:
        # Big enough that uniform line choices rarely repeat, the regime
        # the model assumes.
        walker_lines = 8 * cache_lines
    walker = space.allocate_lines("walker", walker_lines)
    sleepers: List[Region] = []
    for i, (lines, share) in enumerate(zip(sleeper_footprints, sleeper_shares)):
        if not 0.0 <= share <= 1.0:
            raise ValueError("shares must be in [0, 1]")
        private = max(0, round(lines * (1.0 - share)))
        if private:
            sleepers.append(space.allocate_lines(f"sleeper-{i}", private))
        else:
            # Fully shared: a zero-length private part is represented by a
            # one-line placeholder region so the Region stays valid.
            sleepers.append(space.allocate_lines(f"sleeper-{i}", 1))
    return WalkPlan(walker, sleepers, list(sleeper_shares))


def sleeper_state_lines(plan: WalkPlan, index: int, footprint: int) -> np.ndarray:
    """Virtual lines comprising sleeper ``index``'s state.

    The shared part is the *prefix* of the walker's region (so the walker
    really does touch it during its walk); the private part is the
    sleeper's own region.
    """
    share = plan.sleeper_shares[index]
    shared_count = round(footprint * share)
    private_count = footprint - shared_count
    parts = []
    if shared_count:
        parts.append(plan.walker_region.lines()[:shared_count])
    if private_count:
        parts.append(plan.sleeper_regions[index].lines()[:private_count])
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def walk_batches(
    region: Region,
    total_touches: int,
    rng: np.random.Generator,
    batch: int = 256,
) -> Iterator[np.ndarray]:
    """Uniformly random virtual lines from ``region`` in batches."""
    lines = region.lines()
    remaining = total_touches
    while remaining > 0:
        take = min(batch, remaining)
        yield rng.choice(lines, size=take, replace=True)
        remaining -= take


class _RuntimeSpace:
    """Adapts a runtime's allocator to the ``space`` protocol of
    :func:`build_walk` (``allocate_lines``)."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime

    def allocate_lines(self, name: str, num_lines: int) -> Region:
        return self._runtime.alloc_lines(name, num_lines)


class RandomWalkWorkload(Workload):
    """The figure 4 setup as a runnable performance workload.

    One walker thread touches random lines of a large region while
    dependent sleepers periodically wake, touch their (partially shared)
    state, and sleep again.  Dependent sleepers are annotated with
    ``at_share(walker, sleeper, q)`` matching their *physical* overlap, so
    the workload exercises every hint path the fault campaign corrupts:
    sharing annotations, counter-driven priorities, and sleep/wake churn.

    All randomness comes from a build-time seed consumed only by the
    walker's own generator, so thread-level results (refs, instructions)
    are identical under every schedule -- the property the campaign's
    bit-identical assertions rely on.
    """

    name = "randomwalk"

    def __init__(
        self,
        total_touches: int = 16_384,
        batch: int = 128,
        compute_per_batch: int = 600,
        sleeper_footprints: Sequence[int] = (64, 128, 192, 256),
        sleeper_shares: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
        periods: int = 6,
        sleep_cycles: int = 15_000,
        compute_per_period: int = 1_200,
        seed: int = 97,
    ) -> None:
        if len(sleeper_footprints) != len(sleeper_shares):
            raise ValueError("one share per sleeper footprint required")
        self.total_touches = total_touches
        self.batch = batch
        self.compute_per_batch = compute_per_batch
        self.sleeper_footprints = list(sleeper_footprints)
        self.sleeper_shares = list(sleeper_shares)
        self.periods = periods
        self.sleep_cycles = sleep_cycles
        self.compute_per_period = compute_per_period
        self.seed = seed
        self.walker_tid: Optional[int] = None
        self.sleeper_tids: List[int] = []

    def build(self, runtime) -> None:
        plan = build_walk(
            _RuntimeSpace(runtime),
            runtime.machine.config.l2_lines,
            self.sleeper_footprints,
            self.sleeper_shares,
        )
        rng = np.random.default_rng(self.seed)

        def walker_body():
            for lines in walk_batches(
                plan.walker_region, self.total_touches, rng, self.batch
            ):
                yield Touch(lines)
                yield Compute(self.compute_per_batch)

        self.walker_tid = runtime.at_create(walker_body, name="walker")
        runtime.declare_state(self.walker_tid, [plan.walker_region])

        self.sleeper_tids = []
        for i, footprint in enumerate(self.sleeper_footprints):
            state = sleeper_state_lines(plan, i, footprint)

            def sleeper_body(state=state):
                for _ in range(self.periods):
                    yield Touch(state)
                    yield Compute(self.compute_per_period)
                    yield Sleep(self.sleep_cycles)

            tid = runtime.at_create(sleeper_body, name=f"sleeper-{i}")
            runtime.declare_state(tid, [plan.sleeper_regions[i]])
            share = plan.sleeper_shares[i]
            if share > 0.0:
                runtime.at_share(self.walker_tid, tid, share)
            self.sleeper_tids.append(tid)
