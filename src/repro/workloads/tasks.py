"""The `tasks` benchmark (Squillante & Lazowska [21], paper Table 4).

"Tasks creates a fixed number of identical threads with equal size, but
disjoint footprints that repeatedly wake up, touch their state, and block
for the same duration that they were active.  Since tasks have disjoint
states, user annotations are not relevant in this case" (section 5).

This is the pure processor-cache-affinity stressor: all the speedup a
locality policy achieves here comes from the counter-driven footprint
model alone.  With many more tasks than fit in the cache, FCFS cycles
through all of them and every wakeup pays a full reload transient; LFF/CRT
keep a cache-sized cohort hot (at the cost of fairness, which the paper
discusses in section 7 -- all tasks still run to completion).
"""

from __future__ import annotations

from typing import List

from repro.threads.events import Compute, Sleep, touch_region
from repro.workloads.base import Workload
from repro.workloads.params import TasksParams


class TasksWorkload(Workload):
    """Fixed number of identical wake/touch/block threads."""

    name = "tasks"

    def __init__(self, params: TasksParams = TasksParams()):
        self.params = params
        self.tids: List[int] = []

    def build(self, runtime) -> None:
        p = self.params
        for i in range(p.num_tasks):
            region = runtime.alloc_lines(f"task-{i}", p.footprint_lines)

            def body(region=region):
                for _ in range(p.periods):
                    yield touch_region(region)
                    yield Compute(p.compute_per_period)
                    yield Sleep(p.sleep_cycles)

            tid = runtime.at_create(body, name=f"task-{i}")
            runtime.declare_state(tid, [region])
            self.tids.append(tid)
