"""SPLASH-2-like applications for the model-accuracy simulations.

The paper's top four simulated workloads come from SPLASH-2 (Table 2),
built unmodified against an Active Threads PARMACS layer.  SPLASH-2
sources are not available here, so each app is re-implemented as a small
*real* computation with the same reference character (see DESIGN.md's
substitution notes):

- :class:`BarnesLike` -- Barnes-Hut N-body: a real quadtree is built over
  real particles and each body's force walk touches the tree nodes the
  opening criterion actually visits.
- :class:`FmmLike` -- adaptive fast-multipole flavour: grid cells with
  near-field interaction lists and a coarse far-field level.
- :class:`OceanLike` -- regular-grid stencil relaxation (a real Jacobi
  sweep over a numpy grid).

All three are "C-style": they sweep large structures in long runs and
alternate between structures whose pages partially collide in the cache
(their data plus the init-phase arena exceed the number of page bins), so
some misses are conflict re-misses.  That is exactly the regime where the
paper finds "the predicted footprints are somewhat larger than those
observed" for C applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Compute, Touch
from repro.workloads.base import MonitoredApp


def _alloc_arena(runtime, name: str, pages: int) -> List[Region]:
    """Init-phase filler allocations, one page each, as a real program's
    startup (library tables, buffers) would make before the main data."""
    space = runtime.machine.address_space
    return [
        space.allocate(f"{name}-arena-{i}", space.page_bytes)
        for i in range(pages)
    ]


def _strided_slabs(space, name: str, num_pages: int, stride_pages: int) -> List[Region]:
    """Page slabs allocated at a power-of-two virtual stride.

    Arena allocators commonly hand out slabs at aligned strides; with a
    stride sharing a factor with the number of cache bins, the slabs'
    preferred page colors cycle through only a subset of bins, producing
    the partial conflict behaviour real C codes exhibit (and the paper's
    mild model overestimation for the SPLASH apps).
    """
    slabs = []
    for i in range(num_pages):
        slabs.append(space.allocate(f"{name}-slab-{i}", space.page_bytes))
        if stride_pages > 1 and i < num_pages - 1:
            space.allocate(
                f"{name}-pad-{i}", (stride_pages - 1) * space.page_bytes
            )
    return slabs


def _slab_lines(slabs: List[Region], indices: np.ndarray) -> np.ndarray:
    """Map flat element indices (one line each) onto the slab pages."""
    lines_per_page = slabs[0].num_lines
    capacity = len(slabs) * lines_per_page
    flat = np.asarray(indices, dtype=np.int64) % capacity
    pages, offsets = np.divmod(flat, lines_per_page)
    firsts = np.asarray([slab.first_line for slab in slabs], dtype=np.int64)
    return firsts[pages] + offsets


@dataclass
class _QuadNode:
    """A real Barnes-Hut quadtree node (bucket leaves, capacity-split)."""

    cx: float
    cy: float
    half: float
    index: int  # node slot, determines its cache lines
    mass: float = 0.0
    mx: float = 0.0
    my: float = 0.0
    is_internal: bool = False
    bodies: list = field(default_factory=list)
    children: list = field(default_factory=lambda: [None] * 4)

    def quadrant(self, x: float, y: float) -> int:
        return (1 if x >= self.cx else 0) | (2 if y >= self.cy else 0)


class BarnesLike(MonitoredApp):
    """Barnes-Hut force computation over a real quadtree."""

    name = "barnes"
    language = "c"

    def __init__(
        self,
        num_bodies: int = 2500,
        theta: float = 0.6,
        arena_pages: int = 72,
        timesteps: int = 3,
        seed: int = 11,
    ):
        self.num_bodies = num_bodies
        self.theta = theta
        self.arena_pages = arena_pages
        self.timesteps = timesteps
        self.seed = seed
        self.bodies_region: Optional[Region] = None
        self.tree_slabs: List[Region] = []
        self.forces_region: Optional[Region] = None
        self.root: Optional[_QuadNode] = None
        self._node_count = 0
        self.positions: Optional[np.ndarray] = None

    def setup(self, runtime) -> None:
        rng = np.random.default_rng(self.seed)
        self.positions = rng.uniform(0.0, 1.0, size=(self.num_bodies, 2))
        self._arena = _alloc_arena(runtime, "barnes", self.arena_pages)
        space = runtime.machine.address_space
        self.bodies_region = runtime.alloc_lines("barnes-bodies", self.num_bodies)
        # quadtrees over n bodies have < 2n internal+leaf nodes in practice;
        # tree nodes live in arena slabs at a power-of-two stride (the
        # reason barnes shows the paper's mild model overestimation)
        tree_pages = -(-2 * self.num_bodies // space.lines_per_page)
        self.tree_slabs = _strided_slabs(space, "barnes-tree", tree_pages, 8)
        self.forces_region = runtime.alloc_lines("barnes-forces", self.num_bodies)
        self._build_tree()

    def _new_node(self, cx, cy, half) -> _QuadNode:
        node = _QuadNode(cx, cy, half, index=self._node_count)
        self._node_count += 1
        return node

    #: bodies a leaf holds before splitting, and the depth cap that keeps
    #: coincident points from splitting forever
    leaf_capacity = 4
    max_depth = 12

    def _build_tree(self) -> None:
        self.root = self._new_node(0.5, 0.5, 0.5)
        for i in range(self.num_bodies):
            self._insert(i)
        self._summarise(self.root)

    def _child_for(self, node: _QuadNode, x: float, y: float) -> _QuadNode:
        quad = node.quadrant(x, y)
        child = node.children[quad]
        if child is None:
            h = node.half / 2
            cx = node.cx + (h if quad & 1 else -h)
            cy = node.cy + (h if quad & 2 else -h)
            child = self._new_node(cx, cy, h)
            node.children[quad] = child
        return child

    def _insert(self, body: int) -> None:
        x, y = map(float, self.positions[body])
        node, depth = self.root, 0
        while node.is_internal:
            node = self._child_for(node, x, y)
            depth += 1
        node.bodies.append(body)
        self._split(node, depth)

    def _split(self, node: _QuadNode, depth: int) -> None:
        if len(node.bodies) <= self.leaf_capacity or depth >= self.max_depth:
            return
        bodies, node.bodies = node.bodies, []
        node.is_internal = True
        for body in bodies:
            bx, by = map(float, self.positions[body])
            self._child_for(node, bx, by).bodies.append(body)
        for child in node.children:
            if child is not None:
                self._split(child, depth + 1)

    def _summarise(self, node: _QuadNode) -> None:
        if not node.is_internal:
            node.mass = float(len(node.bodies))
            if node.bodies:
                pts = self.positions[node.bodies]
                node.mx, node.my = map(float, pts.mean(axis=0))
            return
        for child in node.children:
            if child is None:
                continue
            self._summarise(child)
            node.mass += child.mass
            node.mx += child.mx * child.mass
            node.my += child.my * child.mass
        if node.mass > 0:
            node.mx /= node.mass
            node.my /= node.mass

    def _walk(self, x: float, y: float) -> List[int]:
        """Node indices the opening criterion actually visits for (x, y)."""
        visited = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None or node.mass == 0:
                continue
            visited.append(node.index)
            dx, dy = node.mx - x, node.my - y
            dist = max(1e-9, (dx * dx + dy * dy) ** 0.5)
            if not node.is_internal or (2 * node.half) / dist < self.theta:
                continue  # leaf, or far enough to use the aggregate
            stack.extend(c for c in node.children if c is not None)
        return visited

    def init_body(self) -> Generator:
        for region in self._arena:
            yield Touch(region.lines(), write=True)
        yield Touch(self.bodies_region.lines(), write=True)
        for slab in self.tree_slabs:
            yield Touch(slab.lines(), write=True)
        yield Compute(self.num_bodies * 30)

    def work_body(self) -> Generator:
        for _step in range(self.timesteps):
            for i in range(self.num_bodies):
                x, y = self.positions[i]
                visited = self._walk(float(x), float(y))
                node_lines = _slab_lines(
                    self.tree_slabs, np.asarray(visited, dtype=np.int64)
                )
                yield Touch(self.bodies_region.lines()[i : i + 1])
                yield Touch(node_lines)
                yield Touch(self.forces_region.lines()[i : i + 1], write=True)
                yield Compute(len(visited) * 12)

    def state_regions(self) -> List[Region]:
        return [self.bodies_region, self.forces_region] + list(self.tree_slabs)


class FmmLike(MonitoredApp):
    """Grid cells with near-field interaction lists and a far-field level."""

    name = "fmm"
    language = "c"

    def __init__(
        self,
        grid: int = 32,
        particles_per_cell: int = 8,
        arena_pages: int = 64,
        seed: int = 21,
    ):
        self.grid = grid
        self.particles_per_cell = particles_per_cell
        self.arena_pages = arena_pages
        self.seed = seed
        self.cells_region: Optional[Region] = None
        self.particle_slabs: List[Region] = []
        self.coarse_region: Optional[Region] = None

    def setup(self, runtime) -> None:
        self._arena = _alloc_arena(runtime, "fmm", self.arena_pages)
        space = runtime.machine.address_space
        n_cells = self.grid * self.grid
        self.cells_region = runtime.alloc_lines("fmm-cells", n_cells)
        # particle slabs at a power-of-two arena stride (C-style layout)
        particle_pages = -(
            -n_cells * self.particles_per_cell // space.lines_per_page
        )
        self.particle_slabs = _strided_slabs(
            space, "fmm-particles", particle_pages, 8
        )
        self.coarse_region = runtime.alloc_lines(
            "fmm-coarse", max(1, n_cells // 16)
        )

    def _cell_particles(self, cell: int) -> np.ndarray:
        ppc = self.particles_per_cell
        return _slab_lines(
            self.particle_slabs,
            np.arange(cell * ppc, (cell + 1) * ppc, dtype=np.int64),
        )

    def init_body(self) -> Generator:
        for region in self._arena:
            yield Touch(region.lines(), write=True)
        for slab in self.particle_slabs:
            yield Touch(slab.lines(), write=True)
        yield Compute(self.grid * self.grid * 40)

    def work_body(self) -> Generator:
        g = self.grid
        for cy in range(g):
            for cx in range(g):
                cell = cy * g + cx
                # near field: this cell's and the 8 neighbours' particles
                lines = [self._cell_particles(cell)]
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        nx, ny = cx + dx, cy + dy
                        if (dx or dy) and 0 <= nx < g and 0 <= ny < g:
                            lines.append(self._cell_particles(ny * g + nx))
                yield Touch(np.concatenate(lines))
                yield Touch(self.cells_region.lines()[cell : cell + 1], write=True)
                # far field: the coarse-level cell
                coarse = (cy // 4) * (g // 4) + cx // 4
                yield Touch(self.coarse_region.lines()[coarse : coarse + 1])
                yield Compute(9 * self.particles_per_cell * 8)

    def state_regions(self) -> List[Region]:
        return [self.cells_region, self.coarse_region] + list(self.particle_slabs)


class OceanLike(MonitoredApp):
    """Real Jacobi relaxation sweeps over a 2D grid."""

    name = "ocean"
    language = "c"

    def __init__(
        self, grid: int = 256, sweeps: int = 3, arena_pages: int = 56,
        seed: int = 31,
    ):
        self.grid = grid
        self.sweeps = sweeps
        self.arena_pages = arena_pages
        self.seed = seed
        self.src_region: Optional[Region] = None
        self.dst_region: Optional[Region] = None
        self.values: Optional[np.ndarray] = None

    def setup(self, runtime) -> None:
        rng = np.random.default_rng(self.seed)
        self.values = rng.uniform(size=(self.grid, self.grid))
        self._arena = _alloc_arena(runtime, "ocean", self.arena_pages)
        row_bytes = self.grid * 8
        self.src_region = runtime.alloc("ocean-src", self.grid * row_bytes)
        self.dst_region = runtime.alloc("ocean-dst", self.grid * row_bytes)

    def _row_lines(self, region: Region, row: int) -> np.ndarray:
        row_bytes = self.grid * 8
        first = row * row_bytes // region.line_bytes
        count = -(-row_bytes // region.line_bytes)
        return region.line_slice(first, count)

    def init_body(self) -> Generator:
        for region in self._arena:
            yield Touch(region.lines(), write=True)
        yield Touch(self.src_region.lines(), write=True)
        yield Compute(self.grid * self.grid // 8)

    def work_body(self) -> Generator:
        src, dst = self.src_region, self.dst_region
        for _ in range(self.sweeps):
            new = self.values.copy()
            # the real 5-point stencil
            new[1:-1, 1:-1] = 0.25 * (
                self.values[:-2, 1:-1]
                + self.values[2:, 1:-1]
                + self.values[1:-1, :-2]
                + self.values[1:-1, 2:]
            )
            for row in range(1, self.grid - 1):
                lines = np.concatenate(
                    [self._row_lines(src, r) for r in (row - 1, row, row + 1)]
                )
                yield Touch(lines)
                yield Touch(self._row_lines(dst, row), write=True)
                yield Compute(self.grid * 4)
            self.values = new
            src, dst = dst, src

    def state_regions(self) -> List[Region]:
        return [self.src_region, self.dst_region]
