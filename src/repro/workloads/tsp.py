"""`tsp`: branch-and-bound Traveling Salesman (paper Tables 2 and 4).

"Tsp solves the Traveling Salesman Problem using the branch-and-bound
algorithm: the solution space is repeatedly divided into two subspaces...
Solution subspaces are represented as adjacency matrices.  Partial paths
and several other auxiliary data structures are implemented by linked
structures.  The application is irregular in nature and performs a
significant fraction of time accessing data" (section 5).

Characteristics the paper calls out, all reproduced here:

- each node thread heap-allocates a fresh subspace matrix and initialises
  it from the parent's -- those misses are *compulsory* and "cannot be
  eliminated by any scheduling policy" (why 1-cpu miss elimination is only
  ~12%);
- "parent threads prefetch some data for children which is reflected by
  the annotations", but "adding annotations does not improve performance
  much further" -- most of the win is within-thread locality from the
  counter-driven model;
- "global updates and memory allocation for new objects require
  synchronization (we are currently using a standard Solaris memory
  allocator protected by the mutual exclusion lock)" -- modelled by a
  global allocator mutex plus a best-cost mutex.

The paper's tsp is non-deterministic across runs; it benchmarks equal
"work" recorded from an LFF run.  Ours achieves the same equal-work
comparison by pruning against a *static* bound (the root's greedy tour)
rather than the live incumbent: every policy then explores an identical
subspace tree, while the incumbent updates (and their synchronisation)
still happen for realism.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Acquire, Compute, Join, Release, Touch
from repro.threads.sync import Mutex
from repro.workloads.base import MonitoredApp, Workload
from repro.workloads.params import TspParams


def _tour_distance_matrix(num_cities: int, seed: int) -> np.ndarray:
    """Random symmetric euclidean-ish distance matrix (real data)."""
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, 1000.0, size=(num_cities, 2))
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


class TspWorkload(Workload):
    """Thread-per-subspace branch and bound."""

    name = "tsp"

    def __init__(self, params: TspParams = TspParams(), annotate: bool = True):
        self.params = params
        self.annotate = annotate
        self.dist: Optional[np.ndarray] = None
        self.dist_region: Optional[Region] = None
        self.best_region: Optional[Region] = None
        self.alloc_mutex = Mutex(name="allocator")
        self.best_mutex = Mutex(name="best-cost")
        self.best_cost = float("inf")
        self.best_tour: Optional[List[int]] = None
        #: the schedule-invariant pruning bound, set in build()
        self.static_bound = float("inf")
        self.threads_created = 0
        self._node_seq = 0

    def build(self, runtime) -> None:
        p = self.params
        self.dist = _tour_distance_matrix(p.num_cities, p.seed)
        self.dist_region = runtime.alloc(
            "tsp-distances", p.num_cities * p.num_cities * 8
        )
        self.best_region = runtime.alloc_lines("tsp-best", 1)
        _tour, self.static_bound = self._greedy_completion([0], 0.0)
        runtime.at_create(
            lambda: self._node_body(runtime, path=[0], cost=0.0, parent=None),
            name="tsp-root",
        )
        self.threads_created += 1

    def _matrix_lines(self) -> int:
        n = self.params.num_cities
        return -(-n * n * 8 // 64)

    def _lower_bound(self, path: List[int], cost: float) -> float:
        """Real bound: path cost + sum of each unvisited city's cheapest
        outgoing edge (a classic admissible TSP bound)."""
        visited = np.zeros(self.params.num_cities, dtype=bool)
        visited[path] = True
        remaining = ~visited
        if not remaining.any():
            return cost
        d = self.dist.copy()
        np.fill_diagonal(d, np.inf)
        mins = d[remaining].min(axis=1)
        return cost + float(mins.sum())

    def _greedy_completion(self, path: List[int], cost: float):
        """Finish the tour nearest-neighbour; returns (tour, cost)."""
        n = self.params.num_cities
        tour = list(path)
        total = cost
        visited = set(tour)
        while len(tour) < n:
            cur = tour[-1]
            choices = [(self.dist[cur, c], c) for c in range(n) if c not in visited]
            step_cost, nxt = min(choices)
            tour.append(nxt)
            visited.add(nxt)
            total += step_cost
        total += float(self.dist[tour[-1], tour[0]])
        return tour, total

    def _node_body(
        self, runtime, path: List[int], cost: float, parent: Optional[Region]
    ) -> Generator:
        p = self.params
        self._node_seq += 1
        node_id = self._node_seq  # captured: other node bodies interleave
        # Read the parent's matrix (prefetched for us if the parent ran
        # here recently) and the shared distance matrix...
        if parent is not None:
            yield Touch(parent.lines())
        yield Touch(self.dist_region.lines())
        # ...then heap-allocate this node's subspace matrix, serialised by
        # the allocator mutex (the paper's Solaris-allocator bottleneck),
        # and initialise our copy: compulsory misses on fresh pages.
        yield Acquire(self.alloc_mutex)
        matrix = runtime.alloc_lines(
            f"tsp-node-{node_id}", self._matrix_lines()
        )
        yield Release(self.alloc_mutex)
        if parent is not None:
            yield Touch(parent.lines())
        yield Touch(matrix.lines(), write=True)
        bound = self._lower_bound(path, cost)
        yield Compute(p.compute_per_node)
        # Consult/update the shared incumbent.
        yield Acquire(self.best_mutex)
        yield Touch(self.best_region.lines(), write=True)
        # prune against the static bound: the explored tree is identical
        # under every scheduling policy (the paper's equal-work setup)
        prune = bound >= self.static_bound
        yield Release(self.best_mutex)
        depth_left = p.num_cities - len(path)
        if prune:
            return
        if len(path) > p.branch_levels or self.threads_created >= p.max_threads:
            # Leaf: complete the tour for real and publish if better.
            tour, total = self._greedy_completion(path, cost)
            yield Compute(depth_left * 50)
            yield Acquire(self.best_mutex)
            yield Touch(self.best_region.lines(), write=True)
            if total < self.best_cost:
                self.best_cost = total
                self.best_tour = tour
            yield Release(self.best_mutex)
            return
        # Branch: the two nearest unvisited cities found, for real.
        cur = path[-1]
        visited = set(path)
        choices = sorted(
            (self.dist[cur, c], c)
            for c in range(p.num_cities)
            if c not in visited
        )
        children = []
        for step_cost, city in choices[:2]:
            if self.threads_created >= p.max_threads:
                break
            child_path = path + [city]
            child_cost = cost + float(step_cost)
            # Path-based name: unique per subspace and independent of the
            # order node bodies happened to execute in, so per-thread
            # results can be compared across schedules (fault campaign).
            tid = runtime.at_create(
                lambda cp=child_path, cc=child_cost: self._node_body(
                    runtime, cp, cc, parent=matrix
                ),
                name="tsp-node-" + "-".join(map(str, child_path)),
            )
            self.threads_created += 1
            if self.annotate:
                me = runtime.at_self()
                runtime.at_share(me, tid, 0.8)  # parent prefetches for child
                runtime.at_share(tid, me, 0.68)  # child's result read at join
            children.append(tid)
        for tid in children:
            yield Join(tid)


class TspMonitored(MonitoredApp):
    """Single work thread doing a bounded DFS over pre-allocated node
    matrices -- the irregular, pointer-chasing pattern of Sather linked
    structures (good model agreement, Figures 5-6)."""

    name = "tsp"
    language = "sather"

    def __init__(self, num_cities: int = 40, num_nodes: int = 80, seed: int = 5):
        self.num_cities = num_cities
        self.num_nodes = num_nodes
        self.seed = seed
        self.dist_region: Optional[Region] = None
        self.nodes: List[Region] = []

    def setup(self, runtime) -> None:
        n = self.num_cities
        self.dist_region = runtime.alloc("tsp-distances", n * n * 8)
        lines = -(-n * n * 8 // 64)
        self.nodes = [
            runtime.alloc_lines(f"tsp-pool-{i}", lines)
            for i in range(self.num_nodes)
        ]

    def init_body(self) -> Generator:
        yield Touch(self.dist_region.lines(), write=True)
        for node in self.nodes[: self.num_nodes // 4]:
            yield Touch(node.lines(), write=True)
        yield Compute(self.num_nodes * 20)

    def work_body(self) -> Generator:
        rng = np.random.default_rng(self.seed)
        # Irregular DFS: hop between scattered node matrices, revisiting
        # hot ancestors, consulting the distance matrix throughout.
        stack = [0]
        for visits in range(3 * self.num_nodes):
            idx = stack.pop() if stack else int(rng.integers(self.num_nodes))
            node = self.nodes[idx % self.num_nodes]
            yield Touch(node.lines(), write=bool(visits % 3 == 0))
            # consult a few distance-matrix rows for the cities considered
            row_lines = self.dist_region.num_lines // self.num_cities
            row = (idx * 7 + visits) % self.num_cities
            yield Touch(
                self.dist_region.line_slice(row * row_lines, 3 * row_lines)
            )
            yield Compute(300)
            if rng.random() < 0.75:
                stack.append(int(rng.integers(self.num_nodes)))
            if rng.random() < 0.55:
                stack.append(int(rng.integers(self.num_nodes)))

    def state_regions(self) -> List[Region]:
        return [self.dist_region] + list(self.nodes)
