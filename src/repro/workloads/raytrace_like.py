"""`raytrace`-like workload exhibiting the Figure 7 anomaly.

The paper: "Raytrace also demonstrates anomalous behavior.  In between
short bursts, the majority of misses are conflict misses that do not
significantly increase the footprint" (section 3.4) -- so the model,
which maps every miss to a uniformly random cache line, substantially
*overestimates* the footprint.

The conflict structure is engineered the way real renderers hit it: the
scene bank's object buffers are allocated at power-of-two strides
(cache-size-aligned arenas), so their pages all prefer the same cache
bin.  The Kessler-Hill placement can only spread same-colored pages over
its few hierarchical candidates, leaving many object pages pairwise
conflicting.  Rays then bounce between objects (real sphere-intersection
math decides the bounce sequence), alternating between conflicting pages:
the miss counter climbs steadily while the resident footprint stays
pinned at the few bins the scene occupies.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from repro.machine.address import Region
from repro.threads.events import Compute, Touch
from repro.workloads.base import MonitoredApp


class RaytraceLike(MonitoredApp):
    """Bouncing rays over a bin-conflicted scene bank."""

    name = "raytrace"
    language = "c"

    def __init__(
        self,
        num_objects: int = 24,
        num_rays: int = 500,
        bounces: int = 12,
        seed: int = 41,
    ):
        self.num_objects = num_objects
        self.num_rays = num_rays
        self.bounces = bounces
        self.seed = seed
        self.objects: List[Region] = []
        self.framebuffer: Optional[Region] = None
        self.centers: Optional[np.ndarray] = None

    def setup(self, runtime) -> None:
        rng = np.random.default_rng(self.seed)
        self.centers = rng.uniform(-10.0, 10.0, size=(self.num_objects, 3))
        space = runtime.machine.address_space
        cache_pages = runtime.machine.config.l2_bytes // space.page_bytes
        # Cache-size-aligned arena allocation: every object page gets the
        # same preferred bin color.
        for i in range(self.num_objects):
            self.objects.append(
                space.allocate(f"ray-object-{i}", space.page_bytes)
            )
            if i < self.num_objects - 1:
                space.allocate(f"ray-gap-{i}", (cache_pages - 1) * space.page_bytes)
        self.framebuffer = runtime.alloc_lines("ray-framebuffer", 2048)

    def init_body(self) -> Generator:
        for region in self.objects:
            yield Touch(region.lines(), write=True)
        yield Compute(self.num_objects * 100)

    def _trace(self, origin: np.ndarray, direction: np.ndarray) -> List[int]:
        """Real nearest-sphere intersection bounce sequence."""
        hits = []
        pos, d = origin.copy(), direction.copy()
        for _ in range(self.bounces):
            to_centers = self.centers - pos
            along = to_centers @ d
            perp2 = (to_centers**2).sum(axis=1) - along**2
            candidates = np.where((along > 1e-6) & (perp2 < 4.0))[0]
            if candidates.size == 0:
                break
            nearest = int(candidates[np.argmin(along[candidates])])
            hits.append(nearest)
            pos = pos + d * float(along[nearest])
            normal = pos - self.centers[nearest]
            normal /= max(1e-9, np.linalg.norm(normal))
            d = d - 2 * (d @ normal) * normal
        return hits

    def work_body(self) -> Generator:
        rng = np.random.default_rng(self.seed + 1)
        fb_lines = self.framebuffer.lines()
        for ray in range(self.num_rays):
            origin = rng.uniform(-12.0, 12.0, size=3)
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            hits = self._trace(origin, direction)
            for obj in hits:
                yield Touch(self.objects[obj].lines())
            yield Compute(60 * max(1, len(hits)))
            # short bursts: a fresh framebuffer tile every so often
            if ray % 25 == 0:
                tile = (ray // 25) * 64 % self.framebuffer.num_lines
                yield Touch(fb_lines[tile : tile + 64], write=True)

    def state_regions(self) -> List[Region]:
        return list(self.objects) + [self.framebuffer]
