"""Workload protocols.

Two kinds of workload drive the experiments, matching the paper's two
evaluation modes:

- :class:`Workload` -- a full multi-threaded application used for the
  *performance* experiments (Figures 8-9, Table 5): ``build`` allocates
  regions, creates threads (with annotations) and the driver runs it to
  completion under each scheduling policy.

- :class:`MonitoredApp` -- an application whose single "work" thread is
  traced for the *model accuracy* experiments (Figures 5-7): the paper
  runs the initialisation stage, flushes the thread's state from the
  cache, then monitors the uninterrupted execution of one work thread on
  a uniprocessor (section 3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

if TYPE_CHECKING:
    from repro.machine.address import Region
    from repro.threads.runtime import Runtime


class Workload:
    """A multi-threaded application for performance runs."""

    name = "abstract"

    def build(self, runtime: "Runtime") -> None:
        """Allocate regions and create the thread structure."""
        raise NotImplementedError


class MonitoredApp:
    """An application exposing one traceable "work" thread."""

    name = "abstract"
    #: 'c' (SPLASH-2-like) or 'sather' -- the paper contrasts the two
    language = "c"

    def setup(self, runtime: "Runtime") -> None:
        """Allocate regions and perform the initialisation stage."""
        raise NotImplementedError

    def init_body(self) -> Optional[Generator]:
        """Generator for the initialisation-phase touches, or ``None``.

        Run before the cache flush so page mappings (and bin loads) are
        established the way the real program would establish them.
        """
        return None

    def work_body(self) -> Generator:
        """The monitored work thread's body."""
        raise NotImplementedError

    def state_regions(self) -> List["Region"]:
        """Regions comprising the work thread's state (tracer ground
        truth)."""
        raise NotImplementedError
