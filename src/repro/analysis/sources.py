"""One parse per module per analysis run: the shared source registry.

Three passes read workload source: the lock-order static scan
(:mod:`repro.analysis.locks`), the ``at_share`` site map
(:mod:`repro.analysis.astmap`), and the static sharing inference
(:mod:`repro.analysis.staticshare`).  Before this registry each pass
re-read and re-parsed the same file; now an analysis run threads one
:class:`SourceRegistry` through every pass and each module is parsed
exactly once (``tests/analysis/test_sources.py`` pins the parse count).

The registry is a cache, not a snapshot service: it reads a file the
first time it is asked and serves the same :class:`ParsedSource` from
then on.  That is the correct semantics for an analysis run, which must
see one consistent view of each module even if the repair engine is
about to rewrite it -- a post-fix re-audit builds a fresh registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

__all__ = ["ParsedSource", "SourceRegistry"]


@dataclass(frozen=True)
class ParsedSource:
    """One module, parsed once: its path, raw text, and AST."""

    path: str
    text: str
    tree: ast.Module


class SourceRegistry:
    """Parse-once cache of workload module sources.

    ``parse_count`` counts actual :func:`ast.parse` calls, so tests can
    assert that co-operating passes share parses instead of repeating
    them.  Paths are normalised with :meth:`Path.resolve` so the same
    file reached through different spellings still hits the cache.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, ParsedSource] = {}
        self.parse_count = 0

    def _key(self, path: str) -> str:
        try:
            return str(Path(path).resolve())
        except OSError:
            return path

    def load(self, path: str) -> ParsedSource:
        """The parsed module at ``path``, parsing at most once.

        Raises ``OSError`` when unreadable and ``SyntaxError`` when
        unparsable, exactly like the direct read each caller used to do
        -- callers keep their existing error handling.
        """
        key = self._key(path)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        text = Path(path).read_text(encoding="utf-8")
        self.parse_count += 1
        parsed = ParsedSource(
            path=path, text=text, tree=ast.parse(text, filename=path)
        )
        self._cache[key] = parsed
        return parsed

    def tree(self, path: str) -> ast.Module:
        return self.load(path).tree

    def text(self, path: str) -> str:
        return self.load(path).text

    def cached(self, path: str) -> Optional[ParsedSource]:
        """The cached entry, or None -- never triggers a parse."""
        return self._cache.get(self._key(path))
