"""Static localization of ``at_share`` call sites in workload source.

The auditor knows *which* graph edge is wrong; this pass knows *where*
the edge came from.  A plain AST walk over ``src/repro/workloads/*.py``
finds every ``runtime.at_share(src, dst, q)`` call, records whether the
q argument is a numeric literal (patchable in place) or a computed
expression (loop-generated sites like photo's stencil rows — suggestion
only), and exposes the literal's exact source span so the repair engine
can rewrite it without reformatting anything else.

Recognized call shapes (each covered by a test in
``tests/analysis/test_astmap.py``):

- attribute-qualified: ``runtime.at_share(...)``, ``self.at_share(...)``,
  or any other receiver — the trailing attribute decides;
- bare name: ``at_share(...)``, including when imported under an alias
  (``from ... import at_share as share_hint``) or bound to a local name
  (``share = runtime.at_share``) — module-level aliases are tracked;
- arguments positional or keyword: ``at_share(a, b, 0.3)``,
  ``at_share(a, b, q=0.3)``, ``at_share(src=a, dst=b, q=0.3)``.

Everything here is deterministic: files are scanned in sorted order and
sites are reported in source order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.sources import SourceRegistry

__all__ = [
    "ShareSite",
    "scan_share_sites",
    "scan_workload_sources",
    "site_at",
    "patch_literal",
]

_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor)


@dataclass(frozen=True)
class ShareSite:
    """One static ``at_share`` call: where it is and what it passes."""

    path: str
    line: int
    end_line: int
    src_expr: str
    dst_expr: str
    q_expr: str
    q_literal: Optional[float]
    # (lineno, col_offset, end_lineno, end_col_offset) of the q argument,
    # present only when the argument is a numeric literal
    q_span: Optional[Tuple[int, int, int, int]]
    in_loop: bool

    @property
    def patchable(self) -> bool:
        """A literal q can be rewritten in place; an expression cannot."""
        return self.q_span is not None

    def render(self) -> str:
        loop = " [loop]" if self.in_loop else ""
        return (
            f"{self.path}:{self.line}  "
            f"at_share({self.src_expr}, {self.dst_expr}, {self.q_expr}){loop}"
        )


def _alias_names(tree: ast.AST) -> Set[str]:
    """Module-level names bound to ``at_share``.

    Covers ``from m import at_share [as x]`` and ``x = <expr>.at_share``
    (or ``x = at_share``) assignments anywhere in the module — the
    symbolic-alias approximation the lock scan already uses for mutexes.
    """
    aliases: Set[str] = {"at_share"}
    for _ in range(2):  # one re-pass resolves alias-of-alias chains
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                for name in node.names:
                    if name.name == "at_share":
                        aliases.add(name.asname or name.name)
            elif isinstance(node, ast.Assign):
                value = node.value
                is_share = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "at_share"
                ) or (
                    isinstance(value, ast.Name) and value.id in aliases
                )
                if is_share:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
    return aliases


def _is_at_share(call: ast.Call, aliases: Optional[Set[str]] = None) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr == "at_share"
    if isinstance(func, ast.Name):
        return func.id in (aliases if aliases is not None else {"at_share"})
    return False


def _share_arguments(
    call: ast.Call,
) -> Optional[Tuple[ast.expr, ast.expr]]:
    """The (src, dst) argument expressions, positional or keyword."""
    src: Optional[ast.expr] = call.args[0] if len(call.args) >= 1 else None
    dst: Optional[ast.expr] = call.args[1] if len(call.args) >= 2 else None
    for keyword in call.keywords:
        if keyword.arg == "src":
            src = keyword.value
        elif keyword.arg == "dst":
            dst = keyword.value
    if src is None or dst is None:
        return None
    return src, dst


def _q_argument(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 3:
        return call.args[2]
    for keyword in call.keywords:
        if keyword.arg == "q":
            return keyword.value
    return None


def _literal_value(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


class _SiteCollector(ast.NodeVisitor):
    def __init__(self, path: str, aliases: Set[str]) -> None:
        self.path = path
        self.aliases = aliases
        self.sites: List[ShareSite] = []
        self._loop_depth = 0

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        arguments = (
            _share_arguments(node) if _is_at_share(node, self.aliases) else None
        )
        if arguments is not None:
            src_node, dst_node = arguments
            q_node = _q_argument(node)
            q_literal = _literal_value(q_node) if q_node is not None else None
            q_span: Optional[Tuple[int, int, int, int]] = None
            if (
                q_node is not None
                and q_literal is not None
                and q_node.end_lineno is not None
                and q_node.end_col_offset is not None
            ):
                q_span = (
                    q_node.lineno,
                    q_node.col_offset,
                    q_node.end_lineno,
                    q_node.end_col_offset,
                )
            self.sites.append(
                ShareSite(
                    path=self.path,
                    line=node.lineno,
                    end_line=node.end_lineno or node.lineno,
                    src_expr=ast.unparse(src_node),
                    dst_expr=ast.unparse(dst_node),
                    q_expr=ast.unparse(q_node) if q_node is not None else "?",
                    q_literal=q_literal,
                    q_span=q_span,
                    in_loop=self._loop_depth > 0,
                )
            )
        self.generic_visit(node)


def scan_share_sites(
    path: str, registry: Optional[SourceRegistry] = None
) -> List[ShareSite]:
    """All ``at_share`` calls in one source file, in source order.

    ``registry`` shares the parse with the other analysis passes; without
    one, the file is read and parsed directly (one-shot callers).
    """
    if registry is not None:
        tree: ast.Module = registry.tree(path)
    else:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    collector = _SiteCollector(path, _alias_names(tree))
    collector.visit(tree)
    return collector.sites


def scan_workload_sources(
    root: str, registry: Optional[SourceRegistry] = None
) -> Dict[str, List[ShareSite]]:
    """Scan every workload module under ``root`` (a directory)."""
    sites: Dict[str, List[ShareSite]] = {}
    for path in sorted(Path(root).glob("*.py")):
        found = scan_share_sites(str(path), registry=registry)
        if found:
            sites[str(path)] = found
    return sites


def site_at(sites: List[ShareSite], line: int) -> Optional[ShareSite]:
    """The site whose call spans ``line``, if any."""
    for site in sites:
        if site.line <= line <= site.end_line:
            return site
    return None


def patch_literal(source: str, span: Tuple[int, int, int, int], text: str) -> str:
    """Replace the source span (1-based lines, 0-based cols) with ``text``."""
    lines = source.splitlines(keepends=True)
    lineno, col, end_lineno, end_col = span
    if lineno == end_lineno:
        line = lines[lineno - 1]
        lines[lineno - 1] = line[:col] + text + line[end_col:]
        return "".join(lines)
    first = lines[lineno - 1][:col] + text
    last = lines[end_lineno - 1][end_col:]
    return "".join(lines[: lineno - 1]) + first + last + "".join(lines[end_lineno:])
