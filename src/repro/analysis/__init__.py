"""Static and dynamic analysis of annotations, locks, and races.

The fault campaign (:mod:`repro.faults`) proves bad hints cannot break
correctness; this package finds the bad hints.  Three passes share one
diagnostic framework (:mod:`repro.analysis.diagnostics` -- stable codes,
deterministic ordering, baseline suppression):

- :mod:`repro.analysis.annotations` -- diff ``at_share`` edges against
  the sharing each workload actually exhibits (AN001/AN002/AN003);
- :mod:`repro.analysis.locks` -- static + dynamic lock-order graphs,
  flagging wait-for cycles before they become runtime ``DeadlockError``
  (LK001/LK002/LK003);
- :mod:`repro.analysis.races` -- a vector-clock happens-before sanitizer
  over the event stream (RS001);
- :mod:`repro.analysis.determinism` -- ``repro-lint``, guarding the
  simulator's own source against nondeterminism (DT001-DT005);
- :mod:`repro.analysis.mc` -- the exhaustive schedule model checker
  (stateless search + DPOR) and the symbolic cache-model verification
  (MC001-MC005);
- :mod:`repro.analysis.staticshare` -- interprocedural static sharing
  inference: predict the ``at_share`` graph from source without running
  the workload, cross-validate it against the dynamic audit
  (SA001-SA003), and feed unexercised-path candidates to the repair
  engine.

Entry points: ``repro analyze``, ``repro lint``, and ``repro mc`` in
:mod:`repro.cli`, or :func:`repro.analysis.engine.run_analysis`
programmatically.  See docs/ANALYSIS.md for the code registry and
suppression workflow.
"""

from repro.analysis.annotations import AnnotationAuditor
from repro.analysis.determinism import lint_file, lint_paths
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Report,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    PASSES,
    analyze_workload,
    lint_workload_names,
    run_analysis,
    static_validate_workload,
)
from repro.analysis.locks import LockGraph, LockOrderMonitor, scan_workload_class
from repro.analysis.races import RaceSanitizer

__all__ = [
    "CODES",
    "PASSES",
    "AnnotationAuditor",
    "Diagnostic",
    "LockGraph",
    "LockOrderMonitor",
    "RaceSanitizer",
    "Report",
    "analyze_workload",
    "lint_file",
    "lint_paths",
    "lint_workload_names",
    "load_baseline",
    "run_analysis",
    "scan_workload_class",
    "static_validate_workload",
    "write_baseline",
]
