"""The diagnostic vocabulary shared by every analysis pass.

A :class:`Diagnostic` is one finding: a stable code (``AN001``), a
severity, an optional ``file:line`` anchor, and a human-readable message.
Diagnostics order and render deterministically -- two runs of the same
analysis over the same inputs produce byte-identical reports, which is
what lets CI diff a report against a checked-in baseline.

Codes are append-only: a code's meaning never changes once shipped, so
baselines and suppressions stay valid across versions.  The registry:

======  ========  ======================================================
code    severity  meaning
======  ========  ======================================================
AN001   warning   missing-edge: threads demonstrably share state but no
                  ``at_share`` edge (or annotated path) covers the pair
AN002   warning   spurious-edge: an annotated pair shares (almost) no
                  state in the observed run
AN003   warning   mis-weighted-edge: annotated q is off by > 0.25 from
                  the footprint-derived coefficient
LK001   error     lock-order-cycle: the (static or dynamic) lock-order
                  graph contains a cycle -- a potential deadlock
LK002   warning   blocking-while-holding: a thread performed a blocking
                  operation while holding a mutex
LK003   error     finished-holding-lock: a thread ended its body still
                  owning a mutex
RS001   warning   unsynchronized-sharing: conflicting accesses to the
                  same cache line with no happens-before ordering
DT001   error     unseeded-rng: ``default_rng()`` with no seed
DT002   warning   hidden-seed: ``default_rng(<literal>)`` buried in an
                  implementation instead of a plumbed parameter
DT003   error     wall-clock: reading host time inside the simulation
DT004   warning   unordered-iteration: iterating a set (or set-valued
                  name) where order can leak into results
DT005   warning   id-keyed-dict-iteration: iterating a dict keyed by
                  ``id(...)`` -- insertion order follows memory layout,
                  which is not stable across runs
DT006   error     unaudited-timer: a raw wall-clock read inside a
                  subsystem with an audited clock (``repro/bench``,
                  ``repro/parallel/dispatch``) outside that clock
                  module -- timing must flow through the subsystem's
                  one audited reader
DT007   warning   registration-order-iteration: raw iteration over a
                  dispatch node registry's ``.nodes`` mapping --
                  insertion order is worker registration order, a
                  race; use the sorted accessors
MC001   error     unpredicted-deadlock: the model checker reached a
                  deadlock that the lock-order pass does not predict
MC002   error     sync-order-violation: non-FIFO mutex/semaphore handoff
                  or a barrier generation-safety breach in some explored
                  interleaving
MC003   error     result-divergence: two explored interleavings produced
                  different final workload results (the "hints never
                  affect correctness" theorem is violated)
MC004   error     priority-update-violation: an LFF context switch
                  touched a thread that is neither the blocker nor one
                  of its d graph-successors, or touched more than 1+d
                  entries
MC005   error     cache-model-violation: the closed-form footprint
                  formulas disagree with the brute-forced birth-death
                  chain, or a case-3 reduction / monotonicity law fails
SA001   warning   static-unannotated-sharing: the static inference
                  predicts two spawn units share state (definite or
                  conditional tier) but no ``at_share`` covers the pair
SA002   warning   static-unreachable-annotation: an ``at_share`` pair
                  whose units have statically disjoint footprints -- the
                  annotated sharing is unreachable from the source
SA003   warning   static-dynamic-disagreement: a definite static edge
                  the dynamic audit observed no overlap for, or a
                  dynamically-expected pair the static pass predicts no
                  edge for
======  ========  ======================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: code -> (severity, short title); append-only
CODES: Dict[str, Tuple[str, str]] = {
    "DT000": ("error", "parse-error"),
    "AN001": ("warning", "missing-edge"),
    "AN002": ("warning", "spurious-edge"),
    "AN003": ("warning", "mis-weighted-edge"),
    "LK001": ("error", "lock-order-cycle"),
    "LK002": ("warning", "blocking-while-holding"),
    "LK003": ("error", "finished-holding-lock"),
    "RS001": ("warning", "unsynchronized-sharing"),
    "DT001": ("error", "unseeded-rng"),
    "DT002": ("warning", "hidden-seed"),
    "DT003": ("error", "wall-clock"),
    "DT004": ("warning", "unordered-iteration"),
    "DT005": ("warning", "id-keyed-dict-iteration"),
    "DT006": ("error", "unaudited-timer"),
    "DT007": ("warning", "registration-order-iteration"),
    "MC001": ("error", "unpredicted-deadlock"),
    "MC002": ("error", "sync-order-violation"),
    "MC003": ("error", "result-divergence"),
    "MC004": ("error", "priority-update-violation"),
    "MC005": ("error", "cache-model-violation"),
    "SA001": ("warning", "static-unannotated-sharing"),
    "SA002": ("warning", "static-unreachable-annotation"),
    "SA003": ("warning", "static-dynamic-disagreement"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding, ordered and fingerprinted deterministically."""

    code: str
    message: str
    #: ``path:line`` anchor (repo-relative path), or None for findings
    #: about run behaviour with no single source location
    anchor: Optional[str] = None
    #: which pass/workload produced it, e.g. ``annotations(merge)``
    source: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        return CODES[self.code][0]

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    @property
    def sort_key(self) -> tuple:
        return (self.source, self.code, self.anchor or "", self.message)

    def fingerprint(self) -> str:
        """Stable identity for baselining: survives unrelated findings
        appearing or disappearing around this one."""
        payload = f"{self.code}|{self.source}|{self.anchor or ''}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def render(self) -> str:
        anchor = f"{self.anchor}: " if self.anchor else ""
        src = f" [{self.source}]" if self.source else ""
        return (
            f"{anchor}{self.severity} {self.code} ({self.title}): "
            f"{self.message}{src}"
        )


@dataclass
class Report:
    """An ordered collection of diagnostics plus baseline bookkeeping."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: fingerprints accepted by the checked-in baseline
    baseline: Set[str] = field(default_factory=set)

    def extend(self, found: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(found)

    def finalize(self) -> None:
        """Sort into the canonical deterministic order."""
        self.diagnostics.sort(key=lambda d: d.sort_key)

    def new_diagnostics(self) -> List[Diagnostic]:
        """Findings not covered by the baseline."""
        return [
            d for d in self.diagnostics if d.fingerprint() not in self.baseline
        ]

    def stale_fingerprints(self) -> List[str]:
        """Baseline entries the current run no longer produces.

        A stale entry means the underlying bug was fixed but the baseline
        still accepts it -- the drift ``repro analyze --strict-baseline``
        exists to catch (the CI job keeps the checked-in file exact).
        """
        produced = {d.fingerprint() for d in self.diagnostics}
        return sorted(fp for fp in self.baseline if fp not in produced)

    def render(self) -> str:
        """The byte-stable report text."""
        self.finalize()
        lines: List[str] = []
        fresh = 0
        for diag in self.diagnostics:
            suppressed = diag.fingerprint() in self.baseline
            marker = "  (baseline)" if suppressed else ""
            if not suppressed:
                fresh += 1
            lines.append(f"{diag.fingerprint()}  {diag.render()}{marker}")
        lines.append(
            f"-- {len(self.diagnostics)} finding(s), {fresh} new, "
            f"{len(self.diagnostics) - fresh} baselined"
        )
        return "\n".join(lines)


#: marker introducing a structured waiver on a baseline line
WAIVE_MARKER = "# waive:"


def write_baseline(
    path: str, report: Report, waivers: Optional[Dict[str, str]] = None
) -> None:
    """Persist every current finding as accepted.

    ``waivers`` maps fingerprints to justifications; a waived finding's
    line carries the reason as a structured ``# waive: <reason>`` suffix
    so an accepted finding is distinguishable from a merely-unsorted one.
    """
    report.finalize()
    waivers = waivers or {}
    lines = [
        "# repro analyze baseline: accepted diagnostic fingerprints.",
        "# Regenerate with `repro analyze --all-workloads --write-baseline`.",
        "# A `# waive: <reason>` suffix records why a finding is accepted",
        "# as permanently unfixable (preserved by --update-baseline).",
    ]
    for diag in report.diagnostics:
        fp = diag.fingerprint()
        line = f"{fp}  {diag.code} {diag.message}"
        if fp in waivers:
            line += f"  {WAIVE_MARKER} {waivers[fp]}"
        lines.append(line)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def refresh_baseline(path: str, report: Report) -> List[Diagnostic]:
    """Regenerate the baseline at ``path`` from ``report`` -- unless the
    report contains *new* error-severity findings.

    Baselining a warning is a judgement call; baselining an error is how
    real bugs get buried, so the refresh refuses and returns the blocking
    errors instead of writing anything.  An empty return value means the
    baseline file was rewritten.  Waivers attached to still-present
    findings are preserved; waivers of findings the run no longer
    produces drop out with their entries.
    """
    report.baseline = load_baseline(path)
    blocking = [
        d for d in report.new_diagnostics() if d.severity == "error"
    ]
    if blocking:
        return blocking
    write_baseline(path, report, waivers=load_waivers(path))
    return []


def add_waiver(
    path: str, report: Report, fingerprint: str, reason: str
) -> Optional[str]:
    """Record a justification for one accepted finding.

    Returns an error string (and writes nothing) when the fingerprint
    does not match a current finding, or when it is an error-severity
    finding that the baseline has not already accepted -- waiving is for
    documented-unfixable warnings, not for burying new errors.
    """
    report.baseline = load_baseline(path)
    by_fp = {d.fingerprint(): d for d in report.diagnostics}
    diag = by_fp.get(fingerprint)
    if diag is None:
        return f"no current finding has fingerprint {fingerprint}"
    if diag.severity == "error" and fingerprint not in report.baseline:
        return (
            f"refusing to waive new error-severity finding {fingerprint} "
            f"({diag.code}); fix it instead"
        )
    waivers = load_waivers(path)
    waivers[fingerprint] = reason
    write_baseline(path, report, waivers=waivers)
    return None


def load_baseline(path: str) -> Set[str]:
    """Accepted fingerprints (first token of each non-comment line)."""
    accepted: Set[str] = set()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                accepted.add(line.split()[0])
    except FileNotFoundError:
        pass
    return accepted


def load_waivers(path: str) -> Dict[str, str]:
    """Fingerprint -> waive reason, from the structured baseline suffixes."""
    waivers: Dict[str, str] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                marker = line.find(WAIVE_MARKER)
                if marker >= 0:
                    reason = line[marker + len(WAIVE_MARKER):].strip()
                    waivers[line.split()[0]] = reason
    except FileNotFoundError:
        pass
    return waivers
