"""Fix synthesis for annotation diagnostics: detect -> localize -> verify.

The auditor (:mod:`repro.analysis.annotations`) proves an ``at_share``
hint wrong; this module closes the loop and produces the *correct* hint.
Three stages, mirroring a production lint/codemod stack:

1. **Synthesis.**  From the auditor's observation table (observed
   footprint overlaps, corroborated by the online inference's peak
   estimates) compute a minimal repaired edge set: drop spurious edges
   (AN002), re-weight mis-weighted ones to the observed q (AN003), and
   add missing edges (AN001) only where no *repaired* annotated path
   already covers the pair -- a re-weight that restores a chain's
   coefficient product makes the sibling ``add`` fixes unnecessary
   (tsp: one literal fixes 21 findings).

2. **Localization.**  The auditor records the workload call site of
   every annotation (:func:`~repro.analysis.annotations
   .annotation_call_site`); the static AST pass
   (:mod:`repro.analysis.astmap`) decides whether that site's q argument
   is a literal.  Edge fixes group by call site: a loop-generated site
   (photo's stencil rows, tsp's spawn loop) is patchable only when one
   literal serves *every* edge the site generates -- otherwise the fix
   demotes to a suggestion with the reason recorded.

3. **Counterexample-guided verification.**  Apply the candidate fix set
   in-memory (an :class:`AnnotationOverlay` wrapping the sharing graph
   *outside* the auditor, so the re-audit judges the repaired edges),
   re-run the audit, and demote any fix whose claimed fingerprints
   persist or that is incident to a *new* finding; iterate until the
   surviving set re-audits clean.  Verified fixes then get a locality
   run (LFF, annotation-blind vs as-written vs repaired) reporting the
   miss delta each patch buys.

Everything is deterministic: fixed seed, sorted iteration, no wall
clocks -- the suggest report is byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.annotations import (
    WEIGHT_TOLERANCE,
    AnnotationAuditor,
)
from repro.analysis.astmap import (
    ShareSite,
    patch_literal,
    scan_share_sites,
    site_at,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import (
    MAX_ANALYZE_EVENTS,
    AuditRun,
    audit_workload,
    static_validate_workload,
)
from repro.analysis.sources import SourceRegistry
from repro.analysis.staticshare.bridge import (
    StaticCandidate,
    static_candidates,
)

__all__ = [
    "EdgeFix",
    "SiteFix",
    "VerifiedFix",
    "LocalityDelta",
    "RepairResult",
    "AnnotationOverlay",
    "synthesize_fixes",
    "localize_fixes",
    "verify_fixes",
    "measure_locality",
    "repair_workload",
    "apply_fixes",
    "render_report",
]

_ACTION_BY_CODE = {"AN001": "add", "AN002": "drop", "AN003": "reweight"}


# -- data model ---------------------------------------------------------------


@dataclass(frozen=True)
class EdgeFix:
    """One repaired graph edge, identified by thread *names*.

    Names are the identity that survives re-runs; the tids are the
    synthesis run's and are only used to localize against that run's
    recorded call sites.
    """

    action: str  # 'drop' | 'reweight' | 'add'
    src: int
    dst: int
    src_name: str
    dst_name: str
    old_q: Optional[float]
    new_q: float
    observed_q: float
    inferred_q: Optional[float]
    #: fingerprints of the diagnostics this fix claims to resolve
    claims: Tuple[str, ...]


@dataclass(frozen=True)
class SiteFix:
    """Edge fixes grouped by the ``at_share`` call site they came from.

    ``new_literal`` is set only when rewriting the site's q literal
    implements every grouped edge fix at once; otherwise ``note`` says
    why the fix is suggestion-only.
    """

    path: Optional[str]
    line: Optional[int]
    action: str
    edges: Tuple[EdgeFix, ...]
    old_literal: Optional[str]
    new_literal: Optional[str]
    q_span: Optional[Tuple[int, int, int, int]]
    src_expr: Optional[str]
    dst_expr: Optional[str]
    in_loop: bool
    note: str = ""

    @property
    def patchable(self) -> bool:
        return self.new_literal is not None and self.q_span is not None

    @property
    def claims(self) -> Tuple[str, ...]:
        seen: Set[str] = set()
        ordered: List[str] = []
        for edge in self.edges:
            for fp in edge.claims:
                if fp not in seen:
                    seen.add(fp)
                    ordered.append(fp)
        return tuple(ordered)

    def render(self) -> str:
        if self.path is None:
            edge = self.edges[0]
            return (
                f"(no call site)  at_share({edge.src_name}, "
                f"{edge.dst_name}, {edge.new_q:.2f})  [add]"
            )
        where = f"{_relpath(self.path)}:{self.line}"
        change = (
            f"{self.old_literal} -> {self.new_literal}"
            if self.new_literal is not None
            else f"{self.old_literal} -> "
            + "/".join(
                sorted({f"{e.new_q:.2f}" for e in self.edges})
            )
        )
        return (
            f"{where}  at_share({self.src_expr}, {self.dst_expr}, {change})"
        )


@dataclass(frozen=True)
class LocalityDelta:
    """LFF L2 misses: annotation-blind vs as-written vs repaired."""

    blind_misses: int
    before_misses: int
    after_misses: int


@dataclass(frozen=True)
class VerifiedFix:
    """A site fix that survived verification, plus its locality run."""

    fix: SiteFix
    #: LFF misses with only this fix applied (None if locality skipped)
    misses_alone: Optional[int]


@dataclass
class RepairResult:
    """Everything :func:`repair_workload` learned about one workload."""

    workload: str
    fixes: List[VerifiedFix]
    suggestions: List[SiteFix]
    #: fingerprints the verified set resolves (absent from the re-audit)
    resolved: Tuple[str, ...]
    locality: Optional[LocalityDelta]
    iterations: int
    #: candidates sourced from the static inference's SA001 findings --
    #: deliberately NOT CEGAR-verified (an unexercised path re-audits as
    #: spurious by construction); reviewable suggestions only
    static_candidates: List[StaticCandidate] = field(default_factory=list)

    @property
    def patchable_fixes(self) -> List[SiteFix]:
        return [vf.fix for vf in self.fixes if vf.fix.patchable]


# -- the in-memory overlay ----------------------------------------------------


class AnnotationOverlay:
    """Rewrites workload annotation traffic to match a candidate fix set.

    Installed *after* the auditor (so the overlay is the outermost graph
    wrapper and the auditor records the repaired edges).  Inference
    writes pass through untouched -- the estimator's opinion is
    corroboration, not something the repair engine may edit.

    ``blind=True`` drops every workload edge instead: the
    annotation-blind baseline of the locality experiment.
    """

    def __init__(
        self, fixes: Sequence[EdgeFix] = (), blind: bool = False
    ) -> None:
        self.blind = blind
        self._rewrites: Dict[Tuple[str, str], float] = {}
        self._pending_adds: List[EdgeFix] = []
        for fix in fixes:
            if fix.action == "add":
                self._pending_adds.append(fix)
            else:
                self._rewrites[(fix.src_name, fix.dst_name)] = fix.new_q
        self._runtime: Any = None
        self._tids: Dict[str, int] = {}

    def install(
        self, runtime: Any, auditor: Optional[AnnotationAuditor]
    ) -> None:
        self._runtime = runtime
        inner = runtime.graph.share
        rewrites = self._rewrites
        blind = self.blind

        def overlaid_share(src: int, dst: int, q: float) -> None:
            if auditor is not None and auditor.in_inference:
                inner(src, dst, q)
                return
            if blind:
                return
            key = (self._thread_name(src), self._thread_name(dst))
            inner(src, dst, rewrites.get(key, q))

        runtime.graph.share = overlaid_share
        if self._pending_adds and not blind:
            runtime.add_observer(self)

    def _thread_name(self, tid: int) -> str:
        thread = self._runtime.threads.get(tid)
        return thread.name if thread is not None else f"tid-{tid}"

    # observer hook: inject 'add' edges once both endpoints exist
    def on_create(self, parent: Any, thread: Any) -> None:
        if thread.name:
            self._tids[thread.name] = thread.tid
        still_pending: List[EdgeFix] = []
        for fix in self._pending_adds:
            src = self._tids.get(fix.src_name)
            dst = self._tids.get(fix.dst_name)
            if src is None or dst is None:
                still_pending.append(fix)
                continue
            # through the full wrapper chain, so the auditor records the
            # injected edge like any workload annotation
            self._runtime.graph.share(src, dst, fix.new_q)
        self._pending_adds = still_pending


# -- stage 1: synthesis -------------------------------------------------------


def synthesize_fixes(audit: AuditRun) -> List[EdgeFix]:
    """The minimal repaired edge set for one audited run."""
    auditor = audit.auditor
    if auditor is None:
        return []
    table = auditor.observations()
    pairs = auditor.diagnose_pairs(audit.source, audit.anchor)
    corroboration: Dict[Tuple[int, int], float] = {}
    if audit.inference is not None:
        corroboration = audit.inference.final_estimates()

    claims: Dict[Tuple[int, int], List[str]] = {}
    codes: Dict[Tuple[int, int], str] = {}
    for key, diag in pairs:
        claims.setdefault(key, []).append(diag.fingerprint)
        codes[key] = diag.code

    def _edge_fix(key: Tuple[int, int], action: str, new_q: float) -> EdgeFix:
        obs = table[key]
        inferred = obs.inferred_q
        if inferred is None:
            peak = corroboration.get(key, 0.0)
            inferred = peak if peak > 0.0 else None
        return EdgeFix(
            action=action,
            src=obs.src,
            dst=obs.dst,
            src_name=obs.src_name,
            dst_name=obs.dst_name,
            old_q=obs.annotated_q,
            new_q=new_q,
            observed_q=obs.q_expected,
            inferred_q=inferred,
            claims=tuple(claims[key]),
        )

    fixes: List[EdgeFix] = []
    # drops and re-weights first: they reshape the annotated adjacency
    # the 'add' stage computes path coverage over
    repaired: Dict[Tuple[int, int], float] = dict(auditor.annotated)
    for key in sorted(codes):
        action = _ACTION_BY_CODE[codes[key]]
        if action == "drop":
            fixes.append(_edge_fix(key, "drop", 0.0))
            repaired.pop(key, None)
        elif action == "reweight":
            new_q = float(f"{table[key].q_expected:.2f}")
            fixes.append(_edge_fix(key, "reweight", new_q))
            repaired[key] = new_q

    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for (a, b), q in sorted(repaired.items()):
        if q > 0.0:
            adjacency.setdefault(a, []).append((b, q))

    # 'add' only where no repaired path covers the pair; a covered
    # pair's fingerprints become claims of the fixes along its best path
    by_pair = {(f.src, f.dst): i for i, f in enumerate(fixes)}
    for key in sorted(codes):
        if _ACTION_BY_CODE[codes[key]] != "add":
            continue
        obs = table[key]
        product, path_edges = _best_path(adjacency, obs.src, obs.dst)
        if product >= max(0.0, obs.q_expected - WEIGHT_TOLERANCE):
            for edge_key in path_edges:
                index = by_pair.get(edge_key)
                if index is not None:
                    fixes[index] = replace(
                        fixes[index],
                        claims=fixes[index].claims + tuple(claims[key]),
                    )
            continue
        fixes.append(_edge_fix(key, "add", float(f"{obs.q_expected:.2f}")))
    return fixes


def _best_path(
    adjacency: Dict[int, List[Tuple[int, float]]],
    src: int,
    dst: int,
    max_hops: int = 4,
) -> Tuple[float, Tuple[Tuple[int, int], ...]]:
    """Like :func:`best_path_product`, but also returns the path edges."""
    best_product = 0.0
    best_edges: Tuple[Tuple[int, int], ...] = ()
    stack: List[
        Tuple[int, float, Tuple[Tuple[int, int], ...], FrozenSet[int]]
    ] = [(src, 1.0, (), frozenset([src]))]
    while stack:
        node, product, edges, seen = stack.pop()
        if node == dst and edges:
            if product > best_product:
                best_product, best_edges = product, edges
            continue
        if len(edges) >= max_hops:
            continue
        for nxt, q in sorted(adjacency.get(node, ())):
            if nxt not in seen:
                stack.append(
                    (nxt, product * q, edges + ((node, nxt),), seen | {nxt})
                )
    return best_product, best_edges


# -- stage 2: localization ----------------------------------------------------


def localize_fixes(
    audit: AuditRun,
    edge_fixes: Sequence[EdgeFix],
    registry: Optional[SourceRegistry] = None,
) -> List[SiteFix]:
    """Group edge fixes by the call site each edge was annotated from."""
    auditor = audit.auditor
    assert auditor is not None
    sites_of = auditor.annotation_sites
    site_population: Dict[Tuple[str, int], int] = {}
    for site in sites_of.values():
        site_population[site] = site_population.get(site, 0) + 1

    grouped: Dict[Tuple[str, int], List[EdgeFix]] = {}
    siteless: List[EdgeFix] = []
    for fix in edge_fixes:
        site = sites_of.get((fix.src, fix.dst))
        if fix.action == "add" or site is None:
            siteless.append(fix)
        else:
            grouped.setdefault(site, []).append(fix)

    ast_cache: Dict[str, List[ShareSite]] = {}
    results: List[SiteFix] = []
    for (path, line) in sorted(grouped):
        edges = tuple(
            sorted(grouped[(path, line)], key=lambda e: (e.src_name, e.dst_name))
        )
        if path not in ast_cache:
            try:
                ast_cache[path] = scan_share_sites(path, registry=registry)
            except (OSError, SyntaxError):
                ast_cache[path] = []
        ast_site = site_at(ast_cache[path], line)
        results.append(_site_fix(path, line, edges, ast_site, site_population))
    for fix in sorted(siteless, key=lambda e: (e.src_name, e.dst_name)):
        results.append(
            SiteFix(
                path=None,
                line=None,
                action=fix.action,
                edges=(fix,),
                old_literal=None,
                new_literal=None,
                q_span=None,
                src_expr=None,
                dst_expr=None,
                in_loop=False,
                note="no existing call site; add a new at_share call",
            )
        )
    return results


def _site_fix(
    path: str,
    line: int,
    edges: Tuple[EdgeFix, ...],
    ast_site: Optional[ShareSite],
    site_population: Dict[Tuple[str, int], int],
) -> SiteFix:
    actions = sorted({e.action for e in edges})
    action = actions[0] if len(actions) == 1 else "mixed"
    note = ""
    new_literal: Optional[str] = None
    if ast_site is None:
        note = "call site not found by the AST scan"
    elif not ast_site.patchable:
        note = f"q is a computed expression ({ast_site.q_expr}), not a literal"
    elif action == "mixed":
        note = "conflicting fix actions share one call site"
    elif len(edges) < site_population[(path, line)]:
        note = (
            f"site generates {site_population[(path, line)]} edge(s), "
            f"only {len(edges)} need fixing; one literal cannot do both"
        )
    elif action == "drop":
        new_literal = "0.0"
    else:  # reweight: one literal must serve every grouped edge
        observed = sorted(e.observed_q for e in edges)
        if observed[-1] - observed[0] > WEIGHT_TOLERANCE:
            note = (
                f"observed q spread {observed[0]:.2f}..{observed[-1]:.2f} "
                "exceeds tolerance; no single literal fits"
            )
        else:
            new_literal = f"{_median(observed):.2f}"
            edges = tuple(
                replace(e, new_q=float(new_literal)) for e in edges
            )
    return SiteFix(
        path=path,
        line=line,
        action=action,
        edges=edges,
        old_literal=ast_site.q_expr if ast_site is not None else None,
        new_literal=new_literal,
        q_span=ast_site.q_span if ast_site is not None else None,
        src_expr=ast_site.src_expr if ast_site is not None else None,
        dst_expr=ast_site.dst_expr if ast_site is not None else None,
        in_loop=ast_site.in_loop if ast_site is not None else False,
        note=note,
    )


def _median(values: Sequence[float]) -> float:
    mid = len(values) // 2
    if len(values) % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def _relpath(path: str) -> str:
    idx = path.rfind("repro/")
    return path[idx:] if idx >= 0 else path


# -- stage 3: counterexample-guided verification ------------------------------


def verify_fixes(
    name: str,
    workload_factory: Optional[Callable[[], object]],
    site_fixes: Sequence[SiteFix],
    original_findings: Sequence[Diagnostic],
    seed: int = 0,
) -> Tuple[List[SiteFix], List[SiteFix], int]:
    """CEGAR loop: re-audit under the overlay, demote fixes that fail.

    A fix fails when a fingerprint it claims survives the re-audit, or
    when the re-audit produces a *new* finding incident to one of the
    fix's threads (the counterexample).  Returns (verified, demoted,
    audit iterations).
    """
    active = list(site_fixes)
    demoted: List[SiteFix] = []
    original_fps = {d.fingerprint for d in original_findings}
    iterations = 0
    while active and iterations <= len(site_fixes) + 1:
        iterations += 1
        overlay = AnnotationOverlay(
            [e for sf in active for e in sf.edges]
        )
        audit = audit_workload(
            name,
            workload_factory=workload_factory,
            passes=("annotations",),
            seed=seed,
            overlay=overlay,
        )
        assert audit.auditor is not None
        pairs = audit.auditor.diagnose_pairs(audit.source, audit.anchor)
        current_fps = {diag.fingerprint for _key, diag in pairs}
        table = audit.auditor.observations()
        new_endpoints: Set[str] = set()
        for key, diag in pairs:
            if diag.fingerprint not in original_fps:
                obs = table[key]
                new_endpoints.add(obs.src_name)
                new_endpoints.add(obs.dst_name)

        failing: List[int] = []
        for index, site_fix in enumerate(active):
            if any(fp in current_fps for fp in site_fix.claims):
                failing.append(index)
                continue
            touched = {e.src_name for e in site_fix.edges} | {
                e.dst_name for e in site_fix.edges
            }
            if touched & new_endpoints:
                failing.append(index)
        if not failing:
            if new_endpoints:
                # a new finding none of the fixes explains: the whole
                # candidate set is suspect, verify nothing
                demoted.extend(active)
                return [], demoted, iterations
            return active, demoted, iterations
        for index in reversed(failing):
            demoted.append(active.pop(index))
    demoted.extend(active)
    return [], demoted, iterations


def measure_locality(
    workload_factory: Callable[[], object],
    edge_fixes: Sequence[EdgeFix],
    seed: int = 0,
) -> LocalityDelta:
    """LFF misses: annotation-blind vs as-written vs repaired."""
    blind = _locality_run(workload_factory, AnnotationOverlay(blind=True), seed)
    before = _locality_run(workload_factory, None, seed)
    after = _locality_run(
        workload_factory, AnnotationOverlay(edge_fixes), seed
    )
    return LocalityDelta(
        blind_misses=blind, before_misses=before, after_misses=after
    )


def _locality_run(
    workload_factory: Callable[[], object],
    overlay: Optional[AnnotationOverlay],
    seed: int,
) -> int:
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.sched import make_lff
    from repro.threads.runtime import Runtime

    machine = Machine(SMALL.with_cpus(2), seed=seed)
    runtime = Runtime(machine, make_lff())
    if overlay is not None:
        overlay.install(runtime, None)
    workload: Any = workload_factory()
    workload.build(runtime)
    runtime.run(max_events=MAX_ANALYZE_EVENTS)
    return int(machine.total_l2_misses())


# -- orchestration ------------------------------------------------------------


def repair_workload(
    name: str,
    workload_factory: Optional[Callable[[], object]] = None,
    seed: int = 0,
    with_locality: bool = True,
    with_static: bool = False,
    registry: Optional[SourceRegistry] = None,
) -> RepairResult:
    """Synthesize, localize, and verify annotation fixes for one workload.

    ``with_static`` additionally runs the static sharing inference and
    attaches its SA001-sourced candidates (unverified by construction --
    see :mod:`repro.analysis.staticshare.bridge`) to the result.
    """
    audit = audit_workload(
        name,
        workload_factory=workload_factory,
        passes=("annotations",),
        seed=seed,
        registry=registry,
    )
    from_static: List[StaticCandidate] = []
    if with_static:
        validation = static_validate_workload(
            name,
            workload_factory=workload_factory,
            registry=registry,
            audit=audit,
        )
        if validation is not None:
            from_static = static_candidates(validation)
    edge_fixes = synthesize_fixes(audit)
    site_fixes = localize_fixes(audit, edge_fixes, registry=registry)
    if not site_fixes:
        return RepairResult(
            workload=name,
            fixes=[],
            suggestions=[],
            resolved=(),
            locality=None,
            iterations=0,
            static_candidates=from_static,
        )
    verified, demoted, iterations = verify_fixes(
        name, workload_factory, site_fixes, audit.findings, seed=seed
    )
    locality: Optional[LocalityDelta] = None
    fixes: List[VerifiedFix] = []
    if verified:
        factory = workload_factory
        if factory is None:
            from repro.analysis.engine import _lint_workloads

            factory = _lint_workloads()[name]
        if with_locality:
            locality = measure_locality(
                factory, [e for sf in verified for e in sf.edges], seed=seed
            )
            for site_fix in verified:
                alone = _locality_run(
                    factory,
                    AnnotationOverlay(site_fix.edges),
                    seed,
                )
                fixes.append(VerifiedFix(fix=site_fix, misses_alone=alone))
        else:
            fixes = [VerifiedFix(fix=sf, misses_alone=None) for sf in verified]
    resolved: List[str] = []
    for site_fix in verified:
        for fp in site_fix.claims:
            if fp not in resolved:
                resolved.append(fp)
    return RepairResult(
        workload=name,
        fixes=fixes,
        suggestions=demoted,
        resolved=tuple(resolved),
        locality=locality,
        iterations=iterations,
        static_candidates=from_static,
    )


def apply_fixes(site_fixes: Sequence[SiteFix]) -> List[str]:
    """Rewrite the q literals of patchable fixes in place.

    Spans within one file are patched bottom-up so earlier rewrites
    cannot shift later spans.  Returns the patched paths, sorted.
    """
    by_path: Dict[str, List[SiteFix]] = {}
    for site_fix in site_fixes:
        if site_fix.patchable and site_fix.path is not None:
            by_path.setdefault(site_fix.path, []).append(site_fix)
    patched: List[str] = []
    for path in sorted(by_path):
        source = Path(path).read_text(encoding="utf-8")
        fixes = sorted(
            by_path[path],
            key=lambda sf: sf.q_span if sf.q_span is not None else (0, 0, 0, 0),
            reverse=True,
        )
        for site_fix in fixes:
            assert site_fix.q_span is not None
            assert site_fix.new_literal is not None
            source = patch_literal(source, site_fix.q_span, site_fix.new_literal)
        Path(path).write_text(source, encoding="utf-8")
        patched.append(path)
    return patched


def render_report(result: RepairResult) -> List[str]:
    """Human-readable suggest report, one line per fix/suggestion."""
    lines = [
        f"repair({result.workload}): {len(result.fixes)} verified fix(es), "
        f"{len(result.suggestions)} suggestion(s), "
        f"{len(result.resolved)} finding(s) resolved "
        f"[{result.iterations} verification run(s)]"
    ]
    for verified in result.fixes:
        fix = verified.fix
        tail = "" if fix.patchable else "  (not literal-patchable)"
        corroborated = sum(
            1 for e in fix.edges if e.inferred_q is not None
        )
        if corroborated:
            tail += f"  [inference corroborates {corroborated}/{len(fix.edges)}]"
        if verified.misses_alone is not None and result.locality is not None:
            tail += (
                f"  misses {result.locality.before_misses} -> "
                f"{verified.misses_alone}"
            )
        lines.append(
            f"  [fix] {fix.render()}  resolves {len(fix.claims)} finding(s)"
            f"{tail}"
        )
    for suggestion in result.suggestions:
        note = f"  ({suggestion.note})" if suggestion.note else ""
        lines.append(f"  [suggest] {suggestion.render()}{note}")
    for candidate in result.static_candidates:
        lines.append(f"  [static] {candidate.render()}")
    if result.locality is not None:
        lines.append(
            f"  locality (LFF misses): blind {result.locality.blind_misses}, "
            f"as-written {result.locality.before_misses}, "
            f"repaired {result.locality.after_misses}"
        )
    return lines


def reload_workload_modules() -> None:
    """Re-import the workload package after its source was patched.

    ``repro analyze --fix`` patches files that are already imported;
    the regeneration audit must see the repaired annotations.  Reload
    submodules first, then the package, so the package's re-exported
    names rebind to the reloaded classes.
    """
    import importlib
    import sys as _sys

    for module_name in sorted(
        m for m in _sys.modules if m.startswith("repro.workloads.")
    ):
        importlib.reload(_sys.modules[module_name])
    if "repro.workloads" in _sys.modules:
        importlib.reload(_sys.modules["repro.workloads"])
