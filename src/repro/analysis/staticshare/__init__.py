"""Static sharing inference: predict ``at_share`` graphs from source.

Everything the dynamic auditor learns by running a workload, this
package approximates by *reading* it: spawn sites become units, effect
summaries propagate over the call graph, region instances classify by
allocation context, and out comes a predicted sharing graph with
confidence tiers -- before any run exists.  Cross-validation then diffs
the prediction against a dynamic audit (SA001/SA002/SA003 diagnostics,
precision/recall), and the bridge hands unannotated predicted edges to
the repair engine as reviewable candidates.

Entry point: :func:`predict_workload` on a workload class.  See
``docs/ANALYSIS.md`` ("Static sharing inference") for the full model.
"""

from __future__ import annotations

import inspect
from typing import Optional

from repro.analysis.sources import SourceRegistry
from repro.analysis.staticshare.bridge import (
    DEFAULT_STATIC_Q,
    StaticCandidate,
    static_candidates,
)
from repro.analysis.staticshare.crossval import (
    CrossValidation,
    cross_validate,
    render_prediction,
)
from repro.analysis.staticshare.extract import ClassScan, scan_class
from repro.analysis.staticshare.infer import infer_prediction
from repro.analysis.staticshare.model import (
    TIER_CONDITIONAL,
    TIER_DEFINITE,
    TIER_HEURISTIC,
    TIERS,
    PredictedEdge,
    RegionDef,
    ShareSiteRef,
    SpawnUnit,
    StaticPrediction,
)

__all__ = [
    "TIER_DEFINITE",
    "TIER_CONDITIONAL",
    "TIER_HEURISTIC",
    "TIERS",
    "DEFAULT_STATIC_Q",
    "RegionDef",
    "SpawnUnit",
    "PredictedEdge",
    "ShareSiteRef",
    "StaticPrediction",
    "ClassScan",
    "CrossValidation",
    "StaticCandidate",
    "scan_class",
    "infer_prediction",
    "cross_validate",
    "render_prediction",
    "static_candidates",
    "predict_workload",
]


def predict_workload(
    workload_cls: type,
    workload: str,
    registry: Optional[SourceRegistry] = None,
) -> Optional[StaticPrediction]:
    """Predict the sharing graph of a workload class from its source.

    Returns None when the source cannot be located, read, or parsed --
    the static pass degrades to absent, it never fails an analysis run.
    """
    try:
        path = inspect.getsourcefile(workload_cls)
    except TypeError:
        return None
    if path is None:
        return None
    if registry is None:
        registry = SourceRegistry()
    try:
        tree = registry.tree(path)
    except (OSError, SyntaxError):
        return None
    scan = scan_class(tree, workload_cls.__name__, path)
    if scan is None:
        return None
    return infer_prediction(scan, workload)
