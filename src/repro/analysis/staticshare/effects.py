"""Per-function effect summaries with interprocedural propagation.

An *effect* is ``(root, write, conditional)``: the function's body (or
something it calls) touches the region instance ``root`` names.  Roots
come in three shapes:

- ``attr:<name>`` / ``local:<func>:<name>`` -- a concrete allocation
  site (see :mod:`repro.analysis.staticshare.model`);
- ``param:<func>:<name>`` -- "whatever region my caller passes in":
  the summary is parameter-polymorphic and gets instantiated at each
  call (or spawn) site;
- ``unknown:<text>`` -- a touch whose argument the extractor could not
  resolve; carried through so the inference can still form heuristic
  (text-match) edges.

Propagation is a standard bottom-up fixpoint over the call records: a
call substitutes the callee's ``param:`` roots with the caller's actual
bindings and hoists everything else unchanged, OR-ing the call's own
conditionality in.  Recursion (merge sort's ``yield from`` split, tsp's
self-spawning nodes) converges because the root set is finite and the
transfer is monotone.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.staticshare.extract import ClassScan

__all__ = ["Effect", "summarize"]

#: (region root, is-write, behind-a-branch)
Effect = Tuple[str, bool, bool]


def _add(store: Dict[str, Tuple[bool, bool]], root: str, write: bool, cond: bool) -> bool:
    """Join one effect into ``store``; True when anything changed.

    The join is monotone toward "write" and away from "conditional": a
    touch seen both unconditionally and under a branch is unconditional.
    """
    prior = store.get(root)
    if prior is None:
        store[root] = (write, cond)
        return True
    merged = (prior[0] or write, prior[1] and cond)
    if merged != prior:
        store[root] = merged
        return True
    return False


def summarize(scan: ClassScan) -> Dict[str, Tuple[Effect, ...]]:
    """Fixpoint effect summaries for every function in the scan."""
    stores: Dict[str, Dict[str, Tuple[bool, bool]]] = {
        name: {} for name in scan.functions
    }
    for name, touches in scan.touches.items():
        store = stores.setdefault(name, {})
        for touch in touches:
            for root in touch.roots:
                _add(store, root, touch.write, touch.conditional)

    # bottom-up propagation; bound the iteration defensively even though
    # monotonicity guarantees convergence
    for _ in range(len(scan.functions) + 2):
        changed = False
        for name in sorted(scan.calls):
            store = stores.setdefault(name, {})
            for call in scan.calls[name]:
                callee_store = stores.get(call.callee, {})
                for root in sorted(callee_store):
                    write, cond = callee_store[root]
                    cond = cond or call.conditional
                    prefix = f"param:{call.callee}:"
                    if root.startswith(prefix):
                        param = root[len(prefix):]
                        for actual in call.bindings.get(param, ()):
                            changed = _add(store, actual, write, cond) or changed
                    else:
                        changed = _add(store, root, write, cond) or changed
        if not changed:
            break

    out: Dict[str, Tuple[Effect, ...]] = {}
    for name in sorted(stores):
        store = stores[name]
        out[name] = tuple(
            (root, store[root][0], store[root][1]) for root in sorted(store)
        )
    return out
