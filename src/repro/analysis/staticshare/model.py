"""The static sharing vocabulary: regions, spawn units, predicted edges.

The inference never executes a workload, so its objects name *source
constructs*, not runtime instances:

- a :class:`RegionDef` is one ``runtime.alloc``/``alloc_lines`` call
  site -- possibly standing for many runtime regions when it sits in a
  loop or a thread body;
- a :class:`SpawnUnit` is one ``at_create`` call site -- possibly
  standing for many threads (``multi``);
- a :class:`PredictedEdge` says two units' threads are expected to
  share state, with a confidence *tier*:

  ========== ========================================================
  tier       evidence
  ========== ========================================================
  definite   both units unconditionally touch a common region
             instance on every execution of their bodies
  conditional at least one side's touch sits behind a branch, or the
             common instance is reached through a per-execution
             allocation handed across a spawn (alias-approximate)
  heuristic  weaker evidence only (text-level matches); never drives
             SA diagnostics on its own
  ========== ========================================================

Everything is ordered and rendered deterministically: units sort by
id, edges by (src, dst), and ids embed source order, so two runs over
the same source are byte-identical -- the same property the dynamic
report gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "TIER_DEFINITE",
    "TIER_CONDITIONAL",
    "TIER_HEURISTIC",
    "TIERS",
    "RegionDef",
    "SpawnUnit",
    "PredictedEdge",
    "ShareSiteRef",
    "StaticPrediction",
]

TIER_DEFINITE = "definite"
TIER_CONDITIONAL = "conditional"
TIER_HEURISTIC = "heuristic"
#: confidence order, strongest first
TIERS = (TIER_DEFINITE, TIER_CONDITIONAL, TIER_HEURISTIC)


@dataclass(frozen=True)
class RegionDef:
    """One static allocation site (``runtime.alloc*`` call)."""

    #: instance key: ``attr:<name>`` for ``self.X`` regions,
    #: ``local:<func>:<name>`` for function locals
    key: str
    #: the allocation's name argument when it is (or starts with) a
    #: string literal, e.g. ``merge-array`` or ``tsp-node-``
    label: Optional[str]
    #: size in cache lines when statically evaluable, else None
    lines: Optional[int]
    #: qualified name of the function containing the allocation
    function: str
    lineno: int
    #: allocated inside a loop/comprehension (one instance per iteration)
    in_loop: bool

    @property
    def is_attr(self) -> bool:
        return self.key.startswith("attr:")

    def render(self) -> str:
        label = self.label if self.label is not None else "?"
        size = f"{self.lines} line(s)" if self.lines is not None else "? lines"
        loop = " [loop]" if self.in_loop else ""
        return f"{self.key}  '{label}'  {size}  ({self.function}:{self.lineno}){loop}"


@dataclass(frozen=True)
class SpawnUnit:
    """One static ``at_create`` call site."""

    unit_id: str
    #: the thread-name argument's constant value, when fully constant
    name_exact: Optional[str]
    #: leading constant part of a computed thread name (f-string / concat)
    name_prefix: str
    #: qualified name of the body function the site spawns
    body: str
    #: body parameter name -> region instance keys bound at the site
    bindings: Mapping[str, Tuple[str, ...]]
    #: qualified name of the function containing the spawn site
    function: str
    lineno: int
    #: the site can create more than one thread (loop, comprehension, or
    #: a body function that itself executes more than once)
    multi: bool

    @property
    def display(self) -> str:
        """The name threads from this unit carry, as a glob-ish pattern."""
        if self.name_exact is not None:
            return self.name_exact
        if self.name_prefix:
            return self.name_prefix + "*"
        return self.unit_id

    def matches(self, thread_name: str) -> bool:
        if self.name_exact is not None:
            return thread_name == self.name_exact
        if self.name_prefix:
            return thread_name.startswith(self.name_prefix)
        return False

    def match_strength(self, thread_name: str) -> int:
        """Longest-match score for resolving overlapping name patterns."""
        if self.name_exact is not None and thread_name == self.name_exact:
            return 1 + len(self.name_exact)  # exact beats any prefix
        if self.name_prefix and thread_name.startswith(self.name_prefix):
            return len(self.name_prefix)
        return 0

    def render(self) -> str:
        multi = " [multi]" if self.multi else ""
        return (
            f"{self.unit_id}  '{self.display}'  body={self.body}  "
            f"({self.function}:{self.lineno}){multi}"
        )


@dataclass(frozen=True)
class ShareSiteRef:
    """One statically-resolved ``at_share`` call: which unit pairs it
    annotates (the cross product of the resolved src/dst unit sets)."""

    function: str
    lineno: int
    src_units: Tuple[str, ...]
    dst_units: Tuple[str, ...]
    q_literal: Optional[float]


@dataclass(frozen=True)
class PredictedEdge:
    """Two spawn units expected to share state, with evidence."""

    src: str
    dst: str
    src_display: str
    dst_display: str
    tier: str
    #: labels (or keys) of the shared region instances, sorted
    regions: Tuple[str, ...]
    #: statically-estimated sharing coefficient |shared|/|src footprint|,
    #: when every involved region size is statically known
    q_static: Optional[float]

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def render(self) -> str:
        q = f"q~{self.q_static:.2f}" if self.q_static is not None else "q=?"
        via = ", ".join(self.regions)
        return (
            f"{self.src_display} -> {self.dst_display}  [{self.tier}] "
            f"{q}  via {via}"
        )


@dataclass
class StaticPrediction:
    """Everything the inference learned about one workload module."""

    workload: str
    path: str
    class_name: str
    units: Dict[str, SpawnUnit] = field(default_factory=dict)
    regions: Dict[str, RegionDef] = field(default_factory=dict)
    #: (src_unit, dst_unit) -> edge, both directions present
    edges: Dict[Tuple[str, str], PredictedEdge] = field(default_factory=dict)
    #: directed unit pairs some resolved ``at_share`` covers
    annotated_pairs: Dict[Tuple[str, str], ShareSiteRef] = field(
        default_factory=dict
    )
    #: region key -> unit ids whose threads touch it (sorted)
    touchers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: per-unit footprint in lines, None when any size is unknown
    footprints: Dict[str, Optional[int]] = field(default_factory=dict)

    def annotated(self, a: str, b: str) -> bool:
        """Whether either direction of the pair carries an annotation."""
        return (a, b) in self.annotated_pairs or (b, a) in self.annotated_pairs

    def unit_for_thread(self, thread_name: str) -> Optional[str]:
        """The unit whose name pattern best matches a runtime thread."""
        best: Optional[str] = None
        best_score = 0
        for unit_id in sorted(self.units):
            score = self.units[unit_id].match_strength(thread_name)
            if score > best_score:
                best, best_score = unit_id, score
        return best

    def edges_at(self, *tiers: str) -> List[PredictedEdge]:
        wanted = tiers or TIERS
        return [
            self.edges[key]
            for key in sorted(self.edges)
            if self.edges[key].tier in wanted
        ]

    def escaping_regions(self) -> Dict[str, Tuple[str, ...]]:
        """Regions reaching threads of >1 unit (or a multi unit)."""
        out: Dict[str, Tuple[str, ...]] = {}
        for key in sorted(self.touchers):
            units = self.touchers[key]
            if len(units) > 1 or (
                len(units) == 1 and self.units[units[0]].multi
            ):
                out[key] = units
        return out
