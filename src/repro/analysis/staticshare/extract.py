"""AST extraction for the static sharing inference.

One :func:`scan_class` call turns a workload class's source into the
raw material the inference works from, without executing anything:

- **region definitions** -- every ``runtime.alloc``/``alloc_lines``
  call, keyed ``attr:<name>`` (``self.X = runtime.alloc(...)``) or
  ``local:<function>:<name>``, with the allocation label and line count
  when they are literals;
- **touch records** -- every ``Touch(...)``/``touch_region(...)`` call
  per function, with the *region roots* its argument expression
  mentions (resolved through local aliases, closures, and ``self``
  attributes), the write flag, and whether the touch sits behind a
  branch;
- **call records** -- synchronous calls between the class's functions,
  with region-root bindings for the actuals, so effect summaries can
  propagate interprocedurally;
- **spawn sites** -- every ``at_create`` call, resolved to the body
  function it spawns (through lambdas, pre-invoked generator calls, and
  bare function references with default-argument captures), with
  per-parameter region bindings and the thread-name pattern;
- **share sites** -- every ``at_share`` call, with its src/dst argument
  expressions resolved to *tid markers* (spawn sites, ``at_self``,
  tid-holding attributes) for the inference to expand.

The scan is a classic linter approximation: statements are interpreted
in document order, aliasing is by name, branches both execute.  It is
tuned to the idioms the workloads actually use; anything it cannot
resolve degrades to "unknown", never to a crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.staticshare.model import RegionDef

__all__ = [
    "TouchRecord",
    "CallRecord",
    "RawSpawn",
    "RawShare",
    "ClassScan",
    "scan_class",
]

#: cache-line size used to fold ``runtime.alloc(name, <bytes>)`` sizes
#: into lines; matches the simulated machines' line size
LINE_BYTES = 64

_ALLOC_NAMES = ("alloc", "alloc_lines")
_TOUCH_NAMES = ("Touch", "touch_region")
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@dataclass(frozen=True)
class TouchRecord:
    """One static memory touch inside a function."""

    roots: Tuple[str, ...]
    write: bool
    conditional: bool
    lineno: int


@dataclass(frozen=True)
class CallRecord:
    """One synchronous call from a class function to another."""

    callee: str
    #: callee parameter name -> region roots of the actual argument
    bindings: Mapping[str, Tuple[str, ...]]
    conditional: bool


@dataclass(frozen=True)
class RawSpawn:
    """One static ``at_create`` call site."""

    site_id: str
    function: str
    lineno: int
    in_loop: bool
    #: qualified name of the resolved body function, or None
    body: Optional[str]
    #: body parameter name -> region roots bound at the site
    bindings: Mapping[str, Tuple[str, ...]]
    name_exact: Optional[str]
    name_prefix: str


@dataclass(frozen=True)
class RawShare:
    """One static ``at_share`` call with marker-level arg resolution."""

    function: str
    lineno: int
    src_markers: Tuple[str, ...]
    dst_markers: Tuple[str, ...]
    q_literal: Optional[float]


@dataclass
class ClassScan:
    """Everything extracted from one workload class's source."""

    path: str
    class_name: str
    #: qualified function name -> definition node
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: qualified name -> parameter names (``self`` excluded for methods)
    params: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    generators: Set[str] = field(default_factory=set)
    region_defs: Dict[str, RegionDef] = field(default_factory=dict)
    touches: Dict[str, List[TouchRecord]] = field(default_factory=dict)
    calls: Dict[str, List[CallRecord]] = field(default_factory=dict)
    spawns: List[RawSpawn] = field(default_factory=list)
    shares: List[RawShare] = field(default_factory=list)
    #: tid markers accumulated on ``self.<attr>`` assignments
    attr_tids: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


def _call_target(node: ast.Call) -> Optional[str]:
    """The trailing name of a call's target (``runtime.alloc`` -> alloc)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _const_int(node: ast.expr) -> Optional[int]:
    """Fold an integer literal or a simple arithmetic tree of literals."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.FloorDiv) and right != 0:
            return left // right
    return None


def _name_pattern(node: Optional[ast.expr]) -> Tuple[Optional[str], str]:
    """(exact, prefix) of a thread/region name expression.

    A string literal gives an exact name; an f-string or ``"x-" + ...``
    concatenation gives the leading constant prefix; anything else gives
    an empty prefix (the site stays usable, just unmatchable by name).
    """
    if node is None:
        return None, ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.value
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                prefix += value.value
            else:
                break
        return None, prefix
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        exact, prefix = _name_pattern(node.left)
        return None, prefix if exact is None else exact
    return None, ""


def _is_self_attribute(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionScanner:
    """Document-order interpreter for one function body."""

    def __init__(
        self,
        scan: ClassScan,
        qualname: str,
        node: ast.FunctionDef,
        region_env: Dict[str, Tuple[str, ...]],
        tid_env: Dict[str, Tuple[str, ...]],
    ) -> None:
        self.scan = scan
        self.qualname = qualname
        self.node = node
        #: name -> region roots; params start as their own param-roots
        self.region_env = region_env
        self.tid_env = tid_env
        self.nested: List[
            Tuple[str, ast.FunctionDef, Dict[str, Tuple[str, ...]],
                  Dict[str, Tuple[str, ...]]]
        ] = []
        #: spawn-call node -> tid marker, filled as calls are processed
        self._spawn_markers: Dict[ast.Call, str] = {}
        for name in self.scan.params.get(qualname, ()):
            self.region_env.setdefault(name, (f"param:{qualname}:{name}",))

    # -- entry ------------------------------------------------------------

    def run(self) -> None:
        self.scan.touches.setdefault(self.qualname, [])
        self.scan.calls.setdefault(self.qualname, [])
        self._scan_body(self.node.body, loop=0, cond=0)

    # -- statement walk ---------------------------------------------------

    def _scan_body(self, body: Sequence[ast.stmt], loop: int, cond: int) -> None:
        for stmt in body:
            self._scan_stmt(stmt, loop, cond)

    def _scan_stmt(self, stmt: ast.stmt, loop: int, cond: int) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{self.qualname}.{stmt.name}"
            if isinstance(stmt, ast.FunctionDef) and qual in self.scan.functions:
                self.nested.append(
                    (qual, stmt, dict(self.region_env), dict(self.tid_env))
                )
            return
        if isinstance(stmt, ast.For):
            self._process_calls(stmt.iter, loop, cond)
            self._bind_targets(stmt.target, stmt.iter)
            self._scan_body(stmt.body, loop + 1, cond)
            self._scan_body(stmt.orelse, loop + 1, cond)
            return
        if isinstance(stmt, ast.While):
            self._process_calls(stmt.test, loop, cond)
            self._scan_body(stmt.body, loop + 1, cond + 1)
            self._scan_body(stmt.orelse, loop, cond)
            return
        if isinstance(stmt, ast.If):
            self._process_calls(stmt.test, loop, cond)
            self._scan_body(stmt.body, loop, cond + 1)
            self._scan_body(stmt.orelse, loop, cond + 1)
            return
        if isinstance(stmt, (ast.With, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._scan_stmt(child, loop, cond)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                self._process_calls(value, loop, cond)
                targets: List[ast.expr]
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                else:
                    targets = [stmt.target]
                self._assign(targets, value, loop)
            return
        # everything else (Expr with yields, Return, ...): just collect
        # the calls it contains, in order
        self._process_calls(stmt, loop, cond)

    # -- assignment handling ----------------------------------------------

    def _assign(
        self, targets: List[ast.expr], value: ast.expr, loop: int
    ) -> None:
        alloc = self._as_alloc_call(value)
        region_roots = self._region_roots(value)
        tid_markers = self._tid_markers(value)
        for target in targets:
            if alloc is not None:
                self._define_region(target, alloc, loop)
                continue
            self._bind_target(target, region_roots, tid_markers)

    def _bind_targets(self, target: ast.expr, value: ast.expr) -> None:
        """``for target in value``: propagate element roots coarsely."""
        self._bind_target(
            target, self._region_roots(value), self._tid_markers(value)
        )

    def _bind_target(
        self,
        target: ast.expr,
        region_roots: Tuple[str, ...],
        tid_markers: Tuple[str, ...],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, region_roots, tid_markers)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, region_roots, tid_markers)
            return
        attr = _is_self_attribute(target)
        if attr is not None:
            if tid_markers:
                merged = tuple(
                    dict.fromkeys(self.scan.attr_tids.get(attr, ()) + tid_markers)
                )
                self.scan.attr_tids[attr] = merged
            return
        if isinstance(target, ast.Subscript):
            # d[k] = v merges into the container's known contents
            base = target.value
            if isinstance(base, ast.Name):
                if region_roots:
                    merged_r = tuple(dict.fromkeys(
                        self.region_env.get(base.id, ()) + region_roots
                    ))
                    self.region_env[base.id] = merged_r
                if tid_markers:
                    merged_t = tuple(dict.fromkeys(
                        self.tid_env.get(base.id, ()) + tid_markers
                    ))
                    self.tid_env[base.id] = merged_t
            return
        if isinstance(target, ast.Name):
            if region_roots:
                self.region_env[target.id] = region_roots
            elif target.id in self.region_env and not self._is_param(target.id):
                del self.region_env[target.id]
            if tid_markers:
                self.tid_env[target.id] = tid_markers
            return

    def _is_param(self, name: str) -> bool:
        return name in self.scan.params.get(self.qualname, ())

    def _define_region(
        self, target: ast.expr, alloc: ast.Call, loop: int
    ) -> None:
        attr = _is_self_attribute(target)
        if attr is not None:
            key = f"attr:{attr}"
        elif isinstance(target, ast.Name):
            key = f"local:{self.qualname}:{target.id}"
            self.region_env[target.id] = (key,)
        else:
            return
        label, lines = self._alloc_facts(alloc)
        self.scan.region_defs[key] = RegionDef(
            key=key,
            label=label,
            lines=lines,
            function=self.qualname,
            lineno=alloc.lineno,
            in_loop=loop > 0,
        )

    @staticmethod
    def _as_alloc_call(value: ast.expr) -> Optional[ast.Call]:
        if isinstance(value, ast.Call) and _call_target(value) in _ALLOC_NAMES:
            return value
        return None

    @staticmethod
    def _alloc_facts(alloc: ast.Call) -> Tuple[Optional[str], Optional[int]]:
        label: Optional[str] = None
        if alloc.args:
            exact, prefix = _name_pattern(alloc.args[0])
            label = exact if exact is not None else (prefix or None)
        lines: Optional[int] = None
        if len(alloc.args) >= 2:
            size = _const_int(alloc.args[1])
            if size is not None:
                if _call_target(alloc) == "alloc":
                    lines = -(-size // LINE_BYTES)
                else:
                    lines = size
        return label, lines

    # -- expression resolution --------------------------------------------

    def _region_roots(self, expr: ast.expr) -> Tuple[str, ...]:
        """Region instance/param roots mentioned anywhere in ``expr``."""
        roots: List[str] = []
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                for root in self.region_env.get(node.id, ()):
                    if root not in roots:
                        roots.append(root)
            attr = _is_self_attribute(node) if isinstance(node, ast.Attribute) else None
            if attr is not None and f"attr:{attr}" in self.scan.region_defs:
                if f"attr:{attr}" not in roots:
                    roots.append(f"attr:{attr}")
        return tuple(roots)

    def _tid_markers(self, expr: ast.expr) -> Tuple[str, ...]:
        """Tid markers mentioned anywhere in ``expr``."""
        markers: List[str] = []

        def add(found: Sequence[str]) -> None:
            for marker in found:
                if marker not in markers:
                    markers.append(marker)

        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                target = _call_target(node)
                if target == "at_create" and node in self._spawn_markers:
                    add((self._spawn_markers[node],))
                elif target == "at_self":
                    add((f"selfunits:{self.qualname}",))
            elif isinstance(node, ast.Name):
                add(self.tid_env.get(node.id, ()))
            elif isinstance(node, ast.Attribute):
                attr = _is_self_attribute(node)
                if attr is not None:
                    add((f"attrtids:{attr}",))
        return tuple(markers)

    # -- call processing ---------------------------------------------------

    def _process_calls(self, node: ast.AST, loop: int, cond: int) -> None:
        """Handle every Call inside ``node``, in AST order.

        Calls inside comprehensions count as in-loop; calls that are an
        ``at_create`` body argument are *not* synchronous calls of this
        function and are skipped by the effect collector.
        """
        body_args: Set[int] = set()
        for call in self._calls_in(node):
            call_node, in_comp = call
            target = _call_target(call_node)
            if target == "at_create":
                spawn_body = call_node.args[0] if call_node.args else None
                if spawn_body is not None:
                    for inner, _flag in self._calls_in(spawn_body):
                        body_args.add(id(inner))
                self._record_spawn(call_node, loop > 0 or in_comp)
            elif target == "at_share":
                self._record_share(call_node)
            elif target in _TOUCH_NAMES:
                self._record_touch(call_node, cond)
            elif id(call_node) not in body_args:
                self._record_call(call_node, cond)

    @staticmethod
    def _calls_in(node: ast.AST) -> List[Tuple[ast.Call, bool]]:
        """(call, inside-comprehension) pairs, outermost first."""
        found: List[Tuple[ast.Call, bool]] = []

        def walk(current: ast.AST, in_comp: bool) -> None:
            for child in ast.iter_child_nodes(current):
                flag = in_comp or isinstance(child, _COMPREHENSIONS)
                if isinstance(child, ast.Call):
                    found.append((child, in_comp))
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                walk(child, flag)

        if isinstance(node, ast.Call):
            found.append((node, False))
        walk(node, isinstance(node, _COMPREHENSIONS))
        return found

    def _record_touch(self, call: ast.Call, cond: int) -> None:
        if not call.args:
            return
        roots = self._region_roots(call.args[0])
        if not roots:
            roots = (f"unknown:{ast.unparse(call.args[0])}",)
        write = any(
            kw.arg == "write"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )
        self.scan.touches.setdefault(self.qualname, []).append(
            TouchRecord(
                roots=roots,
                write=write,
                conditional=cond > 0,
                lineno=call.lineno,
            )
        )

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        attr = _is_self_attribute(func)
        if attr is not None:
            return attr if attr in self.scan.functions else None
        if isinstance(func, ast.Name):
            parts = self.qualname.split(".")
            for depth in range(len(parts), -1, -1):
                candidate = ".".join(parts[:depth] + [func.id])
                if candidate in self.scan.functions:
                    return candidate
        return None

    def _call_bindings(
        self, call: ast.Call, callee: str, extra_env: Optional[Mapping[str, Tuple[str, ...]]] = None
    ) -> Dict[str, Tuple[str, ...]]:
        params = self.scan.params.get(callee, ())
        bindings: Dict[str, Tuple[str, ...]] = {}

        def roots_of(expr: ast.expr) -> Tuple[str, ...]:
            found = list(self._region_roots(expr))
            if extra_env is not None:
                for node in ast.walk(expr):
                    if isinstance(node, ast.Name):
                        for root in extra_env.get(node.id, ()):
                            if root not in found:
                                found.append(root)
            return tuple(found)

        for index, arg in enumerate(call.args):
            if index < len(params):
                roots = roots_of(arg)
                if roots:
                    bindings[params[index]] = roots
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                roots = roots_of(kw.value)
                if roots:
                    bindings[kw.arg] = roots
        return bindings

    def _record_call(self, call: ast.Call, cond: int) -> None:
        callee = self._resolve_callee(call.func)
        if callee is None:
            return
        self.scan.calls.setdefault(self.qualname, []).append(
            CallRecord(
                callee=callee,
                bindings=self._call_bindings(call, callee),
                conditional=cond > 0,
            )
        )

    # -- spawn / share sites ----------------------------------------------

    def _record_spawn(self, call: ast.Call, in_loop: bool) -> None:
        body_expr = call.args[0] if call.args else None
        name_expr: Optional[ast.expr] = (
            call.args[1] if len(call.args) >= 2 else None
        )
        for kw in call.keywords:
            if kw.arg == "name":
                name_expr = kw.value
        body, bindings = self._resolve_spawn_body(body_expr)
        exact, prefix = _name_pattern(name_expr)
        site_id = f"{self.qualname}:{call.lineno}"
        self.scan.spawns.append(
            RawSpawn(
                site_id=site_id,
                function=self.qualname,
                lineno=call.lineno,
                in_loop=in_loop,
                body=body,
                bindings=bindings,
                name_exact=exact,
                name_prefix=prefix,
            )
        )
        self._spawn_markers[call] = f"unit:{site_id}"

    def _resolve_spawn_body(
        self, body_expr: Optional[ast.expr]
    ) -> Tuple[Optional[str], Dict[str, Tuple[str, ...]]]:
        """(body function, param->region-roots bindings) for a spawn arg."""
        if body_expr is None:
            return None, {}
        if isinstance(body_expr, ast.Lambda):
            # lambda-with-captures: defaults bind the lambda's params in
            # the current scope, then the wrapped call resolves with
            # those captures visible
            lam_env: Dict[str, Tuple[str, ...]] = {}
            lam_args = body_expr.args
            defaults = lam_args.defaults
            names = [a.arg for a in lam_args.args]
            for param, default in zip(names[len(names) - len(defaults):], defaults):
                roots = self._region_roots(default)
                if roots:
                    lam_env[param] = roots
            inner = body_expr.body
            if isinstance(inner, ast.Call):
                callee = self._resolve_callee(inner.func)
                if callee is None:
                    return None, {}
                return callee, self._call_bindings(inner, callee, extra_env=lam_env)
            return None, {}
        if isinstance(body_expr, ast.Call):
            callee = self._resolve_callee(body_expr.func)
            if callee is None:
                return None, {}
            return callee, self._call_bindings(body_expr, callee)
        if isinstance(body_expr, ast.Name):
            callee = self._resolve_callee(body_expr)
            if callee is None:
                return None, {}
            # bare reference: default-argument captures are the bindings
            node = self.scan.functions[callee]
            bindings: Dict[str, Tuple[str, ...]] = {}
            defaults = node.args.defaults
            names = [a.arg for a in node.args.args]
            if names and names[0] == "self":
                names = names[1:]
            for param, default in zip(names[len(names) - len(defaults):], defaults):
                roots = self._region_roots(default)
                if roots:
                    bindings[param] = roots
            return callee, bindings
        attr = _is_self_attribute(body_expr)
        if attr is not None and attr in self.scan.functions:
            return attr, {}
        return None, {}

    def _record_share(self, call: ast.Call) -> None:
        args: List[Optional[ast.expr]] = [None, None, None]
        for index, arg in enumerate(call.args[:3]):
            args[index] = arg
        for kw in call.keywords:
            if kw.arg == "src":
                args[0] = kw.value
            elif kw.arg == "dst":
                args[1] = kw.value
            elif kw.arg == "q":
                args[2] = kw.value
        q_literal: Optional[float] = None
        if args[2] is not None and isinstance(args[2], ast.Constant) and isinstance(
            args[2].value, (int, float)
        ):
            q_literal = float(args[2].value)
        self.scan.shares.append(
            RawShare(
                function=self.qualname,
                lineno=call.lineno,
                src_markers=(
                    self._tid_markers(args[0]) if args[0] is not None else ()
                ),
                dst_markers=(
                    self._tid_markers(args[1]) if args[1] is not None else ()
                ),
                q_literal=q_literal,
            )
        )


def _register_functions(scan: ClassScan, class_node: ast.ClassDef) -> None:
    """Map every method and nested function to a qualified name."""

    def register(node: ast.FunctionDef, qualname: str) -> None:
        scan.functions[qualname] = node
        names = [a.arg for a in node.args.args]
        if names and names[0] == "self":
            names = names[1:]
        scan.params[qualname] = tuple(names)
        if _yields_directly(node):
            scan.generators.add(qualname)
        for child in node.body:
            if isinstance(child, ast.FunctionDef):
                register(child, f"{qualname}.{child.name}")
            else:
                for inner in ast.walk(child):
                    if isinstance(inner, ast.FunctionDef):
                        register(inner, f"{qualname}.{inner.name}")

    for item in class_node.body:
        if isinstance(item, ast.FunctionDef):
            register(item, item.name)


def _yields_directly(node: ast.FunctionDef) -> bool:
    """Whether ``node`` itself (not a nested def) contains a yield."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def _collect_attr_regions(scan: ClassScan, class_node: ast.ClassDef) -> None:
    """Pre-pass: every ``self.X = runtime.alloc*(...)`` in any method.

    Collected before function scanning so a touch in an early method can
    resolve an attribute a later method allocates.
    """
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and _call_target(value) in _ALLOC_NAMES
        ):
            continue
        for target in node.targets:
            attr = _is_self_attribute(target)
            if attr is None:
                continue
            label, lines = _FunctionScanner._alloc_facts(value)
            qual = _enclosing_function(class_node, node)
            scan.region_defs[f"attr:{attr}"] = RegionDef(
                key=f"attr:{attr}",
                label=label,
                lines=lines,
                function=qual,
                lineno=value.lineno,
                in_loop=False,
            )


def _enclosing_function(class_node: ast.ClassDef, target: ast.AST) -> str:
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef):
            for node in ast.walk(item):
                if node is target:
                    return item.name
    return "?"


def scan_class(
    tree: ast.Module, class_name: str, path: str
) -> Optional[ClassScan]:
    """Scan one class of a parsed module; None if the class is absent."""
    class_node: Optional[ast.ClassDef] = None
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            class_node = node
            break
    if class_node is None:
        return None
    scan = ClassScan(path=path, class_name=class_name)
    _register_functions(scan, class_node)
    _collect_attr_regions(scan, class_node)

    # scan methods in source order; nested defs run after their parent
    # with a snapshot of the parent's environments at the def site
    queue: List[
        Tuple[str, ast.FunctionDef, Dict[str, Tuple[str, ...]],
              Dict[str, Tuple[str, ...]]]
    ] = [
        (item.name, item, {}, {})
        for item in class_node.body
        if isinstance(item, ast.FunctionDef)
    ]
    while queue:
        qualname, node, region_env, tid_env = queue.pop(0)
        scanner = _FunctionScanner(scan, qualname, node, region_env, tid_env)
        scanner.run()
        queue = scanner.nested + queue
    return scan
