"""Cross-validation: predicted sharing vs the dynamic audit.

The static pass and the dynamic auditor describe the same thing at
different granularities -- the static side talks about *spawn units*
(``at_create`` sites), the dynamic side about individual threads.  The
bridge is thread names: each observed thread maps to the unit whose
name pattern matches it best, and dynamic evidence aggregates to
undirected unit pairs.

Three diagnostics come out of the diff (all warnings, all flowing
through the ordinary baseline machinery):

- ``SA001`` -- a predicted pair (definite or conditional tier) with no
  ``at_share`` statically covering it.  Purely static: it fires on code
  paths no run has ever exercised, which is the whole point.
- ``SA002`` -- a statically-resolved ``at_share`` whose unit pair has
  no predicted edge at *any* tier: the annotated sharing is unreachable
  from the source as written.  Also purely static.
- ``SA003`` -- a genuine static/dynamic disagreement: a *definite*
  static edge the run observed zero overlap for (conditional edges are
  expected to be dynamically absent sometimes -- that is what the tier
  means), or a dynamically-expected pair the static pass has no edge
  for at all.

Precision/recall are reported at the unit-pair level over the
definite+conditional tiers: recall = dynamically-expected pairs the
static pass predicted; precision = predicted pairs corroborated by any
observed overlap.  Both are 1.0 when their denominator is empty.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.annotations import EdgeObservation
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.staticshare.model import (
    TIER_CONDITIONAL,
    TIER_DEFINITE,
    StaticPrediction,
)

__all__ = ["CrossValidation", "cross_validate", "render_prediction"]

#: undirected unit pair, canonically ordered
Pair = Tuple[str, str]


def _anchor_path(path: str) -> str:
    """Repo-relative anchor path, matching the engine's convention."""
    for marker in ("repro/", "tests/"):
        index = path.rfind(marker)
        if index >= 0:
            return path[index:]
    return os.path.basename(path)


def _canon(a: str, b: str) -> Pair:
    return (a, b) if a <= b else (b, a)


@dataclass
class CrossValidation:
    """The static/dynamic diff for one workload."""

    prediction: StaticPrediction
    #: undirected predicted pairs at definite+conditional tiers
    static_pairs: Tuple[Pair, ...]
    #: undirected unit pairs the dynamic audit expects an edge for
    dynamic_pairs: Tuple[Pair, ...]
    #: static pairs with *any* observed dynamic overlap
    corroborated: Tuple[Pair, ...]
    #: observed thread names no unit's name pattern matches
    unmapped_threads: Tuple[str, ...]
    has_dynamic: bool
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: the SA001 finding per unannotated predicted pair -- structured
    #: access for the repair bridge, which claims these fingerprints
    sa001: Dict[Pair, Diagnostic] = field(default_factory=dict)

    @property
    def matched(self) -> Tuple[Pair, ...]:
        dynamic = set(self.dynamic_pairs)
        return tuple(p for p in self.static_pairs if p in dynamic)

    @property
    def missed(self) -> Tuple[Pair, ...]:
        """Dynamic-expected pairs the static pass did not predict --
        the false negatives the acceptance criteria pin at zero."""
        static = set(self.static_pairs)
        return tuple(p for p in self.dynamic_pairs if p not in static)

    @property
    def recall(self) -> Optional[float]:
        if not self.has_dynamic:
            return None
        if not self.dynamic_pairs:
            return 1.0
        return len(self.matched) / len(self.dynamic_pairs)

    @property
    def precision(self) -> Optional[float]:
        if not self.has_dynamic:
            return None
        if not self.static_pairs:
            return 1.0
        return len(self.corroborated) / len(self.static_pairs)


def cross_validate(
    prediction: StaticPrediction,
    observations: Optional[Dict[Tuple[int, int], EdgeObservation]],
    source: str,
) -> CrossValidation:
    """Diff a prediction against one dynamic audit's observation table.

    ``observations=None`` runs the purely-static arm: SA001/SA002 still
    fire, SA003 and precision/recall need a run and are skipped.
    """
    anchor_file = _anchor_path(prediction.path)

    def unit_anchor(unit_id: str) -> str:
        return f"{anchor_file}:{prediction.units[unit_id].lineno}"

    # undirected static pairs at the diagnostic-driving tiers, with the
    # strongest tier seen per pair
    static_tier: Dict[Pair, str] = {}
    for edge in prediction.edges_at(TIER_DEFINITE, TIER_CONDITIONAL):
        pair = _canon(edge.src, edge.dst)
        if static_tier.get(pair) != TIER_DEFINITE:
            static_tier[pair] = edge.tier
    static_pairs = tuple(sorted(static_tier))

    # dynamic evidence, aggregated to unit pairs through name matching
    dynamic_expected: Set[Pair] = set()
    dynamic_overlap: Set[Pair] = set()
    dynamic_names: Dict[Pair, Tuple[str, str]] = {}
    unmapped: Set[str] = set()
    if observations is not None:
        for key in sorted(observations):
            obs = observations[key]
            src_unit = prediction.unit_for_thread(obs.src_name)
            dst_unit = prediction.unit_for_thread(obs.dst_name)
            for name, unit in (
                (obs.src_name, src_unit), (obs.dst_name, dst_unit)
            ):
                if unit is None:
                    unmapped.add(name)
            if src_unit is None or dst_unit is None:
                continue
            pair = _canon(src_unit, dst_unit)
            if obs.expected:
                dynamic_expected.add(pair)
                dynamic_names.setdefault(
                    pair, (obs.src_name, obs.dst_name)
                )
            if obs.overlap > 0:
                dynamic_overlap.add(pair)

    diagnostics: List[Diagnostic] = []
    sa001: Dict[Pair, Diagnostic] = {}

    # SA001: predicted but statically unannotated
    for pair in static_pairs:
        if not prediction.annotated(pair[0], pair[1]):
            edge = prediction.edges[
                (pair[0], pair[1]) if (pair[0], pair[1]) in prediction.edges
                else (pair[1], pair[0])
            ]
            regions = ", ".join(edge.regions)
            diag = Diagnostic(
                code="SA001",
                message=(
                    f"units {pair[0]} <-> {pair[1]} statically share "
                    f"{regions} [{static_tier[pair]}] but no at_share "
                    f"covers the pair"
                ),
                anchor=unit_anchor(pair[0]),
                source=source,
            )
            sa001[pair] = diag
            diagnostics.append(diag)

    # SA002: annotated but statically disjoint
    reported_sa002: Set[Pair] = set()
    for src, dst in sorted(prediction.annotated_pairs):
        pair = _canon(src, dst)
        if pair in reported_sa002:
            continue
        has_edge = (
            (src, dst) in prediction.edges or (dst, src) in prediction.edges
        )
        if has_edge:
            continue
        reported_sa002.add(pair)
        ref = prediction.annotated_pairs[(src, dst)]
        diagnostics.append(
            Diagnostic(
                code="SA002",
                message=(
                    f"at_share({src} -> {dst}) but the units' static "
                    f"footprints are disjoint"
                ),
                anchor=f"{anchor_file}:{ref.lineno}",
                source=source,
            )
        )

    # SA003: static/dynamic disagreement (needs a run)
    if observations is not None:
        for pair in static_pairs:
            if static_tier[pair] != TIER_DEFINITE:
                continue
            if pair in dynamic_overlap:
                continue
            # only a disagreement when both units actually ran threads
            mapped_units = {
                prediction.unit_for_thread(obs.src_name)
                for obs in observations.values()
            } | {
                prediction.unit_for_thread(obs.dst_name)
                for obs in observations.values()
            }
            if pair[0] not in mapped_units or pair[1] not in mapped_units:
                continue
            diagnostics.append(
                Diagnostic(
                    code="SA003",
                    message=(
                        f"static edge {pair[0]} <-> {pair[1]} is definite "
                        f"but the dynamic audit observed zero overlap"
                    ),
                    anchor=unit_anchor(pair[0]),
                    source=source,
                )
            )
        static_any = {
            _canon(src, dst) for (src, dst) in prediction.edges
        }
        for pair in sorted(dynamic_expected):
            if pair in static_any:
                continue
            names = dynamic_names[pair]
            diagnostics.append(
                Diagnostic(
                    code="SA003",
                    message=(
                        f"dynamic audit expects {names[0]} <-> {names[1]} "
                        f"(units {pair[0]} <-> {pair[1]}) but the static "
                        f"pass predicts no edge"
                    ),
                    anchor=unit_anchor(pair[0]),
                    source=source,
                )
            )

    return CrossValidation(
        prediction=prediction,
        static_pairs=static_pairs,
        dynamic_pairs=tuple(sorted(dynamic_expected)),
        corroborated=tuple(
            sorted(p for p in static_pairs if p in dynamic_overlap)
        ),
        unmapped_threads=tuple(sorted(unmapped)),
        has_dynamic=observations is not None,
        diagnostics=diagnostics,
        sa001=sa001,
    )


def render_prediction(
    prediction: StaticPrediction,
    validation: Optional[CrossValidation] = None,
) -> str:
    """The byte-stable report block for one workload's prediction."""
    lines: List[str] = [f"static sharing: {prediction.workload}"]
    lines.append(f"  spawn units ({len(prediction.units)}):")
    for unit_id in sorted(prediction.units):
        lines.append(f"    {prediction.units[unit_id].render()}")
    lines.append(f"  regions ({len(prediction.regions)}):")
    for key in sorted(prediction.regions):
        lines.append(f"    {prediction.regions[key].render()}")
    undirected: Set[Pair] = {
        _canon(src, dst) for (src, dst) in prediction.edges
    }
    lines.append(f"  predicted edges ({len(undirected)}):")
    for pair in sorted(undirected):
        key = (
            (pair[0], pair[1])
            if (pair[0], pair[1]) in prediction.edges
            else (pair[1], pair[0])
        )
        lines.append(f"    {prediction.edges[key].render()}")
    annotated_pairs = {
        _canon(src, dst) for (src, dst) in prediction.annotated_pairs
    }
    lines.append(
        f"  annotated pairs: {len(annotated_pairs)} "
        f"(covering {sum(1 for p in undirected if p in annotated_pairs)} "
        f"predicted)"
    )
    if validation is not None and validation.has_dynamic:
        recall = validation.recall
        precision = validation.precision
        assert recall is not None and precision is not None
        lines.append(
            "  cross-validation: "
            f"recall {recall:.2f} ({len(validation.matched)}/"
            f"{len(validation.dynamic_pairs)} dynamic-expected), "
            f"precision {precision:.2f} ({len(validation.corroborated)}/"
            f"{len(validation.static_pairs)} corroborated)"
        )
        for pair in validation.missed:
            lines.append(f"    missed dynamic pair: {pair[0]} <-> {pair[1]}")
        if validation.unmapped_threads:
            lines.append(
                "    unmapped threads: "
                + ", ".join(validation.unmapped_threads)
            )
    return "\n".join(lines)
