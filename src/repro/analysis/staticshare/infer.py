"""From raw extraction to a predicted sharing graph.

The inference takes one :class:`~repro.analysis.staticshare.extract.ClassScan`
plus the effect summaries and produces a
:class:`~repro.analysis.staticshare.model.StaticPrediction`:

1. **units** -- each ``at_create`` site becomes a
   :class:`~repro.analysis.staticshare.model.SpawnUnit`; a site is
   ``multi`` when it sits in a loop/comprehension or its enclosing
   function executes more than once (fixpoint over the call graph plus
   spawn fan-out, which is what makes recursive spawners like merge
   sort's halves and tsp's child nodes come out right);
2. **instantiation** -- each unit's body summary is specialised with
   the site's region bindings, keeping track of whether an instance is
   the body's *own* (allocated on its execution path) or *inherited*
   (handed across the spawn);
3. **instance classification** -- an allocation site stands for one
   region (``self.X``, or a local of a run-once function), a region per
   loop iteration, or a region per body execution; the class decides
   which touch combinations can alias:

   - *shared*: every toucher pair shares; definite when both sides
     touch unconditionally;
   - *per-iteration* (loop local of a run-once function): a unit
     spawned in the allocating loop is privatised -- one fresh instance
     per thread -- so only *distinct* units can pair, conditionally;
   - *per-execution* (local of a multiply-executed function): own
     instances never alias each other; sharing flows own->inherited
     (parent hands its instance to a child) and
     inherited<->inherited (siblings), conditionally;
   - *unknown text*: touches the extractor could not resolve pair by
     identical source text only, at the heuristic tier;

4. **annotation resolution** -- ``at_share`` arguments expand through
   tid markers (spawn sites, ``at_self``, tid-carrying attributes) to
   unit pairs, giving the static notion of "already annotated".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.staticshare.effects import Effect, summarize
from repro.analysis.staticshare.extract import ClassScan, RawSpawn
from repro.analysis.staticshare.model import (
    TIER_CONDITIONAL,
    TIER_DEFINITE,
    TIER_HEURISTIC,
    PredictedEdge,
    ShareSiteRef,
    SpawnUnit,
    StaticPrediction,
)

__all__ = ["infer_prediction"]

_NONE, _ONCE, _MANY = 0, 1, 2
_TIER_RANK = {TIER_DEFINITE: 0, TIER_CONDITIONAL: 1, TIER_HEURISTIC: 2}


def _saturating_add(a: int, b: int) -> int:
    return min(_MANY, a + b)


def _function_multiplicity(scan: ClassScan) -> Dict[str, int]:
    """How often each function executes: never, once, or many times.

    Entry points (top-level methods nobody calls or spawns) run once --
    that covers ``build``/``__init__``, which the driver invokes
    directly.  Calls propagate the caller's multiplicity; spawn sites
    add thread counts to their body function (a loop site, or a site in
    a many-times function, contributes "many").
    """
    spawn_bodies = {s.body for s in scan.spawns if s.body is not None}
    called = {c.callee for records in scan.calls.values() for c in records}
    mult: Dict[str, int] = {name: _NONE for name in scan.functions}
    for name in scan.functions:
        if "." in name or name in spawn_bodies or name in called:
            continue
        mult[name] = _ONCE

    for _ in range(len(scan.functions) + 2):
        changed = False
        nxt = dict(mult)
        for name in sorted(scan.calls):
            if mult.get(name, _NONE) == _NONE:
                continue
            for call in scan.calls[name]:
                merged = _saturating_add(
                    nxt.get(call.callee, _NONE), mult[name]
                )
                if merged != nxt.get(call.callee, _NONE):
                    nxt[call.callee] = merged
                    changed = True
        for spawn in scan.spawns:
            if spawn.body is None:
                continue
            site_exec = mult.get(spawn.function, _NONE)
            if site_exec == _NONE:
                continue
            threads = _MANY if (spawn.in_loop or site_exec == _MANY) else _ONCE
            merged = _saturating_add(nxt.get(spawn.body, _NONE), threads)
            if merged != nxt.get(spawn.body, _NONE):
                nxt[spawn.body] = merged
                changed = True
        mult = nxt
        if not changed:
            break
    return mult


def _unit_ids(spawns: List[RawSpawn]) -> Dict[str, str]:
    """site_id -> readable unit id, disambiguated by line when needed."""

    def base(spawn: RawSpawn) -> str:
        if spawn.name_exact is not None:
            return spawn.name_exact
        if spawn.name_prefix:
            return spawn.name_prefix + "*"
        return f"{spawn.function}:{spawn.lineno}"

    counts: Dict[str, int] = {}
    for spawn in spawns:
        counts[base(spawn)] = counts.get(base(spawn), 0) + 1
    out: Dict[str, str] = {}
    for spawn in spawns:
        name = base(spawn)
        if counts[name] > 1:
            name = f"{name}@{spawn.lineno}"
        out[spawn.site_id] = name
    return out


def _expand_markers(
    markers: Tuple[str, ...],
    scan: ClassScan,
    unit_by_site: Mapping[str, str],
    units_by_body: Mapping[str, Tuple[str, ...]],
    stack: Tuple[str, ...] = (),
) -> Tuple[str, ...]:
    """Resolve tid markers to the unit ids they can denote."""
    found: Set[str] = set()
    for marker in markers:
        if marker.startswith("unit:"):
            unit = unit_by_site.get(marker[len("unit:"):])
            if unit is not None:
                found.add(unit)
        elif marker.startswith("selfunits:"):
            found.update(units_by_body.get(marker[len("selfunits:"):], ()))
        elif marker.startswith("attrtids:"):
            attr = marker[len("attrtids:"):]
            if attr in stack:
                continue
            found.update(
                _expand_markers(
                    scan.attr_tids.get(attr, ()),
                    scan,
                    unit_by_site,
                    units_by_body,
                    stack + (attr,),
                )
            )
    return tuple(sorted(found))


class _PairStore:
    """Accumulates evidence per unordered unit pair."""

    def __init__(self) -> None:
        self.tier: Dict[Tuple[str, str], str] = {}
        self.keys: Dict[Tuple[str, str], Set[str]] = {}

    def add(self, a: str, b: str, tier: str, key: str) -> None:
        pair = (a, b) if a <= b else (b, a)
        prior = self.tier.get(pair)
        if prior is None or _TIER_RANK[tier] < _TIER_RANK[prior]:
            self.tier[pair] = tier
        self.keys.setdefault(pair, set()).add(key)


def infer_prediction(
    scan: ClassScan, workload: str
) -> StaticPrediction:
    """Run the full inference over one scanned class."""
    summaries = summarize(scan)
    mult = _function_multiplicity(scan)
    unit_by_site = _unit_ids(scan.spawns)

    units: Dict[str, SpawnUnit] = {}
    units_by_body: Dict[str, Tuple[str, ...]] = {}
    for spawn in scan.spawns:
        unit_id = unit_by_site[spawn.site_id]
        multi = spawn.in_loop or mult.get(spawn.function, _NONE) == _MANY
        units[unit_id] = SpawnUnit(
            unit_id=unit_id,
            name_exact=spawn.name_exact,
            name_prefix=spawn.name_prefix,
            body=spawn.body if spawn.body is not None else "?",
            bindings=dict(spawn.bindings),
            function=spawn.function,
            lineno=spawn.lineno,
            multi=multi,
        )
        if spawn.body is not None:
            units_by_body[spawn.body] = tuple(
                sorted(set(units_by_body.get(spawn.body, ())) | {unit_id})
            )

    # -- instantiate effects per unit -------------------------------------
    # (key, inherited) -> (write, conditional); conditional joins with AND
    touched: Dict[str, Dict[Tuple[str, bool], Tuple[bool, bool]]] = {}
    for unit_id in sorted(units):
        unit = units[unit_id]
        store: Dict[Tuple[str, bool], Tuple[bool, bool]] = {}
        own_prefix = f"param:{unit.body}:"
        for root, write, cond in summaries.get(unit.body, ()):
            targets: List[Tuple[str, bool]] = []
            if root.startswith(own_prefix):
                param = root[len(own_prefix):]
                for actual in unit.bindings.get(param, ()):
                    if not actual.startswith("param:"):
                        targets.append((actual, True))
            elif root.startswith("param:"):
                continue
            else:
                targets.append((root, False))
            for key, inherited in targets:
                prior = store.get((key, inherited))
                if prior is None:
                    store[(key, inherited)] = (write, cond)
                else:
                    store[(key, inherited)] = (
                        prior[0] or write, prior[1] and cond
                    )
        touched[unit_id] = store

    # -- per-instance-key toucher tables ----------------------------------
    # key -> unit -> (conditional, touches-own-instance,
    #                 touches-inherited-instance); a body can do both
    # (tsp: its own matrix *and* the parent's, handed across the spawn)
    by_key: Dict[str, Dict[str, Tuple[bool, bool, bool]]] = {}
    for unit_id in sorted(touched):
        for (key, inherited), (_write, cond) in sorted(
            touched[unit_id].items()
        ):
            per_unit = by_key.setdefault(key, {})
            prior = per_unit.get(unit_id, (True, False, False))
            per_unit[unit_id] = (
                prior[0] and cond,
                prior[1] or not inherited,
                prior[2] or inherited,
            )

    def classify(key: str) -> str:
        if key.startswith("unknown:"):
            return "text"
        if key.startswith("attr:"):
            return "shared"
        region = scan.region_defs.get(key)
        if region is None:
            return "shared"
        if mult.get(region.function, _NONE) == _MANY:
            return "perexec"
        if region.in_loop:
            return "loop"
        return "shared"

    def own_units(key: str) -> List[str]:
        return [u for u in sorted(by_key.get(key, {})) if by_key[key][u][1]]

    def inherited_units(key: str) -> List[str]:
        return [u for u in sorted(by_key.get(key, {})) if by_key[key][u][2]]

    pairs = _PairStore()
    for key in sorted(by_key):
        cls = classify(key)
        toucher_ids = sorted(by_key[key])
        conds = {u: by_key[key][u][0] for u in toucher_ids}
        if cls == "shared":
            for i, a in enumerate(toucher_ids):
                for b in toucher_ids[i:]:
                    if a == b and not units[a].multi:
                        continue
                    tier = (
                        TIER_DEFINITE
                        if not (conds[a] or conds[b])
                        else TIER_CONDITIONAL
                    )
                    pairs.add(a, b, tier, key)
        elif cls == "loop":
            # one instance per iteration: threads of a single unit
            # spawned in the loop each get their own -- only distinct
            # units can see the same iteration's instance
            for i, a in enumerate(toucher_ids):
                for b in toucher_ids[i + 1:]:
                    pairs.add(a, b, TIER_CONDITIONAL, key)
        elif cls == "perexec":
            # one instance per body execution: sharing flows from the
            # executing thread to threads it hands the instance to
            owners = own_units(key)
            heirs = inherited_units(key)
            for a in owners:
                for b in heirs:
                    if a != b or units[a].multi:
                        pairs.add(a, b, TIER_CONDITIONAL, key)
            for i, a in enumerate(heirs):
                for b in heirs[i:]:
                    if a == b and not units[a].multi:
                        continue
                    pairs.add(a, b, TIER_CONDITIONAL, key)
        else:  # text
            for i, a in enumerate(toucher_ids):
                for b in toucher_ids[i:]:
                    if a == b and not units[a].multi:
                        continue
                    pairs.add(a, b, TIER_HEURISTIC, key)

    # -- footprints and static q ------------------------------------------
    footprints: Dict[str, Optional[int]] = {}
    for unit_id in sorted(units):
        keys = {key for (key, _inh) in touched.get(unit_id, {})}
        total: Optional[int] = 0
        for key in sorted(keys):
            if key.startswith("unknown:"):
                total = None
                break
            region = scan.region_defs.get(key)
            if region is None or region.lines is None:
                total = None
                break
            assert total is not None
            total += region.lines
        footprints[unit_id] = total if keys else None

    def shared_lines(pair: Tuple[str, str]) -> Optional[int]:
        total = 0
        for key in sorted(pairs.keys[pair]):
            region = scan.region_defs.get(key)
            if region is None or region.lines is None:
                return None
            total += region.lines
        return total

    def display(key: str) -> str:
        if key.startswith("unknown:"):
            return key[len("unknown:"):]
        region = scan.region_defs.get(key)
        if region is not None and region.label:
            return region.label
        return key

    edges: Dict[Tuple[str, str], PredictedEdge] = {}
    for pair in sorted(pairs.tier):
        tier = pairs.tier[pair]
        regions = tuple(sorted({display(key) for key in pairs.keys[pair]}))
        lines = shared_lines(pair)
        directions = [pair] if pair[0] == pair[1] else [pair, (pair[1], pair[0])]
        for src, dst in directions:
            fp = footprints.get(src)
            q: Optional[float] = None
            if lines is not None and fp is not None and fp > 0:
                q = round(min(1.0, lines / fp), 2)
            edges[(src, dst)] = PredictedEdge(
                src=src,
                dst=dst,
                src_display=units[src].display,
                dst_display=units[dst].display,
                tier=tier,
                regions=regions,
                q_static=q,
            )

    # -- annotated pairs ---------------------------------------------------
    annotated: Dict[Tuple[str, str], ShareSiteRef] = {}
    for share in scan.shares:
        src_units = _expand_markers(
            share.src_markers, scan, unit_by_site, units_by_body
        )
        dst_units = _expand_markers(
            share.dst_markers, scan, unit_by_site, units_by_body
        )
        ref = ShareSiteRef(
            function=share.function,
            lineno=share.lineno,
            src_units=src_units,
            dst_units=dst_units,
            q_literal=share.q_literal,
        )
        for src in src_units:
            for dst in dst_units:
                annotated.setdefault((src, dst), ref)

    touchers = {
        key: tuple(sorted(by_key[key])) for key in sorted(by_key)
    }
    return StaticPrediction(
        workload=workload,
        path=scan.path,
        class_name=scan.class_name,
        units=units,
        regions=dict(sorted(scan.region_defs.items())),
        edges=edges,
        annotated_pairs=annotated,
        touchers=touchers,
        footprints=footprints,
    )
