"""Static SA001 findings -> repair-engine candidates.

The repair engine's CEGAR loop verifies a candidate fix by re-running
the workload and checking the re-audit: an edge whose sharing the run
never exercises would immediately be judged spurious (AN002 -- zero
observed overlap) and demoted.  That is correct behaviour for
dynamically-synthesized fixes and exactly wrong for static ones, whose
whole value is covering code paths no run exercises.

So the bridge does *not* feed static candidates through verification.
It turns each SA001 pair into a :class:`StaticCandidate` -- the
``at_share`` call to add, the statically-estimated q, the evidence tier
and regions, and the SA001 fingerprint it stems from -- and the repair
report renders them as a separate ``[static]`` category: reviewed by a
human, not auto-applied.  A candidate whose pair *was* dynamically
corroborated is marked ``exercised`` (the dynamic synthesis will
usually propose the same edge with a measured q; the static line then
serves as cross-confirmation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.staticshare.crossval import CrossValidation

__all__ = ["DEFAULT_STATIC_Q", "StaticCandidate", "static_candidates"]

#: q proposed when no region size is statically known; deliberately
#: mid-scale -- strong enough to matter, weak enough to be safe, and a
#: later dynamic audit will re-weight it (AN003) once the path runs
DEFAULT_STATIC_Q = 0.5


@dataclass(frozen=True)
class StaticCandidate:
    """One proposed ``at_share`` sourced from the static inference."""

    src_display: str
    dst_display: str
    q: float
    tier: str
    regions: Tuple[str, ...]
    #: fingerprint of the SA001 finding this candidate resolves
    fingerprint: str
    #: the dynamic audit observed overlap for the pair (the candidate
    #: then corroborates a dynamic fix rather than extending coverage)
    exercised: bool

    def render(self) -> str:
        via = ", ".join(self.regions)
        status = "exercised" if self.exercised else "unexercised path"
        return (
            f"at_share({self.src_display}, {self.dst_display}, {self.q:.2f})"
            f"  [{self.tier}] via {via}  ({status}; from SA001 "
            f"{self.fingerprint})"
        )


def static_candidates(validation: CrossValidation) -> List[StaticCandidate]:
    """One candidate per SA001 pair, deterministic order."""
    prediction = validation.prediction
    corroborated = set(validation.corroborated)
    out: List[StaticCandidate] = []
    for pair in sorted(validation.sa001):
        key = (
            (pair[0], pair[1])
            if (pair[0], pair[1]) in prediction.edges
            else (pair[1], pair[0])
        )
        edge = prediction.edges[key]
        q = edge.q_static if edge.q_static else DEFAULT_STATIC_Q
        out.append(
            StaticCandidate(
                src_display=prediction.units[edge.src].display,
                dst_display=prediction.units[edge.dst].display,
                q=q,
                tier=edge.tier,
                regions=edge.regions,
                fingerprint=validation.sa001[pair].fingerprint(),
                exercised=pair in corroborated,
            )
        )
    return out
