"""The annotation linter: does ``at_share`` match what threads share?

The paper's trust boundary is the annotation stream: edges in the
dependency graph G are *hints*, so a wrong or missing ``at_share`` costs
locality silently (section 2.3).  PR 1's fault campaign proved bad hints
cannot break correctness; this pass finds them.

The auditor observes one run and derives the *expected* sharing graph
from ground truth -- which virtual lines each thread actually touched,
attributed to address-space regions -- then diffs it against the edges
the workload annotated:

- ``AN001 missing-edge``: a pair demonstrably shares state, no annotated
  edge (or path of edges whose coefficient product comes close) covers it;
- ``AN002 spurious-edge``: an annotated pair shares (almost) nothing;
- ``AN003 mis-weighted-edge``: annotated q differs from the observed
  footprint overlap by more than 0.25 (the issue's threshold).

Expected-edge derivation (documented in docs/ANALYSIS.md):

1. per thread t, collect L(t) = virtual lines touched, with first/last
   touch sequence numbers;
2. drop *ubiquitous* lines (touched by more than ``max(8, threads/2)``
   threads, e.g. a global distance matrix) to get the discriminating set
   D(t) -- otherwise every pair of threads looks related;
3. a -> b is expected when D(a) and D(b) overlap in at least 2 lines and
   at least 30% of D(a), *and* b touched a shared line after a first did
   (temporal evidence that a's cached state could still be warm);
4. the expected weight is the paper's definition over full footprints:
   q = |L(a) & L(b)| / |L(a)|.

Edges written by :class:`repro.inference.SharingInference` are tracked
separately (they corroborate, they are not the workload's annotations),
and edges fabricated by a fault injector are *not* distinguishable from
workload edges by design -- a forged hint should be flagged exactly like
a hand-written bad one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

#: annotated-vs-observed weight divergence that triggers AN003
WEIGHT_TOLERANCE = 0.25
#: observed coefficient below which an annotated edge is spurious
SPURIOUS_Q = 0.05
#: minimum discriminating overlap (lines, and fraction of D(a)) for AN001
MIN_SHARED_LINES = 2
MIN_SHARED_FRACTION = 0.30


class AnnotationAuditor:
    """Observer recording annotations and ground-truth footprints.

    Wraps ``runtime.graph.share`` rather than ``runtime.at_share`` so it
    sees the edges that actually entered G -- including any a fault
    injector dropped, corrupted, or forged on the way through.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self._seq = 0
        #: tid -> {line -> (first_seq, last_seq)}
        self._touches: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: (src, dst) -> last annotated q, in annotation order
        self.annotated: Dict[Tuple[int, int], float] = {}
        #: (src, dst) -> last q written by the online inference
        self.inferred: Dict[Tuple[int, int], float] = {}
        self._in_inference = False
        inner_share = runtime.graph.share

        def recording_share(src: int, dst: int, q: float) -> None:
            inner_share(src, dst, q)
            if self._in_inference:
                self.inferred[(src, dst)] = q
            else:
                self.annotated[(src, dst)] = q

        runtime.graph.share = recording_share
        runtime.add_observer(self)

    def track_inference(self, inference) -> None:
        """Tag graph writes made from inside the inference observer, so
        inferred edges corroborate instead of masquerading as annotations."""
        inner_on_block = inference.on_block

        def flagged_on_block(cpu, thread, misses, finished):
            self._in_inference = True
            try:
                inner_on_block(cpu, thread, misses, finished)
            finally:
                self._in_inference = False

        inference.on_block = flagged_on_block

    # -- observer hooks ----------------------------------------------------

    def on_state_declared(self, tid, vlines) -> None:
        pass

    def on_dispatch(self, cpu, thread) -> None:
        pass

    def on_block(self, cpu, thread, misses, finished) -> None:
        pass

    def on_touch(self, cpu, thread, result) -> None:
        lines = self.runtime.last_touch_lines
        if lines is None:
            return
        self._seq += 1
        seq = self._seq
        per_thread = self._touches.setdefault(thread.tid, {})
        for line in lines.tolist():
            span = per_thread.get(line)
            per_thread[line] = (seq, seq) if span is None else (span[0], seq)

    # -- the diff ----------------------------------------------------------

    def _thread_name(self, tid: int) -> str:
        thread = self.runtime.threads.get(tid)
        return thread.name if thread is not None else f"tid-{tid}"

    def _annotated_path_product(
        self, src: int, dst: int, max_hops: int = 4
    ) -> float:
        """Best coefficient product over annotated paths src -> dst.

        A missing direct edge is fine when a chain of annotations already
        carries the locality signal (merge: leaf -> parent -> grandparent).
        """
        best = 0.0
        adjacency: Dict[int, List[Tuple[int, float]]] = {}
        for (a, b), q in self.annotated.items():
            if q > 0.0:
                adjacency.setdefault(a, []).append((b, q))
        stack = [(src, 1.0, 0, frozenset([src]))]
        while stack:
            node, product, hops, seen = stack.pop()
            if node == dst:
                best = max(best, product)
                continue
            if hops >= max_hops:
                continue
            for nxt, q in adjacency.get(node, ()):
                if nxt not in seen:
                    stack.append((nxt, product * q, hops + 1, seen | {nxt}))
        return best

    def diagnose(self, source: str, anchor: Optional[str] = None) -> List[Diagnostic]:
        """Diff expected sharing against annotated edges."""
        touch_count: Dict[int, int] = {}
        for per_thread in self._touches.values():
            for line in per_thread:
                touch_count[line] = touch_count.get(line, 0) + 1
        num_threads = len(self._touches)
        ubiquitous = max(8, num_threads // 2)
        full: Dict[int, Set[int]] = {}
        disc: Dict[int, Set[int]] = {}
        for tid, per_thread in self._touches.items():
            full[tid] = set(per_thread)
            disc[tid] = {
                line for line in per_thread if touch_count[line] <= ubiquitous
            }

        # candidate pairs: any discriminating overlap, plus every
        # annotated pair (to judge spurious/mis-weighted edges)
        owners: Dict[int, List[int]] = {}
        for tid in sorted(disc):
            for line in disc[tid]:
                owners.setdefault(line, []).append(tid)
        pairs: Set[Tuple[int, int]] = set()
        for tids in owners.values():
            for a in tids:
                for b in tids:
                    if a != b:
                        pairs.add((a, b))
        pairs.update(self.annotated)

        found: List[Diagnostic] = []
        for src, dst in sorted(pairs):
            if src not in full or dst not in full or not full[src]:
                # an annotated thread that never touched memory: nothing
                # observable to validate the edge against
                continue
            overlap = len(full[src] & full[dst])
            q_expected = overlap / len(full[src])
            disc_overlap = disc[src] & disc[dst]
            evidence = any(
                self._touches[dst][line][1] > self._touches[src][line][0]
                for line in disc_overlap
            )
            expected = (
                len(disc_overlap) >= MIN_SHARED_LINES
                and disc[src]
                and len(disc_overlap) / len(disc[src]) >= MIN_SHARED_FRACTION
                and evidence
            )
            q_annotated = self.annotated.get((src, dst))
            names = f"{self._thread_name(src)} -> {self._thread_name(dst)}"
            if q_annotated is None and expected:
                via = self._annotated_path_product(src, dst)
                if via >= max(0.0, q_expected - WEIGHT_TOLERANCE):
                    continue  # an annotated chain already carries it
                hint = (
                    "; online inference concurs"
                    if (src, dst) in self.inferred
                    else ""
                )
                found.append(
                    Diagnostic(
                        code="AN001",
                        message=(
                            f"{names} share {overlap} line(s) "
                            f"(q~{q_expected:.2f}) but no at_share edge or "
                            f"annotated path covers the pair{hint}"
                        ),
                        anchor=anchor,
                        source=source,
                    )
                )
            elif q_annotated is not None and q_expected < SPURIOUS_Q:
                hint = (
                    "; online inference saw sharing"
                    if (src, dst) in self.inferred
                    else ""
                )
                found.append(
                    Diagnostic(
                        code="AN002",
                        message=(
                            f"at_share({names}, q={q_annotated:.2f}) but the "
                            f"threads share only {overlap} line(s) "
                            f"(q~{q_expected:.2f}) in this run{hint}"
                        ),
                        anchor=anchor,
                        source=source,
                    )
                )
            elif (
                q_annotated is not None
                and abs(q_annotated - q_expected) > WEIGHT_TOLERANCE
            ):
                found.append(
                    Diagnostic(
                        code="AN003",
                        message=(
                            f"at_share({names}, q={q_annotated:.2f}) vs "
                            f"observed overlap q~{q_expected:.2f} "
                            f"(off by {abs(q_annotated - q_expected):.2f})"
                        ),
                        anchor=anchor,
                        source=source,
                    )
                )
        return found
