"""The annotation linter: does ``at_share`` match what threads share?

The paper's trust boundary is the annotation stream: edges in the
dependency graph G are *hints*, so a wrong or missing ``at_share`` costs
locality silently (section 2.3).  PR 1's fault campaign proved bad hints
cannot break correctness; this pass finds them.

The auditor observes one run and derives the *expected* sharing graph
from ground truth -- which virtual lines each thread actually touched,
attributed to address-space regions -- then diffs it against the edges
the workload annotated:

- ``AN001 missing-edge``: a pair demonstrably shares state, no annotated
  edge (or path of edges whose coefficient product comes close) covers it;
- ``AN002 spurious-edge``: an annotated pair shares (almost) nothing;
- ``AN003 mis-weighted-edge``: annotated q differs from the observed
  footprint overlap by more than 0.25 (the issue's threshold).

Expected-edge derivation (documented in docs/ANALYSIS.md):

1. per thread t, collect L(t) = virtual lines touched, with first/last
   touch sequence numbers;
2. drop *ubiquitous* lines (touched by more than ``max(8, threads/2)``
   threads, e.g. a global distance matrix) to get the discriminating set
   D(t) -- otherwise every pair of threads looks related;
3. a -> b is expected when D(a) and D(b) overlap in at least 2 lines and
   at least 30% of D(a), *and* b touched a shared line after a first did
   (temporal evidence that a's cached state could still be warm);
4. the expected weight is the paper's definition over full footprints:
   q = |L(a) & L(b)| / |L(a)|.

Edges written by :class:`repro.inference.SharingInference` are tracked
separately (they corroborate, they are not the workload's annotations),
and edges fabricated by a fault injector are *not* distinguishable from
workload edges by design -- a forged hint should be flagged exactly like
a hand-written bad one.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from types import FrameType
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

#: annotated-vs-observed weight divergence that triggers AN003
WEIGHT_TOLERANCE = 0.25
#: observed coefficient below which an annotated edge is spurious
SPURIOUS_Q = 0.05
#: minimum discriminating overlap (lines, and fraction of D(a)) for AN001
MIN_SHARED_LINES = 2
MIN_SHARED_FRACTION = 0.30

#: module prefixes of the plumbing between a workload's ``at_share`` call
#: and the recording wrapper; frames from these modules are skipped when
#: attributing an annotation to its source call site
_PLUMBING_MODULES = (
    "repro.threads",
    "repro.analysis",
    "repro.inference",
    "repro.faults",
)


def annotation_call_site() -> Optional[Tuple[str, int]]:
    """(file, line) of the workload frame that issued the current
    ``at_share``: the nearest caller outside the annotation plumbing."""
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _PLUMBING_MODULES
        ):
            return frame.f_code.co_filename, frame.f_lineno
        frame = frame.f_back
    return None


@dataclass(frozen=True)
class EdgeObservation:
    """Everything the auditor knows about one ordered thread pair.

    The raw material both :meth:`AnnotationAuditor.diagnose` and the
    repair engine (:mod:`repro.analysis.repair`) work from: the observed
    footprint overlap, whether the evidence rules say an edge is
    *expected*, and what (if anything) the workload annotated.
    """

    src: int
    dst: int
    src_name: str
    dst_name: str
    #: full-footprint overlap in lines, |L(src) & L(dst)|
    overlap: int
    #: the paper's coefficient over full footprints, overlap / |L(src)|
    q_expected: float
    #: discriminating overlap + temporal evidence: an edge should exist
    expected: bool
    #: the workload's annotated q, or None for an unannotated pair
    annotated_q: Optional[float]
    #: q written by the online inference for the pair, or None
    inferred_q: Optional[float]
    #: best coefficient product over annotated paths src -> dst
    path_product: float

    @property
    def covered(self) -> bool:
        """An annotated chain already carries the locality signal."""
        return self.path_product >= max(0.0, self.q_expected - WEIGHT_TOLERANCE)


def best_path_product(
    adjacency: Dict[int, List[Tuple[int, float]]],
    src: int,
    dst: int,
    max_hops: int = 4,
) -> float:
    """Best coefficient product over weighted paths ``src -> dst``.

    A missing direct edge is fine when a chain of annotations already
    carries the locality signal (merge: leaf -> parent -> grandparent).
    Shared by the auditor and the repair engine, which re-evaluates
    coverage over a candidate *repaired* edge set.
    """
    best = 0.0
    stack = [(src, 1.0, 0, frozenset([src]))]
    while stack:
        node, product, hops, seen = stack.pop()
        if node == dst:
            best = max(best, product)
            continue
        if hops >= max_hops:
            continue
        for nxt, q in adjacency.get(node, ()):
            if nxt not in seen:
                stack.append((nxt, product * q, hops + 1, seen | {nxt}))
    return best


class AnnotationAuditor:
    """Observer recording annotations and ground-truth footprints.

    Wraps ``runtime.graph.share`` rather than ``runtime.at_share`` so it
    sees the edges that actually entered G -- including any a fault
    injector dropped, corrupted, or forged on the way through.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self._seq = 0
        #: tid -> {line -> (first_seq, last_seq)}
        self._touches: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: (src, dst) -> last annotated q, in annotation order
        self.annotated: Dict[Tuple[int, int], float] = {}
        #: (src, dst) -> last q written by the online inference
        self.inferred: Dict[Tuple[int, int], float] = {}
        #: (src, dst) -> (file, line) of the workload call that last
        #: annotated the pair (repair localization raw material)
        self.annotation_sites: Dict[Tuple[int, int], Tuple[str, int]] = {}
        self._in_inference = False
        inner_share = runtime.graph.share

        def recording_share(src: int, dst: int, q: float) -> None:
            inner_share(src, dst, q)
            if self._in_inference:
                self.inferred[(src, dst)] = q
                return
            if q == 0.0:
                # the complete-graph view: a zero coefficient removes the
                # edge, so the pair reverts to unannotated
                self.annotated.pop((src, dst), None)
                self.annotation_sites.pop((src, dst), None)
                return
            self.annotated[(src, dst)] = q
            site = annotation_call_site()
            if site is not None:
                self.annotation_sites[(src, dst)] = site

        runtime.graph.share = recording_share
        runtime.add_observer(self)

    @property
    def in_inference(self) -> bool:
        """Whether the currently-executing graph write originates from the
        online inference observer (set by :meth:`track_inference`)."""
        return self._in_inference

    def track_inference(self, inference) -> None:
        """Tag graph writes made from inside the inference observer, so
        inferred edges corroborate instead of masquerading as annotations."""
        inner_on_block = inference.on_block

        def flagged_on_block(cpu, thread, misses, finished):
            self._in_inference = True
            try:
                inner_on_block(cpu, thread, misses, finished)
            finally:
                self._in_inference = False

        inference.on_block = flagged_on_block

    # -- observer hooks ----------------------------------------------------

    def on_state_declared(self, tid, vlines) -> None:
        pass

    def on_dispatch(self, cpu, thread) -> None:
        pass

    def on_block(self, cpu, thread, misses, finished) -> None:
        pass

    def on_touch(self, cpu, thread, result) -> None:
        lines = self.runtime.last_touch_lines
        if lines is None:
            return
        self._seq += 1
        seq = self._seq
        per_thread = self._touches.setdefault(thread.tid, {})
        for line in lines.tolist():
            span = per_thread.get(line)
            per_thread[line] = (seq, seq) if span is None else (span[0], seq)

    # -- the diff ----------------------------------------------------------

    def _thread_name(self, tid: int) -> str:
        thread = self.runtime.threads.get(tid)
        return thread.name if thread is not None else f"tid-{tid}"

    def observations(self) -> Dict[Tuple[int, int], EdgeObservation]:
        """The observed-vs-annotated table :meth:`diagnose` renders from.

        One :class:`EdgeObservation` per candidate ordered pair: every
        pair with any discriminating-footprint overlap, plus every
        annotated pair (so spurious/mis-weighted edges are judged too).
        The repair engine consumes this table directly -- synthesis works
        from observations, not from parsed diagnostic messages.
        """
        touch_count: Dict[int, int] = {}
        for per_thread in self._touches.values():
            for line in per_thread:
                touch_count[line] = touch_count.get(line, 0) + 1
        num_threads = len(self._touches)
        ubiquitous = max(8, num_threads // 2)
        full: Dict[int, Set[int]] = {}
        disc: Dict[int, Set[int]] = {}
        for tid, per_thread in self._touches.items():
            full[tid] = set(per_thread)
            disc[tid] = {
                line for line in per_thread if touch_count[line] <= ubiquitous
            }

        # candidate pairs: any discriminating overlap, plus every
        # annotated pair (to judge spurious/mis-weighted edges)
        owners: Dict[int, List[int]] = {}
        for tid in sorted(disc):
            for line in disc[tid]:
                owners.setdefault(line, []).append(tid)
        pairs: Set[Tuple[int, int]] = set()
        for tids in owners.values():
            for a in tids:
                for b in tids:
                    if a != b:
                        pairs.add((a, b))
        pairs.update(self.annotated)

        adjacency: Dict[int, List[Tuple[int, float]]] = {}
        for (a, b), q in self.annotated.items():
            if q > 0.0:
                adjacency.setdefault(a, []).append((b, q))

        table: Dict[Tuple[int, int], EdgeObservation] = {}
        for src, dst in sorted(pairs):
            if src not in full or dst not in full or not full[src]:
                # an annotated thread that never touched memory: nothing
                # observable to validate the edge against
                continue
            overlap = len(full[src] & full[dst])
            q_expected = overlap / len(full[src])
            disc_overlap = disc[src] & disc[dst]
            evidence = any(
                self._touches[dst][line][1] > self._touches[src][line][0]
                for line in disc_overlap
            )
            expected = bool(
                len(disc_overlap) >= MIN_SHARED_LINES
                and disc[src]
                and len(disc_overlap) / len(disc[src]) >= MIN_SHARED_FRACTION
                and evidence
            )
            annotated_q = self.annotated.get((src, dst))
            path_product = 0.0
            if annotated_q is None and expected:
                path_product = best_path_product(adjacency, src, dst)
            table[(src, dst)] = EdgeObservation(
                src=src,
                dst=dst,
                src_name=self._thread_name(src),
                dst_name=self._thread_name(dst),
                overlap=overlap,
                q_expected=q_expected,
                expected=expected,
                annotated_q=annotated_q,
                inferred_q=self.inferred.get((src, dst)),
                path_product=path_product,
            )
        return table

    @staticmethod
    def an001_canonical(
        table: Dict[Tuple[int, int], EdgeObservation]
    ) -> Set[Tuple[int, int]]:
        """The deduped missing-edge set: one canonical direction per
        undirected overlap.

        The auditor sees the same sharing from both ends, so a symmetric
        overlap would report ``A -> B`` *and* ``B -> A``.  Keep the
        direction with the higher observed q (the smaller footprint's
        view); on a tie, the lexicographically smaller source name.
        """
        firing = {
            key
            for key, obs in table.items()
            if obs.annotated_q is None and obs.expected and not obs.covered
        }
        keep: Set[Tuple[int, int]] = set()
        for src, dst in sorted(firing):
            if (dst, src) not in firing:
                keep.add((src, dst))
                continue
            fwd, rev = table[(src, dst)], table[(dst, src)]
            if fwd.q_expected > rev.q_expected:
                keep.add((src, dst))
            elif fwd.q_expected == rev.q_expected and (
                fwd.src_name < fwd.dst_name
            ):
                keep.add((src, dst))
        return keep

    def diagnose(self, source: str, anchor: Optional[str] = None) -> List[Diagnostic]:
        """Diff expected sharing against annotated edges."""
        return [diag for _key, diag in self.diagnose_pairs(source, anchor)]

    def diagnose_pairs(
        self, source: str, anchor: Optional[str] = None
    ) -> List[Tuple[Tuple[int, int], Diagnostic]]:
        """:meth:`diagnose`, keyed by the (src, dst) pair each finding is
        about -- the correlation the repair engine needs to tie a fix to
        the fingerprints it claims to resolve."""
        table = self.observations()
        an001 = self.an001_canonical(table)
        found: List[Tuple[Tuple[int, int], Diagnostic]] = []
        for key in sorted(table):
            obs = table[key]
            names = f"{obs.src_name} -> {obs.dst_name}"
            if obs.annotated_q is None and obs.expected:
                if key not in an001:
                    continue  # covered by an annotated chain, or the
                    # non-canonical direction of a symmetric overlap
                hint = (
                    "; online inference concurs"
                    if obs.inferred_q is not None
                    else ""
                )
                diag = Diagnostic(
                    code="AN001",
                    message=(
                        f"{names} share {obs.overlap} line(s) "
                        f"(q~{obs.q_expected:.2f}) but no at_share edge or "
                        f"annotated path covers the pair{hint}"
                    ),
                    anchor=anchor,
                    source=source,
                )
                found.append((key, diag))
            elif obs.annotated_q is not None and obs.q_expected < SPURIOUS_Q:
                hint = (
                    "; online inference saw sharing"
                    if obs.inferred_q is not None
                    else ""
                )
                diag = Diagnostic(
                    code="AN002",
                    message=(
                        f"at_share({names}, q={obs.annotated_q:.2f}) but the "
                        f"threads share only {obs.overlap} line(s) "
                        f"(q~{obs.q_expected:.2f}) in this run{hint}"
                    ),
                    anchor=anchor,
                    source=source,
                )
                found.append((key, diag))
            elif (
                obs.annotated_q is not None
                and abs(obs.annotated_q - obs.q_expected) > WEIGHT_TOLERANCE
            ):
                diag = Diagnostic(
                    code="AN003",
                    message=(
                        f"at_share({names}, q={obs.annotated_q:.2f}) vs "
                        f"observed overlap q~{obs.q_expected:.2f} "
                        f"(off by {abs(obs.annotated_q - obs.q_expected):.2f})"
                    ),
                    anchor=anchor,
                    source=source,
                )
                found.append((key, diag))
        return found
