"""Analysis driver: run the passes over workloads, assemble the report.

One :func:`analyze_workload` call runs a workload once at *lint scale*
(small parameters, the tiny test machine, 2 cpus, FCFS with scheduler
memory off, seed 0) with all three dynamic monitors attached, plus the
static lock scan of the workload's module.  Everything downstream of the
fixed seed is deterministic, so the assembled report is byte-identical
across runs -- the property the CI gate and the checked-in baseline
depend on.

The static lock scan and the annotation diff are pure analysis; the
dynamic monitors are ordinary :class:`~repro.threads.runtime.Observer`
instances, so attaching them cannot change scheduling decisions or
results (the same argument PR 1's invariant checker rests on).

A run that deadlocks still yields a report: the lock-order findings
collected up to the deadlock are exactly what the pass exists to
surface ahead of the runtime's own :class:`DeadlockError`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.analysis.annotations import AnnotationAuditor
from repro.analysis.determinism import lint_paths
from repro.analysis.diagnostics import Diagnostic, Report
from repro.analysis.locks import LockOrderMonitor, scan_workload_class
from repro.analysis.races import RaceSanitizer
from repro.analysis.sources import SourceRegistry

PASSES = ("annotations", "locks", "races")

#: cap on events per analyzed run, so a buggy fixture cannot hang CI
MAX_ANALYZE_EVENTS = 2_000_000


def _lint_workloads() -> Dict[str, Callable[[], object]]:
    """Small-scale instances of the shipped workloads, by paper name."""
    from repro.workloads import (
        MergeParams,
        MergeWorkload,
        PhotoParams,
        PhotoWorkload,
        TasksParams,
        TasksWorkload,
        TspParams,
        TspWorkload,
    )

    return {
        "tasks": lambda: TasksWorkload(TasksParams(num_tasks=16, periods=3)),
        "merge": lambda: MergeWorkload(
            MergeParams(num_elements=2000, leaf_cutoff=250)
        ),
        "photo": lambda: PhotoWorkload(
            PhotoParams(width=128, height=24, halo=2, compute_per_row=500)
        ),
        "tsp": lambda: TspWorkload(
            TspParams(num_cities=10, branch_levels=3, max_threads=64)
        ),
    }


def lint_workload_names() -> List[str]:
    """The analyzable workload names, sorted."""
    return sorted(_lint_workloads())


class AuditOverlay(Protocol):
    """A hook that rewrites annotation traffic during an audited run.

    The repair engine's candidate-fix overlay implements this; it is
    installed *after* the monitors attach (so its rewrites are what the
    auditor records) and *before* the workload builds (so it sees every
    ``at_share`` the workload issues).
    """

    def install(
        self, runtime: object, auditor: Optional[AnnotationAuditor]
    ) -> None:
        ...


@dataclass
class AuditRun:
    """One instrumented run plus the live monitors that watched it.

    :func:`analyze_workload` keeps only the findings; the repair engine
    needs the auditor's observation table and the inference estimates
    too, so :func:`audit_workload` hands the whole bundle back.
    """

    name: str
    findings: List[Diagnostic]
    auditor: Optional[AnnotationAuditor]
    inference: Optional[Any]
    workload: Any
    anchor: Optional[str]

    @property
    def source(self) -> str:
        return f"annotations({self.name})"


def analyze_workload(
    name: str,
    workload_factory: Optional[Callable[[], object]] = None,
    passes: Tuple[str, ...] = PASSES,
    seed: int = 0,
    with_inference: bool = True,
    injector=None,
) -> List[Diagnostic]:
    """Run one workload under full instrumentation; return its findings.

    ``workload_factory`` overrides the registry (used by tests to analyze
    fixture workloads); ``injector`` threads a fault injector through so
    forged-edge output can be checked end-to-end.
    """
    return audit_workload(
        name,
        workload_factory=workload_factory,
        passes=passes,
        seed=seed,
        with_inference=with_inference,
        injector=injector,
    ).findings


def audit_workload(
    name: str,
    workload_factory: Optional[Callable[[], object]] = None,
    passes: Tuple[str, ...] = PASSES,
    seed: int = 0,
    with_inference: bool = True,
    injector=None,
    overlay: Optional[AuditOverlay] = None,
    registry: Optional[SourceRegistry] = None,
) -> AuditRun:
    """:func:`analyze_workload`, returning the monitors with the findings.

    ``overlay`` is the repair engine's install point: a candidate fix set
    wraps the sharing graph after the auditor does, so the re-audit judges
    the *repaired* annotations (docs/ANALYSIS.md, Repair).  ``registry``
    shares source parses across passes within one analysis run.
    """
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.sched.fcfs import FCFSScheduler
    from repro.threads.errors import DeadlockError, StepBudgetExceeded
    from repro.threads.runtime import Runtime

    for name_ in passes:
        if name_ not in PASSES:
            raise ValueError(f"unknown analysis pass {name_!r}")
    if workload_factory is None:
        workload_factory = _lint_workloads()[name]
    workload = workload_factory()

    machine = Machine(SMALL.with_cpus(2), seed=seed)
    runtime = Runtime(
        machine,
        FCFSScheduler(model_scheduler_memory=False),
        injector=injector,
    )
    auditor = (
        AnnotationAuditor(runtime) if "annotations" in passes else None
    )
    locks = LockOrderMonitor(runtime) if "locks" in passes else None
    races = RaceSanitizer(runtime) if "races" in passes else None
    inference = None
    if auditor is not None and with_inference:
        from repro.inference.infer import SharingInference

        inference = SharingInference(runtime, seed=seed)
        auditor.track_inference(inference)
    if overlay is not None:
        overlay.install(runtime, auditor)

    workload.build(runtime)
    run_findings: List[Diagnostic] = []
    try:
        runtime.run(max_events=MAX_ANALYZE_EVENTS)
    except DeadlockError as exc:
        run_findings.append(
            Diagnostic(
                code="LK001",
                message=f"run deadlocked under analysis: {exc}",
                source=f"locks({name})",
            )
        )
    except StepBudgetExceeded:
        run_findings.append(
            Diagnostic(
                code="LK002",
                message=(
                    f"run exceeded {MAX_ANALYZE_EVENTS} events under "
                    "analysis; findings cover the executed prefix"
                ),
                source=f"locks({name})",
            )
        )

    found: List[Diagnostic] = []
    anchor = _workload_anchor(type(workload))
    if auditor is not None:
        found.extend(auditor.diagnose(f"annotations({name})", anchor=anchor))
    if locks is not None:
        static_graph, _rel = scan_workload_class(type(workload), registry=registry)
        found.extend(static_graph.cycle_diagnostics(f"locks({name}):static"))
        found.extend(locks.diagnose(f"locks({name})"))
        found.extend(run_findings)
    if races is not None:
        found.extend(races.diagnose(f"races({name})"))
    found.sort(key=lambda d: d.sort_key)
    return AuditRun(
        name=name,
        findings=found,
        auditor=auditor,
        inference=inference,
        workload=workload,
        anchor=anchor,
    )


def _workload_anchor(workload_cls) -> Optional[str]:
    try:
        source_file = inspect.getsourcefile(workload_cls)
        _lines, lineno = inspect.getsourcelines(workload_cls)
    except (OSError, TypeError):
        return None
    idx = source_file.rfind("repro/")
    rel = source_file[idx:] if idx >= 0 else source_file
    return f"{rel}:{lineno}"


def static_validate_workload(
    name: str,
    workload_factory: Optional[Callable[[], object]] = None,
    registry: Optional[SourceRegistry] = None,
    audit: Optional[AuditRun] = None,
):
    """The static sharing inference for one workload, cross-validated
    against ``audit`` when one is supplied (else purely static).

    Returns a :class:`~repro.analysis.staticshare.CrossValidation`, or
    None when the workload's source cannot be analyzed.
    """
    from repro.analysis.staticshare import cross_validate, predict_workload

    if workload_factory is None:
        workload_factory = _lint_workloads()[name]
    prediction = predict_workload(
        type(workload_factory()), name, registry=registry
    )
    if prediction is None:
        return None
    observations = None
    if audit is not None and audit.auditor is not None:
        observations = audit.auditor.observations()
    return cross_validate(prediction, observations, f"staticshare({name})")


def run_analysis(
    workloads: Optional[List[str]] = None,
    passes: Tuple[str, ...] = PASSES,
    baseline_path: Optional[str] = None,
    with_lint: bool = False,
    with_mc: bool = False,
    mc_budget: str = "small",
    with_static: bool = False,
) -> Report:
    """Analyze the named workloads (default: all) into one report.

    ``with_mc`` additionally explores the model-checker fixtures and
    verifies the cache model symbolically (``repro analyze --mc``) --
    slower, so off by default; ``repro mc`` runs the same machinery with
    its own richer output.  ``with_static`` additionally runs the static
    sharing inference per workload and cross-validates it against the
    dynamic audit (SA001-SA003 findings join the report).

    One :class:`SourceRegistry` serves every pass, so each workload
    module is parsed at most once per analysis run.
    """
    from repro.analysis.diagnostics import load_baseline

    registry = SourceRegistry()
    names = workloads if workloads else lint_workload_names()
    report = Report()
    for name in sorted(names):
        audit = audit_workload(name, passes=passes, registry=registry)
        report.extend(audit.findings)
        if with_static:
            validation = static_validate_workload(
                name, registry=registry, audit=audit
            )
            if validation is not None:
                report.extend(validation.diagnostics)
    if with_lint:
        report.extend(lint_paths())
    if with_mc:
        from repro.analysis.mc import (
            BUDGETS,
            explore_all,
            verify_cache_model,
        )

        budget = BUDGETS[mc_budget]
        _results, mc_diags = explore_all(budget)
        report.extend(mc_diags)
        model_diags, _stats = verify_cache_model()
        report.extend(model_diags)
    if baseline_path is not None:
        report.baseline = load_baseline(baseline_path)
    report.finalize()
    return report
