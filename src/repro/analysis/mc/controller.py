"""Choice-point plumbing for the schedule model checker.

The deterministic runtime has exactly two sources of scheduling freedom
on a uniprocessor:

- which READY thread the scheduler picks at a dispatch point, and
- whether a running thread is forcibly preempted between two of its
  events (the ``controller`` hook in :class:`repro.threads.runtime.
  Runtime`).

:class:`ControlledScheduler` + :class:`ScheduleController` turn both
into explicit, replayable *decisions*.  A run is driven by a
:class:`DecisionCursor` over a persistent path of :class:`ChoiceNode`
objects owned by the explorer: decisions inside the path are replayed
bit-identically (stateless re-execution, VeriSoft-style); decisions past
the end take a default and grow the path.  Every decision also closes a
:class:`SliceFootprint` -- the read/write/sync footprint of the events
executed since the previous decision -- which is what the explorer's
dynamic partial-order reduction uses to tell commuting schedules apart.

Sleep sets work at scheduling-interval granularity and are sound here
because thread bodies are deterministic generators: when choice ``x``
was already fully explored at a node, any sibling schedule may keep
``x`` asleep until some executed slice *conflicts* with the slice ``x``
performed from that very same state -- nothing else can change what
``x`` would do.  Scheduling a sleeping thread is provably redundant, so
the run is abandoned with :class:`PrunedRun` and counted as pruned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sched.base import Scheduler
from repro.threads import events as ev
from repro.threads.thread import ActiveThread, ThreadState

#: decision kinds
PICK = "pick"
PREEMPT = "preempt"


class PrunedRun(Exception):
    """The current execution is redundant (sleep-set hit); abandon it."""


class DepthExceeded(Exception):
    """The run exceeded the decision-depth budget."""


class ExplorationError(Exception):
    """Replay divergence: the runtime did not re-execute deterministically
    under an identical decision prefix.  Always a bug, never a finding."""


class SliceFootprint:
    """What one scheduling slice touched: sync objects, thread-lifecycle
    tokens, and read/written cache lines.  Two slices *conflict* when
    reordering them could matter."""

    __slots__ = ("tokens", "reads", "writes")

    def __init__(self) -> None:
        self.tokens: Set[Tuple[str, object]] = set()
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    def add_sync(self, name: object) -> None:
        self.tokens.add(("s", name))

    def add_thread(self, tid: int) -> None:
        self.tokens.add(("t", tid))

    def add_lines(self, lines: Sequence[int], write: bool) -> None:
        target = self.writes if write else self.reads
        target.update(int(line) for line in lines)

    def conflicts(self, other: "SliceFootprint") -> bool:
        if self.tokens & other.tokens:
            return True
        if self.writes & (other.reads | other.writes):
            return True
        if other.writes & self.reads:
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"SliceFootprint(tokens={sorted(map(repr, self.tokens))}, "
            f"r={len(self.reads)}, w={len(self.writes)})"
        )


class ChoiceNode:
    """One persistent choice point in the explorer's DFS path."""

    __slots__ = ("kind", "enabled", "taken", "todo", "explored", "last_slice")

    def __init__(
        self,
        kind: str,
        enabled: Tuple[int, ...],
        taken: object,
        todo: Optional[List[object]] = None,
    ) -> None:
        self.kind = kind
        self.enabled = enabled
        #: the choice the current run takes here
        self.taken: object = taken
        #: alternatives queued for later runs (DPOR backtrack set)
        self.todo: List[object] = list(todo or ())
        #: fully explored choices -> the slice each performed (or None if
        #: pruned before executing); feeds sibling sleep sets
        self.explored: Dict[object, Optional[SliceFootprint]] = {}
        #: slice performed by ``taken`` in the most recent run through here
        self.last_slice: Optional[SliceFootprint] = None

    def queue(self, choice: object) -> bool:
        """Add a backtrack alternative; returns True if newly queued."""
        if choice == self.taken or choice in self.explored or choice in self.todo:
            return False
        self.todo.append(choice)
        return True

    def __repr__(self) -> str:
        return (
            f"ChoiceNode({self.kind}, enabled={self.enabled}, "
            f"taken={self.taken!r}, todo={self.todo!r})"
        )


class TracePoint:
    """One decision of one run, plus the slice that followed it."""

    __slots__ = ("kind", "enabled", "chosen", "tid", "node", "slice")

    def __init__(
        self,
        kind: str,
        enabled: Tuple[int, ...],
        chosen: object,
        tid: Optional[int],
        node: Optional[ChoiceNode],
    ) -> None:
        self.kind = kind
        self.enabled = enabled
        self.chosen = chosen
        #: thread executing the slice that follows this decision (None
        #: for a taken preemption, whose slice is empty)
        self.tid = tid
        #: the persistent node (None for forced/singleton picks)
        self.node = node
        self.slice = SliceFootprint()


class DecisionCursor:
    """Replays a decision path and extends it with defaults.

    Owned per run; ``path`` is the explorer's persistent DFS spine, which
    the cursor appends new nodes to as the run ventures past it.
    """

    def __init__(self, path: List[ChoiceNode], dpor: bool) -> None:
        self.path = path
        self.pos = 0
        #: sleep sets only operate in DPOR mode; exhaustive mode queues
        #: every sibling instead
        self.use_sleep = dpor
        self.dpor = dpor

    def decide_pick(
        self, tids: Tuple[int, ...], sleep: Dict[int, SliceFootprint]
    ) -> Tuple[int, Optional[ChoiceNode]]:
        if self.use_sleep and all(t in sleep for t in tids):
            raise PrunedRun(f"all of {tids} asleep")
        if len(tids) == 1:
            return tids[0], None
        if self.pos < len(self.path):
            node = self.path[self.pos]
            self.pos += 1
            if node.kind != PICK or node.enabled != tids:
                raise ExplorationError(
                    f"replay divergence: expected {node!r}, runtime "
                    f"offered pick among {tids}"
                )
            taken = node.taken
            assert isinstance(taken, int)
            if self.use_sleep and taken in sleep:
                raise PrunedRun(f"replayed choice {taken} asleep")
            if self.use_sleep:
                for sibling, sl in node.explored.items():
                    if sibling != taken and sl is not None:
                        assert isinstance(sibling, int)
                        sleep.setdefault(sibling, sl)
            return taken, node
        awake = [t for t in tids if not (self.use_sleep and t in sleep)]
        taken = awake[0]
        todo: List[object] = [] if self.dpor else [t for t in tids if t != taken]
        node = ChoiceNode(PICK, tids, taken, todo)
        self.path.append(node)
        self.pos += 1
        return taken, node

    def decide_preempt(self) -> Tuple[bool, ChoiceNode]:
        if self.pos < len(self.path):
            node = self.path[self.pos]
            self.pos += 1
            if node.kind != PREEMPT:
                raise ExplorationError(
                    f"replay divergence: expected {node!r}, runtime "
                    "offered a preemption point"
                )
            taken = node.taken
            assert isinstance(taken, bool)
            return taken, node
        todo = [] if self.dpor else [True]
        node = ChoiceNode(PREEMPT, (), False, todo)
        self.path.append(node)
        self.pos += 1
        return False, node


class ScheduleController:
    """Runtime observer + ``controller`` hook recording one run's trace.

    Attach with ``Runtime(..., controller=controller)`` followed by
    ``runtime.add_observer(controller)``: the runtime consults
    :meth:`should_preempt` before every body step, while the observer
    hooks accumulate slice footprints and forward to property checkers.
    """

    def __init__(
        self,
        cursor: DecisionCursor,
        checkers: Sequence[object] = (),
        preemption_bound: int = 0,
        max_decisions: int = 1000,
    ) -> None:
        self.cursor = cursor
        self.checkers = list(checkers)
        self.preemption_bound = preemption_bound
        self.max_decisions = max_decisions
        self.trace: List[TracePoint] = []
        self.sleep: Dict[int, SliceFootprint] = {}
        self.preemptions = 0
        self.decisions = 0
        self.runtime = None
        self.scheduler: Optional["ControlledScheduler"] = None
        #: events executed in the current scheduling interval
        self._events_in_interval = 0
        #: accumulates events seen before the first decision (workload
        #: build-time creations); never participates in the analysis
        self._root_slice = SliceFootprint()

    # -- wiring ------------------------------------------------------------

    def bind(self, runtime, scheduler: "ControlledScheduler") -> None:
        self.runtime = runtime
        self.scheduler = scheduler
        for checker in self.checkers:
            checker.bind(runtime)

    @property
    def violations(self) -> List[Tuple[str, str]]:
        found: List[Tuple[str, str]] = []
        for checker in self.checkers:
            found.extend(checker.violations)
        return found

    def finalize(self) -> None:
        """Close the last slice and flush deferred checker assertions."""
        self._close_slice()
        for checker in self.checkers:
            checker.finish()

    # -- decision points ----------------------------------------------------

    def _open_slice(self) -> SliceFootprint:
        if self.trace:
            return self.trace[-1].slice
        return self._root_slice

    def _close_slice(self) -> None:
        """Apply the sleep-set wake rule for the slice just completed."""
        if not self.trace:
            return
        point = self.trace[-1]
        if point.node is not None:
            point.node.last_slice = point.slice
        if not self.sleep:
            return
        for tid in [t for t, fp in self.sleep.items() if point.slice.conflicts(fp)]:
            del self.sleep[tid]

    def _bump_decisions(self) -> None:
        self.decisions += 1
        if self.decisions > self.max_decisions:
            raise DepthExceeded(f"exceeded {self.max_decisions} decisions")

    def choose_pick(self, enabled: List[ActiveThread]) -> ActiveThread:
        """Called by :class:`ControlledScheduler` with the READY threads
        in canonical (tid) order; returns the thread to dispatch."""
        self._bump_decisions()
        self._close_slice()
        tids = tuple(t.tid for t in enabled)
        taken, node = self.cursor.decide_pick(tids, self.sleep)
        self.trace.append(TracePoint(PICK, tids, taken, taken, node))
        for thread in enabled:
            if thread.tid == taken:
                return thread
        raise ExplorationError(f"pick chose {taken}, not among {tids}")

    def should_preempt(self, cpu: int, thread: ActiveThread) -> bool:
        """The runtime's ``controller`` hook: preempt before this step?

        Only a real choice point mid-interval, under the preemption
        budget, with somewhere else for the cpu to go; anything less is
        either covered by the pick choice or a pointless reschedule.
        """
        if self.preemptions >= self.preemption_bound:
            return False
        if self._events_in_interval == 0:
            return False
        assert self.scheduler is not None
        if not self.scheduler.other_runnable(thread):
            return False
        self._bump_decisions()
        self._close_slice()
        taken, node = self.cursor.decide_preempt()
        owner = None if taken else thread.tid
        self.trace.append(TracePoint(PREEMPT, (), taken, owner, node))
        if taken:
            self.preemptions += 1
        return taken

    # -- Observer hooks ------------------------------------------------------

    def on_dispatch(self, cpu: int, thread: ActiveThread) -> None:
        self._events_in_interval = 0
        for checker in self.checkers:
            checker.on_dispatched(cpu, thread)

    def on_event(self, cpu: int, thread: ActiveThread, event) -> None:
        for checker in self.checkers:
            checker.on_event(cpu, thread, event)
        self._events_in_interval += 1
        fp = self._open_slice()
        if isinstance(event, (ev.Acquire, ev.Release)):
            fp.add_sync(event.mutex.name)
        elif isinstance(event, (ev.SemWait, ev.SemPost)):
            fp.add_sync(event.semaphore.name)
        elif isinstance(event, ev.BarrierWait):
            fp.add_sync(event.barrier.name)
        elif isinstance(event, ev.CondWait):
            fp.add_sync(event.condition.name)
            fp.add_sync(event.mutex.name)
        elif isinstance(event, (ev.CondSignal, ev.CondBroadcast)):
            fp.add_sync(event.condition.name)
        elif isinstance(event, ev.Join):
            fp.add_thread(event.tid)
        elif isinstance(event, ev.Touch):
            fp.add_lines(event.lines, event.write)
        elif isinstance(event, ev.Fetch):
            fp.add_lines(event.lines, False)

    def on_block(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        if finished:
            # a thread's completion is what join / create order against
            self._open_slice().add_thread(thread.tid)
        for checker in self.checkers:
            checker.on_interval_end(cpu, thread, misses, finished)

    def on_create(
        self, parent: Optional[ActiveThread], thread: ActiveThread
    ) -> None:
        self._open_slice().add_thread(thread.tid)

    def on_touch(self, cpu: int, thread: ActiveThread, result) -> None:
        pass

    def on_state_declared(self, tid: int, vlines) -> None:
        pass


class ControlledScheduler(Scheduler):
    """A zero-cost scheduler that delegates every pick to the controller.

    The enabled set presented at each pick is the READY threads sorted by
    tid -- a canonical, replayable order -- so the controller's decisions
    are the *only* nondeterminism in an exploration run.
    """

    name = "mc"

    def __init__(self, controller: ScheduleController) -> None:
        self.controller = controller
        self.runtime = None
        self._ready: Dict[int, Tuple[ActiveThread, int]] = {}

    def attach(self, runtime) -> None:
        self.runtime = runtime
        self.controller.bind(runtime, self)

    def thread_ready(self, thread: ActiveThread) -> int:
        self._ready[thread.tid] = (thread, thread.ready_seq)
        return 0

    def thread_dispatched(self, cpu: int, thread: ActiveThread) -> int:
        return 0

    def thread_blocked(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> int:
        return 0

    def _enabled(self) -> List[ActiveThread]:
        stale = []
        enabled = []
        for tid in sorted(self._ready):
            thread, seq = self._ready[tid]
            if thread.state is ThreadState.READY and thread.ready_seq == seq:
                enabled.append(thread)
            else:
                stale.append(tid)
        for tid in stale:
            del self._ready[tid]
        return enabled

    def other_runnable(self, thread: ActiveThread) -> bool:
        return any(t.tid != thread.tid for t in self._enabled())

    def pick(self, cpu: int) -> Tuple[Optional[ActiveThread], int]:
        enabled = self._enabled()
        if not enabled:
            return None, 0
        chosen = self.controller.choose_pick(enabled)
        del self._ready[chosen.tid]
        return chosen, 0

    def has_runnable(self) -> bool:
        return bool(self._enabled())
