"""Symbolic verification of the footprint formulas on small caches.

The closed forms of :class:`~repro.core.model.SharedStateModel` (paper
section 2.4) claim, for a direct-mapped cache of ``N`` lines with
``k = (N-1)/N``::

    case 1 (running)      E[F_A] = N - (N - S) * k**n
    case 2 (independent)  E[F_B] = S * k**n
    case 3 (dependent)    E[F_C] = qN - (qN - S) * k**n

This pass brute-forces the underlying birth--death Markov chain
(:func:`repro.core.markov.expectation_curve`) for every small cache size
``N <= max_lines``, every initial footprint ``S`` and a grid of sharing
coefficients ``q``, across ``n = 0 .. max_misses`` misses, and asserts:

- **exactness**: the closed form agrees with the chain everywhere (the
  recurrence ``E_{n+1} = k E_n + q`` solves to exactly case 3, so the
  tolerance only absorbs float rounding);
- **reductions**: case 3 collapses to case 1 at ``q = 1`` and to case 2
  at ``q = 0`` for every ``(N, S, n)``;
- **monotonicity in n**: the footprint moves monotonically towards the
  asymptote ``qN`` -- upward from below, downward from above;
- **monotonicity in q**: for fixed ``(N, S, n)`` the expectation never
  decreases as the sharing coefficient grows.

Any failure is an ``MC005`` diagnostic.  Tests inject a deliberately
wrong model class to prove the pass actually discriminates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.core.markov import expectation_curve
from repro.core.model import SharedStateModel

SOURCE = "mc(model)"

#: keep a pathological model from flooding the report
MAX_REPORTED = 12


class ModelCheckStats:
    """Counters describing one verification sweep."""

    def __init__(self) -> None:
        self.checks = 0
        self.configs = 0
        self.failures = 0


def _report(
    found: List[str], stats: ModelCheckStats, message: str
) -> None:
    stats.failures += 1
    if len(found) < MAX_REPORTED:
        found.append(message)


def verify_cache_model(
    max_lines: int = 8,
    max_misses: int = 16,
    qs: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    tol: float = 1e-9,
    model_cls: Type[SharedStateModel] = SharedStateModel,
) -> Tuple[List[Diagnostic], ModelCheckStats]:
    """Sweep all small configurations; return (diagnostics, stats)."""
    stats = ModelCheckStats()
    found: List[str] = []
    misses = np.arange(max_misses + 1)
    # the q-monotonicity check walks adjacent grid points in order
    qs = tuple(sorted(qs))

    for num_lines in range(2, max_lines + 1):
        model = model_cls(num_lines)
        for initial in range(num_lines + 1):
            prev_curve: Optional[np.ndarray] = None
            prev_q: Optional[float] = None
            for q in qs:
                stats.configs += 1
                exact = expectation_curve(num_lines, q, initial, max_misses)
                closed = np.asarray(
                    model.expected_dependent(initial, q, misses), dtype=float
                )

                stats.checks += 1
                gap = float(np.max(np.abs(closed - exact)))
                if gap > tol:
                    _report(
                        found,
                        stats,
                        f"N={num_lines} S={initial} q={q:g}: closed form "
                        f"deviates from the exact chain by {gap:.6g} "
                        f"(tol {tol:g})",
                    )

                stats.checks += 1
                if q == 1.0:
                    reduced = np.asarray(
                        model.expected_running(initial, misses), dtype=float
                    )
                    gap = float(np.max(np.abs(closed - reduced)))
                    if gap > tol:
                        _report(
                            found,
                            stats,
                            f"N={num_lines} S={initial}: case 3 at q=1 "
                            f"fails to reduce to case 1 (gap {gap:.6g})",
                        )
                elif q == 0.0:
                    reduced = np.asarray(
                        model.expected_independent(initial, misses),
                        dtype=float,
                    )
                    gap = float(np.max(np.abs(closed - reduced)))
                    if gap > tol:
                        _report(
                            found,
                            stats,
                            f"N={num_lines} S={initial}: case 3 at q=0 "
                            f"fails to reduce to case 2 (gap {gap:.6g})",
                        )

                stats.checks += 1
                steps = np.diff(closed)
                asymptote = q * num_lines
                if initial <= asymptote and np.any(steps < -tol):
                    _report(
                        found,
                        stats,
                        f"N={num_lines} S={initial} q={q:g}: footprint not "
                        "monotonically nondecreasing towards the asymptote "
                        f"{asymptote:.6g}",
                    )
                elif initial > asymptote and np.any(steps > tol):
                    _report(
                        found,
                        stats,
                        f"N={num_lines} S={initial} q={q:g}: footprint not "
                        "monotonically nonincreasing towards the asymptote "
                        f"{asymptote:.6g}",
                    )

                if prev_curve is not None and prev_q is not None:
                    stats.checks += 1
                    if np.any(closed - prev_curve < -tol):
                        _report(
                            found,
                            stats,
                            f"N={num_lines} S={initial}: expectation "
                            f"decreased when q grew from {prev_q:g} to "
                            f"{q:g}",
                        )
                prev_curve = closed
                prev_q = q

    if stats.failures > len(found):
        found.append(
            f"... and {stats.failures - len(found)} further model "
            "violations suppressed"
        )
    diagnostics = [
        Diagnostic(code="MC005", message=message, source=SOURCE)
        for message in found
    ]
    diagnostics.sort(key=lambda d: d.sort_key)
    return diagnostics, stats
