"""``repro.analysis.mc``: the exhaustive schedule model checker.

A stateless-search bounded model checker with dynamic partial-order
reduction over the deterministic thread runtime, plus a symbolic
verification of the shared-state cache model:

- :mod:`.controller` -- turns every scheduler pick and forced-preemption
  point into a replayable decision, and records per-slice footprints;
- :mod:`.explorer`   -- DFS over the decision tree with DPOR + sleep
  sets, re-executing small fixture workloads until every non-equivalent
  interleaving has been seen;
- :mod:`.properties` -- per-run checkers for FIFO handoff, barrier
  generation safety, and the O(d) priority-update contract;
- :mod:`.fixtures`   -- the closed workloads that get explored;
- :mod:`.model_check` -- brute-forces the birth--death chain against the
  closed-form footprint formulas on all small caches.

Findings surface as ``MC001``--``MC005`` diagnostics through the shared
:mod:`repro.analysis.diagnostics` machinery; entry points are ``repro
mc`` and ``repro analyze --mc``.
"""

from repro.analysis.mc.controller import (
    ChoiceNode,
    ControlledScheduler,
    DecisionCursor,
    DepthExceeded,
    ExplorationError,
    PrunedRun,
    ScheduleController,
    SliceFootprint,
)
from repro.analysis.mc.explorer import (
    BUDGETS,
    FULL_BUDGET,
    SMALL_BUDGET,
    AnnotationChaos,
    ExplorationResult,
    MCBudget,
    explore,
    explore_all,
    explore_fixture,
)
from repro.analysis.mc.fixtures import BUGGY_FIXTURES, FIXTURES, MCFixture
from repro.analysis.mc.model_check import ModelCheckStats, verify_cache_model
from repro.analysis.mc.properties import (
    PriorityUpdateChecker,
    PropertyChecker,
    SyncOrderChecker,
    default_checkers,
)
from repro.analysis.mc.report import (
    format_explorations,
    format_mc_report,
    format_model_check,
)

__all__ = [
    "BUDGETS",
    "BUGGY_FIXTURES",
    "FIXTURES",
    "FULL_BUDGET",
    "SMALL_BUDGET",
    "AnnotationChaos",
    "ChoiceNode",
    "ControlledScheduler",
    "DecisionCursor",
    "DepthExceeded",
    "ExplorationError",
    "ExplorationResult",
    "MCBudget",
    "MCFixture",
    "ModelCheckStats",
    "PriorityUpdateChecker",
    "PropertyChecker",
    "PrunedRun",
    "ScheduleController",
    "SliceFootprint",
    "SyncOrderChecker",
    "default_checkers",
    "explore",
    "explore_all",
    "explore_fixture",
    "format_explorations",
    "format_mc_report",
    "format_model_check",
    "verify_cache_model",
]
