"""Small closed workloads the model checker explores exhaustively.

Every fixture is a :class:`~repro.workloads.base.Workload` with one
addition: :meth:`MCFixture.signature` reduces the final program state to
a hashable value after the run.  The explorer re-executes the fixture
under every non-equivalent schedule and asserts all signatures are
bit-identical -- the dynamic form of the paper's core claim that
annotations (and scheduling generally) are *hints* that can never change
results.

Fixtures are deliberately tiny (2--4 threads, a handful of scheduling
intervals each) so the DPOR search terminates: the state space is the
product of interleavings at every block/yield boundary.  Each fixture
exercises one slice of the sync vocabulary:

- ``counter``   mutex-protected shared counter with a yield *inside* the
  critical section, forcing real contention on one CPU;
- ``pipeline``  producer/consumer over a semaphore and a mutex;
- ``phases``    barrier-phased accumulation (generation safety);
- ``jointree``  in-body ``at_create`` + ``at_share`` annotations + joins,
  giving the priority checker a thread with graph-successors;
- ``condrelay`` condition-variable broadcast with the canonical
  while-loop re-check.

The underscore-prefixed "buggy" variants at the bottom seed known
violations (LIFO mutex handoff, stuck barrier generation,
order-dependent results, an unannotated semaphore deadlock); tests
drive them through the explorer to prove each MC00x code actually
fires.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.threads import events as ev
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ActiveThread
from repro.workloads.base import Workload

#: lines per private region -- small, so per-interval miss counts stay
#: cheap and the priority tables fit comfortably
_REGION_LINES = 4


class MCFixture(Workload):
    """A workload the explorer can fingerprint after the run."""

    name = "mc-abstract"

    def signature(self) -> Tuple[Any, ...]:
        """Reduce the final state to a hashable, comparable value."""
        raise NotImplementedError


class CounterFixture(MCFixture):
    """Mutex-protected counter; yields mid-critical-section."""

    name = "counter"

    def __init__(self, threads: int = 3, iters: int = 1,
                 mutex_cls: Type[Mutex] = Mutex):
        self.threads = threads
        self.iters = iters
        self.mutex_cls = mutex_cls
        self.count = 0

    def build(self, runtime) -> None:
        self.count = 0
        self.lock = self.mutex_cls("counter-lock")
        self.shared = runtime.alloc_lines("counter-shared", _REGION_LINES)
        for i in range(self.threads):
            private = runtime.alloc_lines(f"counter-priv-{i}", _REGION_LINES)
            runtime.at_create(self._body(private), name=f"inc-{i}")

    def _body(self, private):
        for _ in range(self.iters):
            yield ev.touch_region(private, write=True)
            yield ev.Acquire(self.lock)
            value = self.count
            yield ev.touch_region(self.shared, write=True)
            # the yield sits inside the critical section: on one CPU this
            # is the only way later threads pile up on the wait queue
            yield ev.Yield()
            self.count = value + 1
            yield ev.Release(self.lock)

    def signature(self) -> Tuple[Any, ...]:
        return ("counter", self.count)


class PipelineFixture(MCFixture):
    """One producer, two consumers over a semaphore-guarded queue."""

    name = "pipeline"

    def __init__(self, items: int = 3):
        self.items = items

    def build(self, runtime) -> None:
        self.queue: List[int] = []
        self.consumed: Dict[str, List[int]] = {}
        self.lock = Mutex("pipe-lock")
        self.avail = Semaphore(0, "pipe-avail")
        region = runtime.alloc_lines("pipe-buf", _REGION_LINES)
        runtime.at_create(self._producer(region), name="producer")
        # each consumer takes a fixed share so the run always terminates
        quota, extra = divmod(self.items, 2)
        for i, take in enumerate((quota + extra, quota)):
            runtime.at_create(self._consumer(f"cons-{i}", take),
                              name=f"cons-{i}")

    def _producer(self, region):
        for item in range(self.items):
            yield ev.touch_region(region, write=True)
            yield ev.Acquire(self.lock)
            self.queue.append(item)
            yield ev.Release(self.lock)
            yield ev.SemPost(self.avail)

    def _consumer(self, name: str, take: int):
        got = self.consumed.setdefault(name, [])
        for _ in range(take):
            yield ev.SemWait(self.avail)
            yield ev.Acquire(self.lock)
            got.append(self.queue.pop(0))
            yield ev.Release(self.lock)

    def signature(self) -> Tuple[Any, ...]:
        drained = tuple(sorted(
            item for got in self.consumed.values() for item in got
        ))
        return ("pipeline", drained, tuple(self.queue))


class PhasesFixture(MCFixture):
    """Barrier-phased accumulation across three threads."""

    name = "phases"

    def __init__(self, threads: int = 3, phases: int = 2,
                 barrier_cls: Type[Barrier] = Barrier):
        self.threads = threads
        self.phases = phases
        self.barrier_cls = barrier_cls

    def build(self, runtime) -> None:
        self.totals: Dict[str, int] = {}
        self.barrier = self.barrier_cls(self.threads, "phase-barrier")
        for i in range(self.threads):
            private = runtime.alloc_lines(f"phase-priv-{i}", _REGION_LINES)
            runtime.at_create(self._body(f"ph-{i}", i, private),
                              name=f"ph-{i}")

    def _body(self, name: str, rank: int, private):
        for phase in range(self.phases):
            yield ev.touch_region(private, write=True)
            self.totals[name] = self.totals.get(name, 0) + rank + phase
            yield ev.BarrierWait(self.barrier)

    def signature(self) -> Tuple[Any, ...]:
        return (
            "phases",
            tuple(sorted(self.totals.items())),
            self.barrier.generation,
        )


class JoinTreeFixture(MCFixture):
    """A parent spawns two annotated children in-body and joins them.

    The ``at_share`` edges give the parent graph-successors, so the
    priority checker exercises the d > 0 branch of the O(d) update.
    """

    name = "jointree"

    def build(self, runtime) -> None:
        self.partials: Dict[int, int] = {}
        self.total: Optional[int] = None
        self.region = runtime.alloc_lines("join-shared", _REGION_LINES)
        runtime.at_create(self._parent(runtime), name="parent")

    def _parent(self, runtime):
        yield ev.touch_region(self.region, write=True)
        parent_tid = runtime.at_self()
        kids = []
        for i in range(2):
            tid = runtime.at_create(self._child(i), name=f"child-{i}")
            # children inherit a slice of the parent's working set
            runtime.at_share(tid, parent_tid, 0.5)
            kids.append(tid)
        yield ev.Yield()
        for tid in kids:
            yield ev.Join(tid)
        self.total = sum(self.partials.values())

    def _child(self, rank: int):
        yield ev.touch_region(self.region)
        self.partials[rank] = (rank + 1) * 10
        yield ev.Yield()

    def signature(self) -> Tuple[Any, ...]:
        return ("jointree", self.total, tuple(sorted(self.partials.items())))


class CondRelayFixture(MCFixture):
    """Broadcast wakeup with the canonical while-loop predicate check."""

    name = "condrelay"

    def build(self, runtime) -> None:
        self.value: Optional[int] = None
        self.records: List[Tuple[str, int]] = []
        self.lock = Mutex("relay-lock")
        self.cond = Condition("relay-cond")
        runtime.at_create(self._setter(), name="setter")
        for i in range(2):
            runtime.at_create(self._waiter(f"wait-{i}"), name=f"wait-{i}")

    def _setter(self):
        yield ev.Acquire(self.lock)
        self.value = 42
        yield ev.CondBroadcast(self.cond)
        yield ev.Release(self.lock)

    def _waiter(self, name: str):
        yield ev.Acquire(self.lock)
        while self.value is None:
            yield ev.CondWait(self.cond, self.lock)
        self.records.append((name, self.value))
        yield ev.Release(self.lock)

    def signature(self) -> Tuple[Any, ...]:
        return ("condrelay", self.value, tuple(sorted(self.records)))


#: the clean fixture suite ``repro mc`` explores by default
FIXTURES: Dict[str, Type[MCFixture]] = {
    CounterFixture.name: CounterFixture,
    PipelineFixture.name: PipelineFixture,
    PhasesFixture.name: PhasesFixture,
    JoinTreeFixture.name: JoinTreeFixture,
    CondRelayFixture.name: CondRelayFixture,
}


# -- seeded-bug variants (test-only) ---------------------------------------


class _LifoMutex(Mutex):
    """Hands the lock to the *newest* waiter -- violates FIFO handoff."""

    def release(self, thread: ActiveThread) -> Optional[ActiveThread]:
        if self._waiters:
            self.owner = self._waiters.pop()
            return self.owner
        return super().release(thread)


class _StuckBarrier(Barrier):
    """Wakes everyone but never advances the generation."""

    def arrive(self, thread: ActiveThread) -> Optional[List[ActiveThread]]:
        if len(self._waiters) + 1 < self.parties:
            self._waiters.append(thread)
            return None
        woken = self._waiters
        self._waiters = []
        return woken


class LifoCounterFixture(CounterFixture):
    """Counter over a LIFO-handoff mutex: the explorer must flag MC002."""

    name = "lifo-counter"

    def __init__(self) -> None:
        super().__init__(threads=3, iters=1, mutex_cls=_LifoMutex)


class StuckBarrierFixture(PhasesFixture):
    """Phases over a generation-stuck barrier: MC002."""

    name = "stuck-barrier"

    def __init__(self) -> None:
        super().__init__(threads=3, phases=1, barrier_cls=_StuckBarrier)


class OrderSignatureFixture(CounterFixture):
    """A counter whose *signature* leaks acquisition order: MC003.

    The final count is schedule-independent but the order log is not,
    so distinct interleavings produce distinct signatures.
    """

    name = "order-signature"

    def __init__(self) -> None:
        super().__init__(threads=2, iters=1)

    def build(self, runtime) -> None:
        self.order: List[str] = []
        super().build(runtime)

    def _body(self, private):
        base = super()._body(private)
        first = next(base)
        yield first
        self.order.append(f"slot-{len(self.order)}-{self.count}")
        for event in base:
            yield event

    def signature(self) -> Tuple[Any, ...]:
        return ("order", self.count, tuple(self.order))


class CrossSemDeadlockFixture(MCFixture):
    """Two threads P() semaphores nobody ever posts: an *unpredicted*
    deadlock (no mutex cycle for the static pass to anticipate): MC001."""

    name = "cross-sem-deadlock"

    def build(self, runtime) -> None:
        self.sems = (Semaphore(0, "dead-a"), Semaphore(0, "dead-b"))
        runtime.at_create(self._body(self.sems[0]), name="wait-a")
        runtime.at_create(self._body(self.sems[1]), name="wait-b")

    def _body(self, sem: Semaphore):
        yield ev.Yield()
        yield ev.SemWait(sem)

    def signature(self) -> Tuple[Any, ...]:
        return ("cross-sem-deadlock",)


#: fixtures that must each trip their MC00x code (exercised by tests)
BUGGY_FIXTURES: Dict[str, Type[MCFixture]] = {
    LifoCounterFixture.name: LifoCounterFixture,
    StuckBarrierFixture.name: StuckBarrierFixture,
    OrderSignatureFixture.name: OrderSignatureFixture,
    CrossSemDeadlockFixture.name: CrossSemDeadlockFixture,
}
