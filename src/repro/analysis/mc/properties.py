"""Per-state property checkers the explorer attaches to every run.

Each checker observes the event stream of one exploration run and
records violations as ``(code, message)`` pairs; the explorer
deduplicates them across runs and surfaces them as ``MC002``/``MC004``
diagnostics.  Checks that need to see the *effect* of an event are
deferred: scheduled when the event is observed (before it mutates any
state) and asserted at the next observation point, by which time the
runtime has completed the operation atomically.

- :class:`SyncOrderChecker` -- FIFO mutex handoff (release must hand the
  lock to the head of the wait queue), FIFO semaphore wakeup, and
  barrier generation safety (a full arrival advances the generation by
  exactly one, wakes every earlier arrival, and no thread arrives twice
  in one generation).
- :class:`PriorityUpdateChecker` -- hosts a shadow LFF priority scheme
  and asserts the paper's section 4 contract at every context switch:
  the update touches exactly ``1 + d`` entries (the blocker plus its
  ``d`` graph-successors) and the priority of every *independent* thread
  is left bit-identical (the order-equivalence that makes O(d) updates
  sound).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.model import SharedStateModel
from repro.core.priorities import LFFScheme, PrecomputedTables, PriorityScheme
from repro.threads import events as ev
from repro.threads.thread import ActiveThread, ThreadState

_AWAKE = (ThreadState.READY, ThreadState.RUNNING)

#: shared k^n / log F tables keyed by cache size -- rebuilding them for
#: each of the thousands of exploration runs would dominate the cost
_TABLES: Dict[int, PrecomputedTables] = {}


def _tables(num_lines: int) -> PrecomputedTables:
    tables = _TABLES.get(num_lines)
    if tables is None:
        tables = PrecomputedTables(num_lines)
        _TABLES[num_lines] = tables
    return tables


class PropertyChecker:
    """Base: violation collection plus no-op hooks."""

    def __init__(self) -> None:
        self.violations: List[Tuple[str, str]] = []
        self.runtime = None

    def bind(self, runtime) -> None:
        self.runtime = runtime

    def report(self, code: str, message: str) -> None:
        self.violations.append((code, message))

    def on_event(self, cpu: int, thread: ActiveThread, event) -> None:
        pass

    def on_dispatched(self, cpu: int, thread: ActiveThread) -> None:
        pass

    def on_interval_end(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        pass

    def finish(self) -> None:
        pass


class SyncOrderChecker(PropertyChecker):
    """FIFO handoff and barrier generation safety (``MC002``)."""

    def __init__(self) -> None:
        super().__init__()
        self._pending: List[Callable[[], None]] = []
        #: (barrier name, generation, tid) triples seen arriving
        self._arrived: set = set()

    def _flush(self) -> None:
        pending, self._pending = self._pending, []
        for check in pending:
            check()

    def on_event(self, cpu: int, thread: ActiveThread, event) -> None:
        self._flush()
        if isinstance(event, ev.Release):
            self._on_release(event.mutex, thread)
        elif isinstance(event, ev.SemPost):
            self._on_post(event.semaphore)
        elif isinstance(event, ev.BarrierWait):
            self._on_arrive(event.barrier, thread)

    def _on_release(self, mutex, thread: ActiveThread) -> None:
        if not mutex.waiters:
            return
        expected = mutex.waiters[0]

        def check() -> None:
            owner = mutex.owner
            if owner is not expected:
                self.report(
                    "MC002",
                    f"{mutex.label}: release by {thread.name} handed the "
                    f"lock to {owner.name if owner else 'nobody'}, but the "
                    f"FIFO queue head was {expected.name}",
                )

        self._pending.append(check)

    def _on_post(self, sem) -> None:
        if sem.count > 0 or not sem.waiters:
            return
        expected = sem.waiters[0]

        def check() -> None:
            if expected.state not in _AWAKE or expected.waiting_on is sem:
                self.report(
                    "MC002",
                    f"{sem.label}: post woke a waiter other than the FIFO "
                    f"queue head {expected.name} "
                    f"(still {expected.state.value})",
                )

        self._pending.append(check)

    def _on_arrive(self, barrier, thread: ActiveThread) -> None:
        generation = barrier.generation
        key = (barrier.label, generation, thread.tid)
        if key in self._arrived:
            self.report(
                "MC002",
                f"{barrier.label}: {thread.name} arrived twice in "
                f"generation {generation}",
            )
        self._arrived.add(key)
        full = barrier.waiting + 1 == barrier.parties
        earlier = barrier.waiters

        def check_full() -> None:
            if barrier.generation != generation + 1:
                self.report(
                    "MC002",
                    f"{barrier.label}: full arrival left the generation at "
                    f"{barrier.generation}, expected {generation + 1}",
                )
            if barrier.waiting != 0:
                self.report(
                    "MC002",
                    f"{barrier.label}: full arrival left "
                    f"{barrier.waiting} part(ies) still waiting",
                )
            for waiter in earlier:
                if waiter.state not in _AWAKE:
                    self.report(
                        "MC002",
                        f"{barrier.label}: full arrival left {waiter.name} "
                        f"{waiter.state.value} in generation {generation}",
                    )

        def check_partial() -> None:
            if barrier.generation != generation:
                self.report(
                    "MC002",
                    f"{barrier.label}: partial arrival moved the generation "
                    f"to {barrier.generation}",
                )
            if thread not in barrier.waiters:
                self.report(
                    "MC002",
                    f"{barrier.label}: {thread.name} arrived but was not "
                    "queued",
                )

        self._pending.append(check_full if full else check_partial)

    def on_interval_end(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        self._flush()

    def finish(self) -> None:
        self._flush()


#: builds the shadow scheme; tests substitute a buggy scheme here
SchemeFactory = Callable[..., PriorityScheme]


class PriorityUpdateChecker(PropertyChecker):
    """The section-4 O(d) priority-update contract (``MC004``)."""

    def __init__(self, scheme_factory: Optional[SchemeFactory] = None) -> None:
        super().__init__()
        self.scheme_factory: SchemeFactory = scheme_factory or LFFScheme
        self.scheme: Optional[PriorityScheme] = None

    def bind(self, runtime) -> None:
        super().bind(runtime)
        num_lines = runtime.machine.config.l2_lines
        self.scheme = self.scheme_factory(
            SharedStateModel(num_lines),
            runtime.graph,
            runtime.machine.config.num_cpus,
            tables=_tables(num_lines),
        )

    def on_dispatched(self, cpu: int, thread: ActiveThread) -> None:
        assert self.scheme is not None
        self.scheme.on_dispatch(cpu, thread.tid)

    def on_interval_end(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        assert self.scheme is not None
        scheme = self.scheme
        entries = scheme.entries(cpu)
        before = {
            tid: (entry.priority, entry.version)
            for tid, entry in entries.items()
        }
        dependents = {dst for dst, _q in scheme.graph.dependents(thread.tid)}
        degree = len(dependents)
        touched = scheme.on_block(cpu, thread.tid, misses)
        if touched != 1 + degree:
            self.report(
                "MC004",
                f"priority update for {thread.name} touched {touched} "
                f"entr(ies), expected 1 + d = {1 + degree}",
            )
        allowed = {thread.tid} | dependents
        changed = sorted(
            tid
            for tid, entry in entries.items()
            if before.get(tid) != (entry.priority, entry.version)
        )
        illegal = [tid for tid in changed if tid not in allowed]
        if illegal:
            self.report(
                "MC004",
                f"priority update for {thread.name} changed entries of "
                f"independent thread(s) {illegal} (allowed: "
                f"{sorted(allowed)})",
            )
        if finished:
            scheme.forget(thread.tid)

    def finish(self) -> None:
        pass


def default_checkers(
    scheme_factory: Optional[SchemeFactory] = None,
) -> List[PropertyChecker]:
    """The checker set attached to every exploration run."""
    return [SyncOrderChecker(), PriorityUpdateChecker(scheme_factory)]
