"""Human-readable rendering of exploration and model-check results."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.mc.explorer import ExplorationResult
from repro.analysis.mc.model_check import ModelCheckStats
from repro.sim.report import format_table


def format_explorations(results: Sequence[ExplorationResult]) -> str:
    """The per-fixture exploration summary table."""
    rows = []
    for r in results:
        rows.append(
            (
                r.fixture,
                r.mode,
                "dpor" if r.dpor else "exhaustive",
                r.runs,
                r.pruned,
                r.nodes,
                r.max_depth,
                len(r.signatures),
                "yes" if r.complete else "NO",
            )
        )
    return format_table(
        (
            "fixture",
            "mode",
            "search",
            "runs",
            "pruned",
            "nodes",
            "depth",
            "results",
            "complete",
        ),
        rows,
        title="schedule exploration",
    )


def format_model_check(stats: Optional[ModelCheckStats]) -> str:
    """One line summarising the symbolic sweep."""
    if stats is None:
        return "cache-model verification: skipped"
    verdict = "all hold" if stats.failures == 0 else f"{stats.failures} FAIL"
    return (
        f"cache-model verification: {stats.checks} checks over "
        f"{stats.configs} (N, S, q) configurations -- {verdict}"
    )


def format_mc_report(
    results: Sequence[ExplorationResult],
    stats: Optional[ModelCheckStats],
    diagnostics: Sequence[Diagnostic],
) -> str:
    """Full ``repro mc`` output: tables, then findings (if any)."""
    parts: List[str] = [format_explorations(results), ""]
    parts.append(format_model_check(stats))
    parts.append("")
    if diagnostics:
        parts.append(f"-- {len(diagnostics)} finding(s):")
        parts.extend(d.render() for d in diagnostics)
    else:
        parts.append("-- no findings: every explored interleaving agrees")
    return "\n".join(parts)
