"""Stateless-search DPOR exploration over the controlled runtime.

The explorer owns a persistent DFS path of :class:`ChoiceNode` objects
and repeatedly re-executes a fixture from scratch (stateless search):
each run replays the decisions recorded on the path and extends it with
defaults once it walks off the end.  After a run, dynamic partial-order
reduction inspects the trace -- for every pair of conflicting slices
executed by different threads, the earlier choice point gets the later
thread queued as a backtrack alternative -- and the path backtracks to
the deepest node with pending alternatives.  Interval-granularity sleep
sets (see :mod:`.controller`) additionally abandon provably redundant
runs, which are counted as *pruned* rather than explored.

With ``dpor=False`` the explorer queues every sibling at every choice
point instead: a plain exhaustive enumeration.  Tests use it as ground
truth -- on the small fixtures, DPOR must reach exactly the same set of
final signatures with (many) fewer runs.

Every completed run feeds three verdicts:

- the fixture's :meth:`~.fixtures.MCFixture.signature` must be
  bit-identical across all interleavings, and across annotation-chaos
  reruns (``MC003``);
- a deadlock is legal only if the static lock-order pass predicts a
  cycle *and* the runtime found an ownership cycle (else ``MC001``);
- property checkers report FIFO-handoff / barrier / priority-update
  violations (``MC002`` / ``MC004``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.locks import scan_workload_class
from repro.analysis.mc.controller import (
    PICK,
    PREEMPT,
    ChoiceNode,
    ControlledScheduler,
    DecisionCursor,
    DepthExceeded,
    PrunedRun,
    ScheduleController,
    TracePoint,
)
from repro.analysis.mc.fixtures import FIXTURES, MCFixture
from repro.analysis.mc.properties import PropertyChecker, default_checkers
from repro.machine.configs import SMALL
from repro.machine.smp import Machine
from repro.parallel import (
    ClusterConfig,
    ProgressFn,
    ResultCache,
    Shard,
    merged_values,
    run_shards,
)
from repro.threads.errors import DeadlockError, StepBudgetExceeded
from repro.threads.runtime import Runtime


@dataclass(frozen=True)
class MCBudget:
    """Bounds on one exploration (runs, events, decisions, preemptions)."""

    name: str
    #: executions (explored + pruned) before giving up
    max_runs: int
    #: per-run event cap (guards against livelocking fixtures)
    max_events_per_run: int
    #: per-run decision-depth cap
    max_decisions: int
    #: CHESS-style bound on *forced* preemptions per run; 0 explores all
    #: schedules reachable through blocking/yield boundaries only
    preemption_bound: int


SMALL_BUDGET = MCBudget("small", 4000, 5000, 400, 0)
FULL_BUDGET = MCBudget("full", 20000, 20000, 1000, 1)

BUDGETS: Dict[str, MCBudget] = {b.name: b for b in (SMALL_BUDGET, FULL_BUDGET)}


class AnnotationChaos:
    """A deterministic, schedule-independent bad-annotation injector.

    Rewrites every ``at_share`` edge into two wrong ones (inverted
    coefficient plus a fabricated reverse edge).  Because the rewrite
    depends only on the edge itself -- never on time, randomness, or
    scheduling history -- re-exploring under it keeps runs replayable,
    and the paper's claim requires the final signatures to match the
    clean exploration bit for bit.
    """

    def attach(self, runtime: Runtime) -> None:
        pass

    def wrap_view(self, cpu_id: int, view: Any) -> Any:
        return view

    def transform_share(
        self, src: int, dst: int, q: float
    ) -> List[Tuple[int, int, float]]:
        return [(src, dst, round(1.0 - q, 6)), (dst, src, 0.5)]

    def before_step(self, cpu: int, thread: Any) -> None:
        return None


@dataclass
class ExplorationResult:
    """Everything one exploration of one fixture established."""

    fixture: str
    mode: str  # "clean" or "chaos"
    dpor: bool
    preemption_bound: int
    runs: int = 0
    pruned: int = 0
    truncated: int = 0
    nodes: int = 0
    max_depth: int = 0
    #: the DFS tree was exhausted within budget with no truncated runs
    complete: bool = False
    #: distinct final signatures, sorted by repr
    signatures: List[Tuple[Any, ...]] = field(default_factory=list)
    #: (predicted, message) per distinct deadlock reached
    deadlocks: List[Tuple[bool, str]] = field(default_factory=list)
    #: deduplicated (code, message) checker violations
    violations: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.fixture}/{self.mode}"

    def diagnostics(self) -> List[Diagnostic]:
        source = f"mc({self.label})"
        found = [
            Diagnostic(code=code, message=message, source=source)
            for code, message in self.violations
        ]
        for predicted, message in self.deadlocks:
            if not predicted:
                found.append(
                    Diagnostic(code="MC001", message=message, source=source)
                )
        if len(self.signatures) > 1:
            shown = ", ".join(repr(s) for s in self.signatures[:3])
            found.append(
                Diagnostic(
                    code="MC003",
                    message=(
                        f"{len(self.signatures)} distinct final results "
                        f"across {self.runs} interleavings: {shown}"
                    ),
                    source=source,
                )
            )
        found.sort(key=lambda d: d.sort_key)
        return found


def _dpor_update(trace: List[TracePoint]) -> None:
    """Queue backtrack alternatives for every conflicting slice pair.

    Conservative Flanagan--Godefroid: rather than only the *last*
    dependent transition, every earlier choice point whose slice
    conflicts with a later thread's slice gets that thread queued (or,
    if it was not enabled there, all enabled siblings).  Over-queueing
    costs runs, never coverage.
    """
    for j, pj in enumerate(trace):
        if pj.tid is None:
            continue
        for i in range(j):
            pi = trace[i]
            node = pi.node
            if node is None or pi.tid is None or pi.tid == pj.tid:
                continue
            if not pi.slice.conflicts(pj.slice):
                continue
            if node.kind == PICK:
                if pj.tid in node.enabled:
                    node.queue(pj.tid)
                else:
                    for tid in node.enabled:
                        node.queue(tid)
            elif node.kind == PREEMPT:
                node.queue(True)


def _backtrack(path: List[ChoiceNode]) -> bool:
    """Advance the deepest node with pending alternatives; pop the rest.

    Returns False when the whole tree is exhausted.
    """
    while path:
        node = path[-1]
        node.explored[node.taken] = node.last_slice
        if node.todo:
            node.taken = node.todo.pop(0)
            node.last_slice = None
            return True
        path.pop()
    return False


#: builds a fresh workload instance for each re-execution
FixtureFactory = Callable[[], MCFixture]


def explore(
    factory: FixtureFactory,
    budget: MCBudget = SMALL_BUDGET,
    *,
    dpor: bool = True,
    mode: str = "clean",
    fixture_name: Optional[str] = None,
    checkers_factory: Callable[[], Sequence[PropertyChecker]] = default_checkers,
    injector_factory: Optional[Callable[[], Any]] = None,
    predicted_cycles: Optional[bool] = None,
) -> ExplorationResult:
    """Exhaustively explore one fixture's interleavings within budget."""
    probe = factory()
    name = fixture_name or probe.name
    if predicted_cycles is None:
        graph, _rel = scan_workload_class(type(probe))
        predicted_cycles = bool(graph.cycles())

    result = ExplorationResult(
        fixture=name,
        mode=mode,
        dpor=dpor,
        preemption_bound=budget.preemption_bound,
    )
    path: List[ChoiceNode] = []
    signatures: Dict[str, Tuple[Any, ...]] = {}
    deadlocks: Set[Tuple[bool, str]] = set()
    violations: Set[Tuple[str, str]] = set()

    while result.runs + result.pruned < budget.max_runs:
        prefix_len = len(path)
        workload = factory()
        machine = Machine(SMALL.with_cpus(1), seed=0)
        controller = ScheduleController(
            DecisionCursor(path, dpor),
            checkers=checkers_factory(),
            preemption_bound=budget.preemption_bound,
            max_decisions=budget.max_decisions,
        )
        scheduler = ControlledScheduler(controller)
        injector = injector_factory() if injector_factory is not None else None
        runtime = Runtime(
            machine, scheduler, injector=injector, controller=controller
        )
        runtime.add_observer(controller)
        workload.build(runtime)

        outcome = "ok"
        deadlock: Optional[DeadlockError] = None
        try:
            runtime.run(max_events=budget.max_events_per_run)
        except PrunedRun:
            outcome = "pruned"
        except DeadlockError as exc:
            outcome = "deadlock"
            deadlock = exc
        except (StepBudgetExceeded, DepthExceeded):
            outcome = "truncated"
        controller.finalize()
        violations.update(controller.violations)
        result.nodes += len(path) - prefix_len
        result.max_depth = max(result.max_depth, len(controller.trace))

        if outcome == "pruned":
            result.pruned += 1
        else:
            result.runs += 1
            if outcome == "ok":
                sig = workload.signature()
                signatures.setdefault(repr(sig), sig)
            elif outcome == "deadlock":
                assert deadlock is not None
                predicted = predicted_cycles and deadlock.cycle is not None
                deadlocks.add((bool(predicted), str(deadlock)))
            else:
                result.truncated += 1
            if dpor:
                _dpor_update(controller.trace)

        if not _backtrack(path):
            result.complete = result.truncated == 0
            break

    result.signatures = [signatures[key] for key in sorted(signatures)]
    result.deadlocks = sorted(deadlocks)
    result.violations = sorted(violations)
    return result


def explore_fixture(
    name: str,
    budget: MCBudget = SMALL_BUDGET,
    *,
    dpor: bool = True,
    chaos: bool = True,
    registry: Optional[Dict[str, FixtureFactory]] = None,
) -> Tuple[List[ExplorationResult], List[Diagnostic]]:
    """Explore one registered fixture clean and (optionally) under
    annotation chaos; cross-check the two signature sets."""
    table = registry if registry is not None else FIXTURES
    if name not in table:
        raise KeyError(
            f"unknown mc fixture {name!r}; known: {sorted(table)}"
        )
    factory = table[name]
    results = [explore(factory, budget, dpor=dpor, fixture_name=name)]
    if chaos:
        results.append(
            explore(
                factory,
                budget,
                dpor=dpor,
                mode="chaos",
                fixture_name=name,
                injector_factory=AnnotationChaos,
            )
        )
    diagnostics: List[Diagnostic] = []
    for result in results:
        diagnostics.extend(result.diagnostics())
    if chaos and results[0].signatures != results[1].signatures:
        diagnostics.append(
            Diagnostic(
                code="MC003",
                message=(
                    "bad annotations changed the reachable results: "
                    f"clean={results[0].signatures!r} vs "
                    f"chaos={results[1].signatures!r}"
                ),
                source=f"mc({name})",
            )
        )
    diagnostics.sort(key=lambda d: d.sort_key)
    return results, diagnostics


def _fixture_shard(
    name: str, budget: MCBudget, dpor: bool, chaos: bool
) -> Tuple[List[ExplorationResult], List[Diagnostic]]:
    """Worker entry point: one registered fixture, clean + chaos."""
    return explore_fixture(name, budget, dpor=dpor, chaos=chaos)


def explore_all(
    budget: MCBudget = SMALL_BUDGET,
    *,
    fixtures: Optional[Sequence[str]] = None,
    dpor: bool = True,
    chaos: bool = True,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    backend: str = "local",
    cache: Optional[ResultCache] = None,
    cluster: Optional[ClusterConfig] = None,
) -> Tuple[List[ExplorationResult], List[Diagnostic]]:
    """Explore every (or the named) registered fixture.

    Each fixture's exploration is an independent pure function of
    (fixture name, budget, dpor, chaos), so with ``jobs > 1`` fixtures
    run on a :mod:`repro.parallel` process pool; the merge re-sorts by
    fixture order and the final report is bit-identical to ``jobs=1``.
    ``backend="cluster"`` ships fixtures to dispatch worker nodes and
    ``cache`` skips fixtures whose fingerprinted exploration is already
    on disk (docs/PARALLEL.md) -- neither can change the report.
    """
    names = list(fixtures) if fixtures else sorted(FIXTURES)
    shards = [
        Shard(
            index=i,
            key=f"mc/{name}",
            fn="repro.analysis.mc.explorer:_fixture_shard",
            params={
                "name": name, "budget": budget, "dpor": dpor, "chaos": chaos,
            },
        )
        for i, name in enumerate(names)
    ]
    outcomes = run_shards(
        shards, jobs=jobs, progress=progress,
        backend=backend, cache=cache, cluster=cluster,
    )
    results: List[ExplorationResult] = []
    diagnostics: List[Diagnostic] = []
    for sub_results, sub_diags in merged_values(outcomes):
        results.extend(sub_results)
        diagnostics.extend(sub_diags)
    diagnostics.sort(key=lambda d: d.sort_key)
    return results, diagnostics
