"""``repro-lint``: the determinism pass over the simulator's own source.

Every result in this repository rests on one property: a (workload,
config, policy, seed) tuple replays bit-identically.  The fault campaign
asserts it dynamically; this pass guards the three ways Python code
quietly breaks it:

- ``DT001`` an unseeded ``np.random.default_rng()`` -- fresh OS entropy
  per run;
- ``DT002`` ``default_rng(<literal>)`` buried inside an implementation:
  deterministic, but the seed is invisible to callers and cannot be
  varied per run -- plumb it as a parameter (the satellite fixes for
  ``machine/vm.py`` and ``workloads/photo.py`` are the model);
- ``DT003`` wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now`` ...) feeding host timing into simulated results;
- ``DT004`` iteration over a value of set type in places where order can
  leak into scheduling or results (``for x in some_set``, or feeding a
  set to ``np.fromiter``); ``sorted(...)`` launders.
- ``DT005`` iteration over a dict keyed by ``id(...)``: insertion order
  follows memory layout, so ``for k in d`` / ``d.items()`` over such a
  dict can leak address-space nondeterminism into scheduling or results.
  Keyed *lookups* (``seen[id(t)]``) are fine; only iteration fires.
- ``DT006`` a raw timer read (``time.perf_counter()`` and friends)
  inside a subsystem that owns an *audited clock*, anywhere other than
  that clock module.  The bench harness must read time only through
  ``repro/bench/clock.py`` (:func:`repro.bench.clock.perf_clock`), and
  the dispatch layer -- which legitimately needs wall time for
  liveness deadlines, never for results -- only through
  ``repro/parallel/dispatch/clock.py``; one reader per subsystem is
  what lets tests substitute a fake clock.  Outside those subsystems
  the same reads stay ``DT003``.
- ``DT007`` raw iteration over a node registry's ``.nodes`` mapping
  (``for n in registry.nodes`` / ``.items()`` / ``.values()``) inside
  the dispatch layer: insertion order is *registration* order, which
  is a race between connecting workers and differs run to run.  Use
  the registry's sorted accessors (``sorted_nodes()``/``idle_nodes()``)
  or ``sorted(...)``, which launders.

Suppress a finding by appending ``# repro-lint: ignore`` to its line.

This is a linear AST lint with a per-function view of local names
assigned from set-valued expressions; it does not do interprocedural
inference, so it is tuned to catch the honest mistakes (set literals,
``set()`` builders, set algebra) with near-zero noise rather than every
theoretical ordering leak.
"""

from __future__ import annotations

import ast
import os
from typing import List, Optional, Set

from repro.analysis.diagnostics import Diagnostic

#: default lint targets, relative to the package root's parent (``src``)
DEFAULT_TARGETS = (
    "repro/sched",
    "repro/sim",
    "repro/machine",
    "repro/threads",
    "repro/bench",
    "repro/parallel",
    # the repair engine rewrites shipped source and regenerates the
    # baseline, so its own determinism is load-bearing
    "repro/analysis/repair.py",
    "repro/analysis/astmap.py",
    # the static sharing inference feeds the baseline gate and the
    # repair bridge: byte-stable output is part of its contract
    "repro/analysis/staticshare",
    "repro/analysis/sources.py",
)

SUPPRESS_MARK = "repro-lint: ignore"

#: the audited clock modules: the only files of their subsystems allowed
#: to read the host clock (everything else must call through them)
AUDITED_TIMER_FILES = (
    "repro/bench/clock.py",
    "repro/parallel/dispatch/clock.py",
)

#: subsystems with an audited clock: raw timer reads there are DT006
_AUDITED_SUBSYSTEMS = (
    ("repro/bench/", "repro.bench.clock.perf_clock"),
    ("repro/parallel/dispatch/",
     "repro.parallel.dispatch.clock.monotonic_clock"),
)

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "clock"),
    ("datetime", "now"),
    ("datetime", "today"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: bare-name timer calls (``from time import perf_counter``); only the
#: distinctive names -- a bare ``time()`` is too generic to flag safely
_WALL_CLOCK_BARE = {"perf_counter", "process_time", "monotonic"}

_SET_LAUNDERERS = {"sorted", "list", "tuple", "min", "max", "sum", "len"}


def _attr_pair(func: ast.AST) -> Optional[tuple]:
    """(base, attr) for calls like ``time.time()`` / ``datetime.now()``."""
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return (base.id, func.attr)
        if isinstance(base, ast.Attribute):
            return (base.attr, func.attr)
    return None


def _is_default_rng(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    if isinstance(func, ast.Attribute):
        return func.attr == "default_rng"
    return False


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class _SetTracker(ast.NodeVisitor):
    """Track, per function scope, which local names hold set values (and
    which hold dicts keyed by ``id(...)``)."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.id_dict_names: Set[str] = set()

    def is_setish(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self.is_setish(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_setish(node.left) or self.is_setish(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        return False

    def is_id_dict(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Dict):
            return any(k is not None and _is_id_call(k) for k in node.keys)
        if isinstance(node, ast.Name):
            return node.id in self.id_dict_names
        return False


class _FileLinter(ast.NodeVisitor):
    def __init__(self, rel_path: str, source_lines: List[str]) -> None:
        self.rel_path = rel_path
        self.source_lines = source_lines
        self.found: List[Diagnostic] = []
        self._trackers: List[_SetTracker] = [_SetTracker()]
        norm = rel_path.replace(os.sep, "/")
        self._audited_clock_api: Optional[str] = None
        for prefix, clock_api in _AUDITED_SUBSYSTEMS:
            if norm.startswith(prefix):
                self._audited_clock_api = clock_api
        self._in_dispatch = norm.startswith("repro/parallel/dispatch/")
        self._audited_timer = norm in AUDITED_TIMER_FILES

    # -- helpers -----------------------------------------------------------

    def _suppressed(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.source_lines):
            return SUPPRESS_MARK in self.source_lines[lineno - 1]
        return False

    def _wall_clock_hit(self, lineno: int, desc: str) -> None:
        """Route a raw timer read to DT003 or DT006 by location.

        Inside a subsystem that owns an audited clock (the bench
        harness, the dispatch layer) the read is legitimate *only* in
        that clock module; elsewhere in the subsystem it is DT006.
        Everywhere else it remains the DT003 host-timing leak.
        """
        if self._audited_clock_api is not None:
            if self._audited_timer:
                return
            self._emit(
                "DT006",
                lineno,
                f"raw timer read {desc} bypasses this subsystem's "
                f"audited clock; route it through "
                f"{self._audited_clock_api}",
            )
            return
        self._emit(
            "DT003",
            lineno,
            f"wall-clock read {desc} leaks host timing "
            "into a deterministic simulation",
        )

    def _emit(self, code: str, lineno: int, message: str) -> None:
        if self._suppressed(lineno):
            return
        self.found.append(
            Diagnostic(
                code=code,
                message=message,
                anchor=f"{self.rel_path}:{lineno}",
                source="repro-lint",
            )
        )

    @property
    def _tracker(self) -> _SetTracker:
        return self._trackers[-1]

    # -- visitors ----------------------------------------------------------

    def visit_FunctionDef(self, node) -> None:
        self._trackers.append(_SetTracker())
        self.generic_visit(node)
        self._trackers.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._tracker.is_setish(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tracker.set_names.add(target.id)
        else:
            # reassignment to a non-set value clears the mark
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tracker.set_names.discard(target.id)
        if self._tracker.is_id_dict(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._tracker.id_dict_names.add(target.id)
        for target in node.targets:
            # d[id(x)] = ... marks d as an id-keyed dict from here on
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and _is_id_call(target.slice)
            ):
                self._tracker.id_dict_names.add(target.value.id)
        self.generic_visit(node)

    def _check_id_dict_iteration(self, iter_node: ast.AST) -> None:
        """DT005 for ``for k in d`` / ``d.items()`` over an id-keyed dict."""
        target = iter_node
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("items", "keys", "values")
        ):
            target = iter_node.func.value
        if self._tracker.is_id_dict(target):
            self._emit(
                "DT005",
                iter_node.lineno,
                "iterating a dict keyed by id(...) follows memory layout, "
                "not a stable order; key by tid or sort explicitly",
            )

    def _check_nodes_iteration(self, iter_node: ast.AST) -> None:
        """DT007 for raw iteration over a ``.nodes`` registry mapping.

        Scoped to the dispatch layer, where ``.nodes`` insertion order
        is worker *registration* order -- a race between connecting
        processes.  ``sorted(x.nodes)`` never fires (the iterated node
        is the ``sorted`` call, not the attribute).
        """
        if not self._in_dispatch:
            return
        target = iter_node
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("items", "keys", "values")
        ):
            target = iter_node.func.value
        if isinstance(target, ast.Attribute) and target.attr == "nodes":
            self._emit(
                "DT007",
                iter_node.lineno,
                "iterating a registry's .nodes mapping follows worker "
                "registration order, which races run to run; use the "
                "sorted accessors (sorted_nodes()/idle_nodes()) or "
                "sorted(...)",
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_default_rng(node):
            if not node.args and not node.keywords:
                self._emit(
                    "DT001",
                    node.lineno,
                    "default_rng() without a seed draws fresh OS entropy "
                    "every run",
                )
            elif node.args and isinstance(node.args[0], ast.Constant):
                self._emit(
                    "DT002",
                    node.lineno,
                    f"default_rng({node.args[0].value!r}) hides the seed "
                    "inside the implementation; plumb it as a parameter",
                )
        pair = _attr_pair(node.func)
        if pair in _WALL_CLOCK:
            self._wall_clock_hit(node.lineno, f"{pair[0]}.{pair[1]}()")
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in _WALL_CLOCK_BARE
        ):
            self._wall_clock_hit(node.lineno, f"{node.func.id}()")
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "fromiter"
            and node.args
            and self._tracker.is_setish(node.args[0])
        ):
            self._emit(
                "DT004",
                node.lineno,
                "np.fromiter over a set captures arbitrary ordering; "
                "wrap the argument in sorted(...)",
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._tracker.is_setish(node.iter):
            self._emit(
                "DT004",
                node.iter.lineno,
                "iteration over a set has arbitrary order; wrap in "
                "sorted(...) if order can reach results or scheduling",
            )
        self._check_id_dict_iteration(node.iter)
        self._check_nodes_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self._tracker.is_setish(node.iter):
            self._emit(
                "DT004",
                node.iter.lineno,
                "comprehension over a set has arbitrary order; wrap in "
                "sorted(...) if order can reach results or scheduling",
            )
        self._check_id_dict_iteration(node.iter)
        self._check_nodes_iteration(node.iter)
        self.generic_visit(node)


def lint_file(path: str, rel_path: str) -> List[Diagnostic]:
    """Lint one Python source file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code="DT000",
                message=f"file does not parse: {exc.msg}",
                anchor=f"{rel_path}:{exc.lineno or 1}",
                source="repro-lint",
            )
        ]
    linter = _FileLinter(rel_path, source.splitlines())
    linter.visit(tree)
    return linter.found


def lint_paths(
    paths: Optional[List[str]] = None, root: Optional[str] = None
) -> List[Diagnostic]:
    """Lint ``paths`` (files or directories) under ``root``.

    ``root`` defaults to the directory containing the ``repro`` package
    (the ``src`` tree), so anchors come out repo-relative.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    targets = list(paths) if paths else list(DEFAULT_TARGETS)
    found: List[Diagnostic] = []
    for target in targets:
        full = target if os.path.isabs(target) else os.path.join(root, target)
        if os.path.isfile(full):
            files = [full]
        else:
            files = sorted(
                os.path.join(dirpath, name)
                for dirpath, _dirs, names in os.walk(full)
                for name in names
                if name.endswith(".py")
            )
        for path in files:
            rel = os.path.relpath(path, root)
            found.extend(lint_file(path, rel))
    found.sort(key=lambda d: d.sort_key)
    return found
