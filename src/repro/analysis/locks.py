"""Lock-order analysis: find wait-for cycles before the runtime does.

PR 1's runtime detects deadlock *after* the fact -- every cpu idle, a
wait-for cycle among blocked threads, a :class:`~repro.threads.errors.
DeadlockError` naming the chain.  This pass finds the same cycles ahead
of time, from two independent sources:

- **static**: a document-order scan of each workload's generator source,
  tracking which mutexes are symbolically held across ``yield Acquire``/
  ``yield Release`` statements.  Classic linter approximation: branches
  are scanned in order, aliasing is by expression text.  Anchored to
  exact ``file:line``.
- **dynamic**: a runtime observer tracking the held-set per thread
  through the real event stream, so orders reached only at run time
  (data-dependent lock choices) are caught too.

Both feed the same :class:`LockGraph`; an edge A -> B means some thread
acquired B while holding A.  A cycle is ``LK001``: two threads following
the two orders can deadlock -- exactly the AB/BA pattern the runtime
only diagnoses once it has already happened.

The dynamic monitor also flags ``LK002`` (a thread *actually blocked*
while holding a mutex -- every such wait extends a potential wait-for
chain) and ``LK003`` (a thread finished still owning a mutex, which
strands every future waiter).
"""

from __future__ import annotations

import ast
import inspect
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sources import SourceRegistry
from repro.threads import events as ev
from repro.threads.thread import ThreadState


class LockGraph:
    """Directed lock-order graph with per-edge anchors."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[str, str], List[str]] = {}

    def add(self, held: str, acquired: str, anchor: Optional[str]) -> None:
        if held == acquired:
            return
        anchors = self._edges.setdefault((held, acquired), [])
        if anchor is not None and anchor not in anchors:
            anchors.append(anchor)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(self._edges)

    def anchors(self, edge: Tuple[str, str]) -> List[str]:
        return list(self._edges.get(edge, ()))

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle, canonicalised and sorted.

        Lock graphs here are tiny (locks per workload, not threads), so a
        simple DFS from each node is plenty.
        """
        adjacency: Dict[str, List[str]] = {}
        for src, dst in self.edges():
            adjacency.setdefault(src, []).append(dst)
        found: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt == start:
                        # canonical rotation: start the cycle at its
                        # smallest node so each cycle is reported once
                        pivot = path.index(min(path))
                        canon = tuple(path[pivot:] + path[:pivot])
                        found.add(canon)
                    elif nxt not in path and nxt > start:
                        # only walk nodes above the start: every cycle is
                        # still found from its smallest member
                        stack.append((nxt, path + [nxt]))
        return [list(c) for c in sorted(found)]

    def cycle_diagnostics(self, source: str) -> List[Diagnostic]:
        found = []
        for cycle in self.cycles():
            hops = " -> ".join(cycle + [cycle[0]])
            anchors: List[str] = []
            for i, node in enumerate(cycle):
                edge = (node, cycle[(i + 1) % len(cycle)])
                anchors.extend(self.anchors(edge))
            found.append(
                Diagnostic(
                    code="LK001",
                    message=f"lock-order cycle: {hops}",
                    anchor=anchors[0] if anchors else None,
                    source=source,
                )
            )
        return found


# -- dynamic pass ----------------------------------------------------------


class LockOrderMonitor:
    """Observer building the lock-order graph from the live event stream."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.graph = LockGraph()
        self._held: Dict[int, List] = {}  # tid -> mutexes, acquisition order
        self._blocking: List[Tuple[str, str, str]] = []
        runtime.add_observer(self)

    def on_event(self, cpu, thread, event) -> None:
        held = self._held.setdefault(thread.tid, [])
        if isinstance(event, ev.Acquire):
            for mutex in held:
                self.graph.add(mutex.label, event.mutex.label, None)
            if event.mutex not in held:
                # held from here even if the acquire blocks: direct
                # handoff makes this thread the owner when it resumes
                held.append(event.mutex)
            if event.mutex.owner is not None and event.mutex.owner is not thread:
                self._note_blocking(thread, held[:-1], event.mutex.label)
        elif isinstance(event, ev.Release):
            if event.mutex in held:
                held.remove(event.mutex)
        elif isinstance(event, ev.CondWait):
            # the wait atomically releases event.mutex and reacquires it
            # before resuming, so only *other* held locks are suspect
            others = [m for m in held if m is not event.mutex]
            self._note_blocking(thread, others, event.condition.label)
        elif isinstance(event, ev.SemWait):
            if event.semaphore.count == 0:
                self._note_blocking(thread, held, event.semaphore.label)
        elif isinstance(event, ev.BarrierWait):
            if event.barrier.waiting + 1 < event.barrier.parties:
                self._note_blocking(thread, held, event.barrier.label)
        elif isinstance(event, ev.Join):
            target = self.runtime.threads.get(event.tid)
            if target is not None and target.alive:
                self._note_blocking(thread, held, f"join({target.name})")
        elif isinstance(event, ev.Sleep):
            self._note_blocking(thread, held, "sleep")

    def _note_blocking(self, thread, held, what: str) -> None:
        for mutex in held:
            self._blocking.append((thread.name, mutex.label, what))

    def on_block(self, cpu, thread, misses, finished) -> None:
        if finished:
            # keep entries for finish-time diagnosis in diagnose()
            return

    def on_dispatch(self, cpu, thread) -> None:
        pass

    def on_touch(self, cpu, thread, result) -> None:
        pass

    def on_state_declared(self, tid, vlines) -> None:
        pass

    def diagnose(self, source: str) -> List[Diagnostic]:
        found = self.graph.cycle_diagnostics(source)
        seen: Set[Tuple[str, str, str]] = set()
        for name, mutex, what in self._blocking:
            key = (name, mutex, what)
            if key in seen:
                continue
            seen.add(key)
            found.append(
                Diagnostic(
                    code="LK002",
                    message=(
                        f"{name} blocked on {what} while holding {mutex}"
                    ),
                    source=source,
                )
            )
        for tid in sorted(self._held):
            thread = self.runtime.threads.get(tid)
            if thread is None or thread.state is not ThreadState.DONE:
                continue
            for mutex in self._held[tid]:
                found.append(
                    Diagnostic(
                        code="LK003",
                        message=(
                            f"{thread.name} finished still holding "
                            f"{mutex.label}"
                        ),
                        source=source,
                    )
                )
        return found


# -- static pass -----------------------------------------------------------

#: event constructors whose call means "this statement can block"
_BLOCKING_CALLS = {"SemWait", "BarrierWait", "CondWait", "Join", "Sleep"}


def _call_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _yields_in_order(func: ast.AST) -> List[ast.Yield]:
    """Every ``yield`` in document order (linear-scan approximation)."""
    found: List[ast.Yield] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Yield):
                found.append(child)
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                walk(child)

    walk(func)
    return found


def scan_source(tree: ast.AST, path: str) -> LockGraph:
    """Static lock-order graph for one module's generator functions.

    Mutexes are identified by expression text (``self.alloc_mutex``), the
    standard symbolic-alias approximation; acquisition state is tracked
    across yields in document order.
    """
    graph = LockGraph()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        held: List[Tuple[str, int]] = []
        for yielded in _yields_in_order(node):
            value = yielded.value
            name = _call_name(value) if value is not None else None
            if name == "Acquire" and value.args:
                target = ast.unparse(value.args[0])
                anchor = f"{path}:{value.lineno}"
                for held_name, _line in held:
                    graph.add(held_name, target, anchor)
                if target not in [h for h, _ in held]:
                    held.append((target, value.lineno))
            elif name == "Release" and value.args:
                target = ast.unparse(value.args[0])
                held = [(h, line) for h, line in held if h != target]
    return graph


def scan_workload_class(
    workload_cls, registry: Optional[SourceRegistry] = None
) -> Tuple[LockGraph, str]:
    """Static scan of the module defining ``workload_cls``.

    Returns the graph and the repo-relative path used in anchors.
    ``registry`` shares the module's parse with the other analysis
    passes (astmap, staticshare); without one a throwaway registry is
    used, preserving the one-shot behaviour.
    """
    source_file = inspect.getsourcefile(workload_cls)
    if registry is None:
        registry = SourceRegistry()
    tree = registry.tree(source_file)
    marker = "repro/"
    idx = source_file.rfind(marker)
    rel = source_file[idx:] if idx >= 0 else source_file
    return scan_source(tree, rel), rel
