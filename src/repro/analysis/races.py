"""Happens-before race sanitizer over the simulated event stream.

Threads in this runtime share one address space; a *race* is a pair of
accesses to the same cache line, at least one a write, by two threads
with no happens-before ordering between them.  Races cannot corrupt this
simulator (touches are atomic events), but in the program being modelled
they are exactly the accesses whose outcome depends on the schedule --
and they are invisible to the fault campaign, which only perturbs hints.

Classic vector-clock construction (FastTrack-style epochs):

- each thread carries a vector clock, incremented at every release-like
  operation;
- sync edges join clocks: mutex release -> (next) acquire, including the
  runtime's direct handoff; semaphore post -> wait (posts accumulate in
  a per-semaphore pool); barrier: the last arrival joins every party;
  condition signal/broadcast -> the woken waiters; ``at_create`` parent
  -> child (via the runtime's ``on_create`` hook); thread finish -> join.
- per line, the last write is kept as an epoch ``(tid, clock)`` plus a
  read map; a touch that is concurrent with the stored epoch under the
  toucher's clock is a race.

Races are aggregated per (region, thread pair) -- one ``RS001`` with a
line count, not one per line, so a false-sharing pattern over a row
reads as one finding.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.threads import events as ev

Clock = Dict[int, int]


def _join(into: Clock, other: Clock) -> None:
    for tid, tick in other.items():
        if into.get(tid, 0) < tick:
            into[tid] = tick


class RaceSanitizer:
    """Observer flagging unsynchronized conflicting line accesses."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self._clocks: Dict[int, Clock] = {}
        #: mutex id -> clock at last release
        self._mutex_release: Dict[int, Clock] = {}
        #: semaphore id -> accumulated post clock pool
        self._sem_pool: Dict[int, Clock] = {}
        #: barrier id -> accumulated arrival clock pool
        self._barrier_pool: Dict[int, Clock] = {}
        #: tid -> final clock at finish (for late joins)
        self._final: Dict[int, Clock] = {}
        #: line -> (writer tid, writer clock tick)
        self._write_epoch: Dict[int, Tuple[int, int]] = {}
        #: line -> {reader tid -> clock tick}
        self._read_epochs: Dict[int, Dict[int, int]] = {}
        #: (name_a, name_b, kind) -> raced lines
        self._races: Dict[Tuple[str, str, str], Set[int]] = {}
        #: write flag of the Touch event about to be reported to on_touch
        #: (AccessResult does not carry it; on_event sees the event first)
        self._pending_write = False
        runtime.add_observer(self)

    # -- clock plumbing ----------------------------------------------------

    def _clock(self, tid: int) -> Clock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
        return clock

    def _tick(self, tid: int) -> None:
        clock = self._clock(tid)
        clock[tid] = clock.get(tid, 0) + 1

    # -- observer hooks ----------------------------------------------------

    def on_create(self, parent, thread) -> None:
        child = self._clock(thread.tid)
        if parent is not None:
            _join(child, self._clock(parent.tid))
            self._tick(parent.tid)

    def on_event(self, cpu, thread, event) -> None:
        tid = thread.tid
        clock = self._clock(tid)
        if isinstance(event, ev.Touch):
            self._pending_write = event.write
        elif isinstance(event, ev.Acquire):
            if event.mutex.owner is None:
                released = self._mutex_release.get(id(event.mutex))
                if released is not None:
                    _join(clock, released)
            # else: ordered at handoff time, inside the Release branch
        elif isinstance(event, ev.Release):
            self._mutex_release[id(event.mutex)] = dict(clock)
            self._tick(tid)
            waiters = getattr(event.mutex, "_waiters", None)
            if waiters:
                _join(self._clock(waiters[0].tid), clock)
        elif isinstance(event, ev.SemPost):
            waiters = getattr(event.semaphore, "_waiters", None)
            if waiters:
                _join(self._clock(waiters[0].tid), clock)
            else:
                pool = self._sem_pool.setdefault(id(event.semaphore), {})
                _join(pool, clock)
            self._tick(tid)
        elif isinstance(event, ev.SemWait):
            if event.semaphore.count > 0:
                pool = self._sem_pool.get(id(event.semaphore))
                if pool is not None:
                    _join(clock, pool)
        elif isinstance(event, ev.BarrierWait):
            pool = self._barrier_pool.setdefault(id(event.barrier), {})
            _join(pool, clock)
            if event.barrier.waiting + 1 >= event.barrier.parties:
                for waiter in event.barrier._waiters:
                    _join(self._clock(waiter.tid), pool)
                _join(clock, pool)
                del self._barrier_pool[id(event.barrier)]
            self._tick(tid)
        elif isinstance(event, ev.CondWait):
            # atomically releases the mutex: same edges as Release
            self._mutex_release[id(event.mutex)] = dict(clock)
            self._tick(tid)
            waiters = getattr(event.mutex, "_waiters", None)
            if waiters:
                _join(self._clock(waiters[0].tid), clock)
        elif isinstance(event, (ev.CondSignal, ev.CondBroadcast)):
            woken = list(getattr(event.condition, "_waiters", ()))
            if isinstance(event, ev.CondSignal):
                woken = woken[:1]
            for waiter in woken:
                _join(self._clock(waiter.tid), clock)
            self._tick(tid)
        elif isinstance(event, ev.Join):
            final = self._final.get(event.tid)
            if final is not None:
                _join(clock, final)

    def on_block(self, cpu, thread, misses, finished) -> None:
        if finished:
            clock = self._clock(thread.tid)
            self._final[thread.tid] = dict(clock)
            # joiners are still queued here; _finish wakes them after
            for joiner in thread.joiners:
                _join(self._clock(joiner.tid), clock)

    def on_dispatch(self, cpu, thread) -> None:
        pass

    def on_state_declared(self, tid, vlines) -> None:
        pass

    def on_touch(self, cpu, thread, result) -> None:
        lines = self.runtime.last_touch_lines
        if lines is None:
            return
        tid = thread.tid
        clock = self._clock(tid)
        write = self._pending_write
        own_tick = clock.get(tid, 0)
        for line in lines.tolist():
            epoch = self._write_epoch.get(line)
            if epoch is not None and epoch[0] != tid:
                writer, tick = epoch
                if tick > clock.get(writer, 0):
                    kind = "write-write" if write else "write-read"
                    self._record(writer, tid, kind, line)
            if write:
                readers = self._read_epochs.get(line)
                if readers:
                    for reader, tick in readers.items():
                        if reader != tid and tick > clock.get(reader, 0):
                            self._record(reader, tid, "read-write", line)
                    readers.clear()
                self._write_epoch[line] = (tid, own_tick)
            else:
                self._read_epochs.setdefault(line, {})[tid] = own_tick

    # -- reporting ---------------------------------------------------------

    def _record(self, tid_a: int, tid_b: int, kind: str, line: int) -> None:
        name_a = self._thread_name(tid_a)
        name_b = self._thread_name(tid_b)
        if name_b < name_a:
            name_a, name_b = name_b, name_a
        self._races.setdefault((name_a, name_b, kind), set()).add(line)

    def _thread_name(self, tid: int) -> str:
        thread = self.runtime.threads.get(tid)
        return thread.name if thread is not None else f"tid-{tid}"

    def _region_of(self, line: int) -> str:
        for region in self.runtime.machine.address_space.regions():
            if region.first_line <= line <= region.last_line:
                return region.name
        return "?"

    def diagnose(self, source: str) -> List[Diagnostic]:
        found: List[Diagnostic] = []
        merged: Dict[Tuple[str, str, str, str], Set[int]] = {}
        for (name_a, name_b, kind), lines in self._races.items():
            by_region: Dict[str, Set[int]] = {}
            for line in lines:
                by_region.setdefault(self._region_of(line), set()).add(line)
            for region, region_lines in by_region.items():
                merged.setdefault(
                    (region, name_a, name_b, kind), set()
                ).update(region_lines)
        for (region, name_a, name_b, kind) in sorted(merged):
            lines = merged[(region, name_a, name_b, kind)]
            found.append(
                Diagnostic(
                    code="RS001",
                    message=(
                        f"{kind} race between {name_a} and {name_b} on "
                        f"{len(lines)} line(s) of region {region} "
                        f"(no happens-before ordering)"
                    ),
                    source=source,
                )
            )
        return found
