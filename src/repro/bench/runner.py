"""Run benchmarks and suites; the result model the JSON schema mirrors.

``run_suite`` is what ``repro bench run`` calls; :func:`measure` is the
audited timing entry point for ad-hoc benchmark scripts (the
``benchmarks/bench_*.py`` pytest files) that need the raw value of the
function they time as well as the harness statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.bench.clock import Clock, perf_clock
from repro.bench.registry import Benchmark, get_benchmark, suite_benchmarks
from repro.bench.stats import RepeatPolicy, Stats, collect
from repro.parallel import (
    ClusterConfig,
    Shard,
    ShardOutcome,
    merged_values,
    run_shards,
)

T = TypeVar("T")

#: default policy used when neither benchmark nor caller overrides it
DEFAULT_POLICY = RepeatPolicy()


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's outcome: timing summary plus derived rates."""

    name: str
    ops: int
    stats: Stats
    #: raw per-call counter readings the benchmark reported
    counters: Mapping[str, float]

    @property
    def ops_per_s(self) -> float:
        """Work units per second at the median sample."""
        if self.stats.median_s <= 0.0:
            return 0.0
        return self.ops / self.stats.median_s

    @property
    def counter_rates(self) -> Dict[str, float]:
        """Counter-derived rates (e.g. simulated misses/sec) at the
        median sample."""
        median = self.stats.median_s
        if median <= 0.0:
            return {k: 0.0 for k in self.counters}
        return {k: v / median for k, v in self.counters.items()}


@dataclass(frozen=True)
class SuiteResult:
    """All results of one suite run."""

    suite: str
    results: Tuple[BenchResult, ...]

    def by_name(self) -> Dict[str, BenchResult]:
        """name -> result map (names are unique per suite)."""
        return {r.name: r for r in self.results}


def run_benchmark(
    bench: Benchmark,
    clock: Clock = perf_clock,
    policy: Optional[RepeatPolicy] = None,
) -> BenchResult:
    """Set up and sample one registered benchmark."""
    fn = bench.factory()
    effective = policy or bench.policy or DEFAULT_POLICY
    stats, counters = collect(fn, clock, effective)
    return BenchResult(
        name=bench.name, ops=bench.ops, stats=stats, counters=counters
    )


def _bench_shard(
    name: str, policy: Optional[RepeatPolicy]
) -> BenchResult:
    """Worker entry point: one registered benchmark, audited clock.

    Each shard times through :data:`~repro.bench.clock.perf_clock` in
    its own process, so wall-clock numbers are comparable only within a
    shard -- which is all the harness ever does (medians and spreads
    are per-benchmark, never cross-benchmark).
    """
    return run_benchmark(get_benchmark(name), policy=policy)


def run_suite(
    suite: str,
    clock: Clock = perf_clock,
    policy: Optional[RepeatPolicy] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    backend: str = "local",
    cluster: Optional[ClusterConfig] = None,
) -> SuiteResult:
    """Run every benchmark of ``suite``; KeyError when the suite is
    empty/unknown.

    With ``jobs > 1`` benchmarks run on a :mod:`repro.parallel` process
    pool, one shard per benchmark, merged back into registry order.
    ``backend="cluster"`` sends each shard to a dispatch worker node
    instead; benchmarks never use the result cache -- a cached timing
    would report the machine state of a past run.  Parallel workers
    always time through the audited ``perf_clock``, so a custom
    ``clock`` (the tests' fake clocks) forces the serial path; note
    that co-scheduled benchmarks can contend for cores, so gating
    comparisons should keep using serial runs on loaded machines.
    """
    benches = suite_benchmarks(suite)
    if not benches:
        raise KeyError(f"unknown or empty suite {suite!r}")
    if jobs > 1 and clock is perf_clock:
        shards = [
            Shard(
                index=i,
                key=f"bench/{bench.name}",
                fn="repro.bench.runner:_bench_shard",
                params={"name": bench.name, "policy": policy},
            )
            for i, bench in enumerate(benches)
        ]

        def _progress(outcome: ShardOutcome, done: int, total: int) -> None:
            if progress is not None:
                progress(outcome.shard.key.split("/", 1)[1])

        outcomes = run_shards(
            shards, jobs=jobs, progress=_progress,
            backend=backend, cluster=cluster,
        )
        return SuiteResult(suite=suite, results=tuple(merged_values(outcomes)))
    results = []
    for bench in benches:
        if progress is not None:
            progress(bench.name)
        results.append(run_benchmark(bench, clock=clock, policy=policy))
    return SuiteResult(suite=suite, results=tuple(results))


def measure(
    name: str,
    fn: Callable[[], T],
    ops: int = 1,
    counters: Optional[Callable[[T], Mapping[str, float]]] = None,
    clock: Clock = perf_clock,
    policy: Optional[RepeatPolicy] = None,
) -> Tuple[T, BenchResult]:
    """Time an ad-hoc callable through the audited harness path.

    Returns ``(last value fn returned, BenchResult)``.  ``counters``
    optionally maps that value to counter readings to attach.  This is
    what the ``benchmarks/`` pytest scripts use so their timing and JSON
    output go through the same plumbing as registered suites.
    """
    holder: Dict[str, Any] = {}

    def timed() -> Optional[Mapping[str, float]]:
        value = fn()
        holder["value"] = value
        return counters(value) if counters is not None else None

    stats, reported = collect(timed, clock, policy or DEFAULT_POLICY)
    value: T = holder["value"]
    return value, BenchResult(
        name=name, ops=ops, stats=stats, counters=reported
    )


def format_suite(result: SuiteResult) -> str:
    """Human-readable table of one suite run (the CLI's stdout)."""
    header = (
        f"{'benchmark':<28} {'median':>10} {'p10':>10} {'p90':>10} "
        f"{'reps':>5} {'ops/s':>12}  counters/s"
    )
    lines = [f"suite: {result.suite}", header, "-" * len(header)]
    for r in result.results:
        rates = ", ".join(
            f"{k}={v:,.0f}" for k, v in sorted(r.counter_rates.items())
        )
        lines.append(
            f"{r.name:<28} {_fmt_s(r.stats.median_s):>10} "
            f"{_fmt_s(r.stats.p10_s):>10} {_fmt_s(r.stats.p90_s):>10} "
            f"{r.stats.repeats:>5} {r.ops_per_s:>12,.0f}  {rates}"
        )
    return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
