"""Sample collection and summary statistics for the benchmark harness.

The harness's timing model is deliberately simple and fully
deterministic given a clock: a benchmark callable is invoked for
``warmup`` untimed iterations, then timed repeatedly under a
:class:`RepeatPolicy` until the run is *steady* (the relative spread of
the trailing window falls under a tolerance), the time budget is spent,
or the repeat cap is reached.  Medians and percentile spreads -- not
means -- summarise the samples, because benchmark noise is one-sided:
preemptions and cache warm-up only ever make a sample slower.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.bench.clock import Clock

#: A benchmark callable: runs one unit of work, optionally returning
#: counter readings (e.g. simulated misses) to attach to the result.
BenchFn = Callable[[], Optional[Mapping[str, float]]]


@dataclass(frozen=True)
class RepeatPolicy:
    """Warmup/repeat/steady-state plumbing for one benchmark."""

    #: untimed shake-out iterations before sampling starts
    warmup: int = 1
    #: never report fewer than this many timed samples
    min_repeats: int = 5
    #: hard cap on timed samples
    max_repeats: int = 50
    #: stop sampling once this much wall time has been spent (only after
    #: ``min_repeats``; a slow benchmark still gets its minimum samples)
    time_budget_s: float = 2.0
    #: trailing window inspected by the steady-state detector
    steady_window: int = 5
    #: the run is steady when the window's (p90-p10)/median falls below
    #: this; 0 disables early exit
    steady_rel_spread: float = 0.10

    def __post_init__(self) -> None:
        if self.min_repeats < 1 or self.max_repeats < self.min_repeats:
            raise ValueError("need 1 <= min_repeats <= max_repeats")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")
        if self.steady_window < 2:
            raise ValueError("steady_window must be at least 2")


#: single-shot policy for benchmarks that are themselves long campaigns
ONCE = RepeatPolicy(
    warmup=0, min_repeats=1, max_repeats=1, time_budget_s=0.0
)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a non-empty
    sample list; deterministic, no numpy dependency in the harness."""
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def relative_spread(samples: Sequence[float]) -> Optional[float]:
    """(p90 - p10) / median -- the harness's noise measure (0 for a
    perfectly quiet run; ~0.1 means +-5% around the median).

    Returns ``None`` when the median is not positive: a run whose
    samples are all (near) zero has no meaningful relative noise, and
    reporting 0 would make it look perfectly quiet -- which let the
    steady-state detector fire instantly and ``compare`` pass
    vacuously.  Callers must treat ``None`` as "inconclusive", never as
    "quiet"."""
    median = percentile(samples, 50.0)
    if median <= 0.0:
        return None
    return (percentile(samples, 90.0) - percentile(samples, 10.0)) / median


@dataclass(frozen=True)
class Stats:
    """Summary of one benchmark's timed samples (seconds)."""

    repeats: int
    median_s: float
    p10_s: float
    p90_s: float
    mean_s: float
    stddev_s: float
    min_s: float
    max_s: float
    total_s: float
    #: True when sampling stopped because the steady-state detector
    #: fired (as opposed to exhausting the budget or the repeat cap)
    steady: bool

    @property
    def rel_spread(self) -> Optional[float]:
        """(p90 - p10) / median; the noise term compare() widens by.

        ``None`` when the median is not positive -- see
        :func:`relative_spread`; compare() treats such runs as
        inconclusive rather than noiseless."""
        if self.median_s <= 0.0:
            return None
        return (self.p90_s - self.p10_s) / self.median_s


def summarize(samples: Sequence[float], steady: bool = False) -> Stats:
    """Reduce timed samples to a :class:`Stats`."""
    if not samples:
        raise ValueError("cannot summarise zero samples")
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    return Stats(
        repeats=n,
        median_s=percentile(samples, 50.0),
        p10_s=percentile(samples, 10.0),
        p90_s=percentile(samples, 90.0),
        mean_s=mean,
        stddev_s=math.sqrt(var),
        min_s=min(samples),
        max_s=max(samples),
        total_s=sum(samples),
        steady=steady,
    )


def collect(
    fn: BenchFn, clock: Clock, policy: RepeatPolicy
) -> Tuple[Stats, Mapping[str, float]]:
    """Run ``fn`` under ``policy``, timing with ``clock``.

    Returns the sample summary plus the counters the *last* timed call
    reported (counters are per-call quantities; the harness derives
    rates from them against the median sample).
    """
    for _ in range(policy.warmup):
        fn()
    samples: List[float] = []
    counters: Mapping[str, float] = {}
    spent = 0.0
    steady = False
    while len(samples) < policy.max_repeats:
        start = clock()
        reported = fn()
        elapsed = clock() - start
        if elapsed < 0.0:
            raise ValueError("clock went backwards during a sample")
        samples.append(elapsed)
        spent += elapsed
        if reported is not None:
            counters = reported
        if len(samples) < policy.min_repeats:
            continue
        window = samples[-policy.steady_window:]
        if policy.steady_rel_spread > 0.0 and len(window) >= policy.steady_window:
            spread = relative_spread(window)
            # an all-zero window has no measurable spread: keep sampling
            # instead of declaring an instant (vacuous) steady state
            if spread is not None and spread <= policy.steady_rel_spread:
                steady = True
                break
        if spent >= policy.time_budget_s:
            break
    return summarize(samples, steady=steady), dict(counters)
