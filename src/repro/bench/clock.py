"""The harness's single audited wall-clock access point.

Every timing measurement in this repository flows through
:func:`perf_clock` (or a substitute passed where a :data:`Clock` is
accepted -- the unit tests inject deterministic fake clocks).  The
``repro lint`` determinism pass enforces this with ``DT006``: a raw
``time.time()`` / ``time.perf_counter()`` call anywhere else in the
benchmark harness is a finding, and wall-clock reads inside the
simulator proper remain ``DT003`` findings.  Concentrating the raw read
here keeps the timing policy auditable in one place (monotonic,
high-resolution, immune to system clock steps) and keeps host time out
of simulated results everywhere else.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock is any zero-argument callable returning seconds as a float.
#: It must be monotonic non-decreasing; nothing else is assumed.
Clock = Callable[[], float]


def perf_clock() -> float:
    """Read the host's monotonic high-resolution timer.

    This is the only raw timer read the determinism lint permits
    (``DT006`` audits the rest of the harness; ``DT003`` the simulator).
    """
    return time.perf_counter()
