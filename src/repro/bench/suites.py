"""The registered benchmark suites.

Three standing suites:

- ``smoke`` -- the CI perf gate: every hot path plus a closed-form model
  evaluation, tuned to finish well under a minute on a shared runner;
- ``hotpaths`` -- the optimisation-tracking set covering the three paths
  every experiment sits on: the per-reference cache loop
  (``machine/cache.py`` / ``machine/vm.py`` / ``machine/smp.py``), the
  scheduler priority-update path (``sched/heap.py`` /
  ``sched/locality.py``), and the runtime stepping loop
  (``threads/runtime.py`` driven by ``sim/driver.py``);
- ``engine`` -- the event-driven engine (``sim/events.py``) on the
  sparse ``server`` workload it exists for, with the stepped engine's
  run of the same fixture as the reference; the engine-to-engine
  speedup itself is gated by ``benchmarks/bench_engine_event.py``;
- ``analytic`` -- the analytic reuse-distance backend
  (``machine/analytic.py``) against the replay hierarchy on the
  sweep-scale fixture; the backend-to-backend speedup is gated by
  ``benchmarks/bench_analytic_sweep.py``.

Benchmarks report *simulated* counters (refs, misses, events, context
switches) so the JSON carries counter-derived rates -- e.g. simulated
misses per wall second, the figure of merit for a cache simulator -- not
just wall time.

Everything here is deterministic: address streams are precomputed with
seeded generators in the factory (untimed), and the timed callables run
pure simulation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.bench.registry import register
from repro.bench.stats import BenchFn, RepeatPolicy

# Geometry for the standalone cache benchmarks: the paper's 512 KB
# E-cache with 64-byte lines (8192 lines), batches of 256 lines.
_CACHE_BYTES = 512 * 1024
_LINE_BYTES = 64
_NUM_LINES = _CACHE_BYTES // _LINE_BYTES
_BATCH = 256


def _sweep_batches(num_batches: int, stride: int) -> List[np.ndarray]:
    """Distinct-index batches sliding through 1.5x the cache."""
    span = _NUM_LINES + _NUM_LINES // 2
    return [
        (np.arange(_BATCH, dtype=np.int64) + i * stride) % span
        for i in range(num_batches)
    ]


@register(
    "cache_direct_sweep", suites=("smoke", "hotpaths"), ops=48 * _BATCH
)
def cache_direct_sweep() -> BenchFn:
    """Direct-mapped E-cache, vectorised path: distinct-index batches."""
    from repro.machine.cache import DirectMappedCache

    cache = DirectMappedCache(_CACHE_BYTES, _LINE_BYTES)
    batches = _sweep_batches(48, stride=199)
    stats = cache.stats

    def run() -> Mapping[str, float]:
        refs0, miss0 = stats.refs, stats.misses
        for batch in batches:
            cache.access(batch)
        return {
            "refs": float(stats.refs - refs0),
            "sim_misses": float(stats.misses - miss0),
        }

    return run


@register(
    "cache_direct_collide", suites=("smoke", "hotpaths"), ops=16 * _BATCH
)
def cache_direct_collide() -> BenchFn:
    """Direct-mapped E-cache, serial path: intra-batch index collisions."""
    from repro.machine.cache import DirectMappedCache

    cache = DirectMappedCache(_CACHE_BYTES, _LINE_BYTES)
    rng = np.random.default_rng(7)  # fixed stream is the point; repro-lint: ignore
    batches = []
    for _ in range(16):
        base = rng.integers(0, _NUM_LINES, size=_BATCH // 2, dtype=np.int64)
        # the second half aliases the first half's indices with new tags,
        # forcing the ordered scalar loop
        batches.append(np.concatenate([base, base + _NUM_LINES]))
    stats = cache.stats

    def run() -> Mapping[str, float]:
        refs0, miss0 = stats.refs, stats.misses
        for batch in batches:
            cache.access(batch)
        return {
            "refs": float(stats.refs - refs0),
            "sim_misses": float(stats.misses - miss0),
        }

    return run


@register(
    "cache_assoc_access", suites=("smoke", "hotpaths"), ops=24 * _BATCH
)
def cache_assoc_access() -> BenchFn:
    """4-way LRU set-associative cache (the model-extension simulator)."""
    from repro.machine.cache import SetAssociativeCache

    cache = SetAssociativeCache(64 * 1024, _LINE_BYTES, ways=4)
    num_lines = cache.num_lines
    rng = np.random.default_rng(11)  # fixed stream is the point; repro-lint: ignore
    batches = [
        rng.integers(0, 2 * num_lines, size=_BATCH, dtype=np.int64)
        for _ in range(24)
    ]
    stats = cache.stats

    def run() -> Mapping[str, float]:
        refs0, miss0 = stats.refs, stats.misses
        for batch in batches:
            cache.access(batch)
        return {
            "refs": float(stats.refs - refs0),
            "sim_misses": float(stats.misses - miss0),
        }

    return run


@register("vm_translate", suites=("hotpaths",), ops=64 * _BATCH)
def vm_translate() -> BenchFn:
    """Virtual-to-physical line translation over multi-page batches."""
    from repro.machine.vm import VirtualMemory

    vm = VirtualMemory(_CACHE_BYTES)
    rng = np.random.default_rng(13)  # fixed stream is the point; repro-lint: ignore
    span_lines = 4 * _NUM_LINES
    single_page = [
        (int(rng.integers(0, span_lines // 32)) * 32)
        + np.arange(_BATCH // 8, dtype=np.int64) % 32
        for _ in range(32)
    ]
    multi_page = [
        rng.integers(0, span_lines, size=_BATCH, dtype=np.int64)
        for _ in range(32)
    ]

    def run() -> Mapping[str, float]:
        faults0 = vm.page_faults
        for batch in single_page:
            vm.translate_lines(batch)
        for batch in multi_page:
            vm.translate_lines(batch)
        return {"page_faults": float(vm.page_faults - faults0)}

    return run


@register("heap_churn", suites=("smoke", "hotpaths"), ops=2 * 256)
def heap_churn() -> BenchFn:
    """Priority-heap push/pop churn with lazy-deletion validation.

    Models the per-context-switch heap work: push a population of READY
    threads with deterministic priorities, then pop them all back out
    through the validity filter.
    """
    from repro.sched.heap import PriorityHeap
    from repro.threads.thread import ActiveThread

    def _body():  # pragma: no cover - never advanced
        yield None

    threads = [ActiveThread(tid, _body()) for tid in range(1, 257)]
    priorities = [float((tid * 2654435761) % 4096) for tid in range(1, 257)]
    heap = PriorityHeap()

    def version(_thread: ActiveThread) -> Optional[int]:
        return 0

    def run() -> Mapping[str, float]:
        ops0 = heap.pushes + heap.pops
        for thread, priority in zip(threads, priorities):
            heap.push(thread, priority, 0)
        while True:
            entry, _pops = heap.pop_valid(version)
            if entry is None:
                break
        return {"heap_ops": float(heap.pushes + heap.pops - ops0)}

    return run


@register("sched_priority_update", suites=("smoke", "hotpaths"))
def sched_priority_update() -> BenchFn:
    """End-to-end LFF run dominated by the O(d) priority-update path.

    Runs the smoke-scale tasks workload (dependency-annotated, many
    context switches) under LFF on the SMALL machine; context switches
    per second is the figure of merit for the update path.
    """
    from repro.faults.campaign import campaign_workloads
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.sched import SCHEDULERS
    from repro.threads.runtime import Runtime

    factory = campaign_workloads("smoke")["tasks"]

    def run() -> Mapping[str, float]:
        machine = Machine(SMALL, seed=0)
        scheduler = SCHEDULERS["lff"]()
        runtime = Runtime(machine, scheduler)
        factory().build(runtime)
        runtime.run()
        heap_ops = sum(h.pushes + h.pops for h in scheduler.heaps)
        return {
            "context_switches": float(runtime.context_switches),
            "events": float(runtime.events_executed),
            "heap_ops": float(heap_ops),
            "sim_misses": float(machine.total_l2_misses()),
        }

    return run


@register("runtime_step_loop", suites=("smoke", "hotpaths"))
def runtime_step_loop() -> BenchFn:
    """The discrete-event stepping loop, tracing off (no observers).

    Builds and runs the smoke-scale random-walk workload under bare FCFS
    on the SMALL machine each call -- the per-event interpreter cost
    every performance experiment pays; simulated events and misses per
    wall second are the counters to watch.
    """
    from repro.faults.campaign import campaign_workloads
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.sched.fcfs import FCFSScheduler
    from repro.threads.runtime import Runtime

    factory = campaign_workloads("smoke")["randomwalk"]

    def run() -> Mapping[str, float]:
        machine = Machine(SMALL, seed=0)
        runtime = Runtime(machine, FCFSScheduler())
        factory().build(runtime)
        runtime.run()
        return {
            "events": float(runtime.events_executed),
            "sim_misses": float(machine.total_l2_misses()),
            "cycles": float(machine.time()),
        }

    return run


def _sparse_engine_run(engine: str) -> BenchFn:
    """One full ``server`` run on 32 cpus under LFF, either engine.

    The ``bench_engine_event`` fixture: ~96% of simulated cpu-cycles are
    idle, so the stepped loop's cost is dominated by one-tick idle
    iterations while the event engine jumps straight between wakeups.
    Counters are bit-identical across engines (the parity suite proves
    it); ``loop_steps``/``virtual_steps`` show where the win comes from.
    """
    from repro.machine.configs import SMALL
    from repro.machine.smp import Machine
    from repro.sched import SCHEDULERS
    from repro.threads.runtime import Runtime
    from repro.workloads.server import ServerWorkload

    config = SMALL.with_cpus(32)

    def run() -> Mapping[str, float]:
        machine = Machine(config, seed=0)
        runtime = Runtime(machine, SCHEDULERS["lff"](), engine=engine)
        ServerWorkload().build(runtime)
        runtime.run()
        return {
            "events": float(runtime.events_executed),
            "loop_steps": float(runtime.loop_steps),
            "virtual_steps": float(runtime.virtual_steps),
            "timer_wakeups": float(runtime.timer_wakeups),
            "sim_misses": float(machine.total_l2_misses()),
            "cycles": float(machine.time()),
        }

    return run


@register("engine_event_sparse", suites=("engine", "hotpaths"))
def engine_event_sparse() -> BenchFn:
    """Event engine on the sparse server fixture (the fast path)."""
    return _sparse_engine_run("event")


@register(
    "engine_stepped_sparse",
    suites=("engine",),
    policy=RepeatPolicy(
        warmup=0, min_repeats=2, max_repeats=3, time_budget_s=8.0
    ),
)
def engine_stepped_sparse() -> BenchFn:
    """Stepped engine on the same fixture (the reference cost).

    Seconds per call, not milliseconds -- the whole point -- so the
    repeat policy samples it just enough for a stable median.
    """
    return _sparse_engine_run("stepped")


@register("analyze_static", suites=("hotpaths",))
def analyze_static() -> BenchFn:
    """The static sharing inference over every shipped workload.

    Parses, scans, and infers the predicted ``at_share`` graph for the
    four paper workloads from a cold :class:`SourceRegistry` each call --
    the pure-static arm of ``repro analyze --static`` (no instrumented
    run), which CI pays on every push.  Predicted edges per wall second
    is the counter to watch; ``parses`` guards the parse-dedup property.
    """
    from repro.analysis.engine import _lint_workloads
    from repro.analysis.sources import SourceRegistry
    from repro.analysis.staticshare import predict_workload

    factories = _lint_workloads()

    def run() -> Mapping[str, float]:
        registry = SourceRegistry()
        edges = 0
        for name in sorted(factories):
            prediction = predict_workload(
                type(factories[name]()), name, registry=registry
            )
            assert prediction is not None
            edges += len(prediction.edges)
        return {
            "edges": float(edges),
            "parses": float(registry.parse_count),
        }

    return run


def analytic_sweep_cells():
    """The sweep-scale fixture cells for the analytic-backend benches.

    Chosen so the per-*reference* work dominates the per-*event* work:
    large touch batches (2-8 thousand lines) on an 8-cpu machine are
    where the replay backend pays per-miss Python dict work in the
    coherence directory while the analytic backend stays vectorised --
    the regime sweeps at the paper's 1024-thread scale live in.  The
    merge/tsp cells are deliberately small: they are event-bound, so
    they bound how much Amdahl overhead the total-speedup gate carries.

    Shared by the ``analytic`` suite arms below and by the speedup gate
    in ``benchmarks/bench_analytic_sweep.py`` -- one fixture, one truth.
    """
    from repro.workloads.mergesort import MergeWorkload
    from repro.workloads.params import (
        MergeParams,
        PhotoParams,
        TasksParams,
        TspParams,
    )
    from repro.workloads.photo import PhotoWorkload
    from repro.workloads.randomwalk import RandomWalkWorkload
    from repro.workloads.tasks import TasksWorkload
    from repro.workloads.tsp import TspWorkload

    return [
        (
            "randomwalk",
            lambda: RandomWalkWorkload(
                total_touches=262_144,
                batch=4096,
                sleeper_footprints=(1024, 2048, 3072, 4096),
                sleeper_shares=(0.0, 0.25, 0.5, 0.75),
                periods=4,
            ),
        ),
        (
            "tasks",
            lambda: TasksWorkload(
                TasksParams(num_tasks=48, footprint_lines=8192, periods=8)
            ),
        ),
        ("merge", lambda: MergeWorkload(MergeParams(num_elements=4000))),
        (
            "photo",
            lambda: PhotoWorkload(PhotoParams(width=16_384, height=192)),
        ),
        ("tsp", lambda: TspWorkload(TspParams(num_cities=7))),
    ]


def _analytic_sweep_run(backend: str) -> BenchFn:
    """All five sweep cells, one backend, LFF on 8 cpus."""
    from repro.machine.configs import ULTRA1
    from repro.sched import SCHEDULERS
    from repro.sim.driver import run_performance

    config = ULTRA1.with_cpus(8)
    cells = analytic_sweep_cells()

    def run() -> Mapping[str, float]:
        misses = refs = switches = 0
        for _name, factory in cells:
            result = run_performance(
                factory(), config, SCHEDULERS["lff"](),
                seed=0, backend=backend,
            )
            misses += result.l2_misses
            refs += result.l2_refs
            switches += result.context_switches
        return {
            "refs": float(refs),
            "sim_misses": float(misses),
            "context_switches": float(switches),
        }

    return run


#: the sweep arms are seconds-per-call (the sim arm especially), so the
#: repeat policy samples them like the stepped-engine reference bench
_SWEEP_POLICY = RepeatPolicy(
    warmup=0, min_repeats=2, max_repeats=3, time_budget_s=30.0
)


@register("analytic_sweep_analytic", suites=("analytic",),
          policy=_SWEEP_POLICY)
def analytic_sweep_analytic() -> BenchFn:
    """Five-workload policy sweep priced by the analytic backend."""
    return _analytic_sweep_run("analytic")


@register("analytic_sweep_sim", suites=("analytic",), policy=_SWEEP_POLICY)
def analytic_sweep_sim() -> BenchFn:
    """The same sweep through the replay hierarchy (the reference cost).

    The analytic-vs-sim speedup itself is gated by
    ``benchmarks/bench_analytic_sweep.py``; this arm tracks the
    reference cost over time.
    """
    return _analytic_sweep_run("sim")


@register("model_eval", suites=("smoke",), ops=64 * 1024)
def model_eval() -> BenchFn:
    """Closed-form footprint model over vectorised miss counts."""
    from repro.core.model import SharedStateModel

    model = SharedStateModel(_NUM_LINES)
    misses = np.arange(1024, dtype=np.int64) * 16

    def run() -> None:
        for _ in range(64):
            model.expected_running(0.0, misses)
            model.expected_independent(2048.0, misses)
            model.expected_dependent(2048.0, 0.5, misses)
        return None

    return run


def _load() -> Dict[str, str]:
    """Imported for side effects by the registry; nothing to export."""
    return {}
