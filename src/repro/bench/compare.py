"""Diff two suite runs and decide pass/fail (the CI perf gate).

The decision rule, per benchmark present in both runs:

- ``change`` = (new median - base median) / base median;
- ``allowed`` = ``max_regress`` plus, when noise awareness is on, half
  of each run's relative p10-p90 spread -- a benchmark that was noisy
  when the baseline was recorded (or is noisy now) gets proportionally
  more headroom, so shared-runner jitter does not flap the gate;
- the benchmark **regresses** when ``change`` is strictly greater than
  ``allowed`` (equality at the threshold passes -- pinned by the unit
  tests).

A benchmark present in the baseline but missing from the new run is a
failure (coverage silently shrinking must not read as "no regression");
a new benchmark absent from the baseline is reported but never fails.
A benchmark whose median is non-positive on either side is
**inconclusive** and also fails the gate: a zero median means the run
measured nothing, and the old behaviour (change = 0, pass) let a broken
harness sail through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bench.runner import SuiteResult


@dataclass(frozen=True)
class Delta:
    """One benchmark's baseline-vs-new verdict."""

    name: str
    base_median_s: Optional[float]
    new_median_s: Optional[float]
    #: fractional median change (+0.25 = 25% slower); None if missing
    change: Optional[float]
    #: the effective threshold after noise widening; None if missing
    allowed: Optional[float]
    regressed: bool
    #: "", "baseline" or "new" -- which side is missing the benchmark
    missing: str = ""
    #: True when either side's median is non-positive: no meaningful
    #: relative change exists, so the gate cannot pass it vacuously
    inconclusive: bool = False


@dataclass(frozen=True)
class Comparison:
    """The full diff of two suite runs."""

    baseline_suite: str
    new_suite: str
    max_regress: float
    deltas: Tuple[Delta, ...]

    @property
    def regressions(self) -> Tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def inconclusives(self) -> Tuple[Delta, ...]:
        return tuple(d for d in self.deltas if d.inconclusive)

    @property
    def ok(self) -> bool:
        # an inconclusive benchmark (zero median) fails the gate: it used
        # to read as "0% change" and pass no matter how broken the run was
        return not self.regressions and not self.inconclusives


def compare(
    baseline: SuiteResult,
    new: SuiteResult,
    max_regress: float = 0.25,
    noise_aware: bool = True,
) -> Comparison:
    """Compare ``new`` against ``baseline`` at a median-regression
    threshold of ``max_regress`` (a fraction: 0.4 = 40%)."""
    if max_regress < 0.0:
        raise ValueError("max_regress must be non-negative")
    base_by = baseline.by_name()
    new_by = new.by_name()
    deltas: List[Delta] = []
    for name in sorted(set(base_by) | set(new_by)):
        base = base_by.get(name)
        fresh = new_by.get(name)
        if base is None:
            deltas.append(
                Delta(
                    name=name,
                    base_median_s=None,
                    new_median_s=fresh.stats.median_s if fresh else None,
                    change=None,
                    allowed=None,
                    regressed=False,
                    missing="baseline",
                )
            )
            continue
        if fresh is None:
            # coverage shrank: that is itself a gate failure
            deltas.append(
                Delta(
                    name=name,
                    base_median_s=base.stats.median_s,
                    new_median_s=None,
                    change=None,
                    allowed=None,
                    regressed=True,
                    missing="new",
                )
            )
            continue
        base_median = base.stats.median_s
        new_median = fresh.stats.median_s
        if base_median <= 0.0 or new_median <= 0.0:
            # a zero/negative median means the run measured nothing; the
            # old code reported change=0.0 here and passed vacuously
            deltas.append(
                Delta(
                    name=name,
                    base_median_s=base_median,
                    new_median_s=new_median,
                    change=None,
                    allowed=None,
                    regressed=False,
                    inconclusive=True,
                )
            )
            continue
        change = (new_median - base_median) / base_median
        allowed = max_regress
        if noise_aware:
            base_spread = base.stats.rel_spread
            new_spread = fresh.stats.rel_spread
            # medians are positive here, so both spreads are measurable
            assert base_spread is not None and new_spread is not None
            allowed += 0.5 * base_spread
            allowed += 0.5 * new_spread
        deltas.append(
            Delta(
                name=name,
                base_median_s=base_median,
                new_median_s=new_median,
                change=change,
                allowed=allowed,
                regressed=change > allowed,
            )
        )
    return Comparison(
        baseline_suite=baseline.suite,
        new_suite=new.suite,
        max_regress=max_regress,
        deltas=tuple(deltas),
    )


def format_comparison(result: Comparison) -> str:
    """Human-readable diff table (the CLI's stdout for ``compare``)."""
    header = (
        f"{'benchmark':<28} {'baseline':>12} {'new':>12} "
        f"{'change':>9} {'allowed':>9}  verdict"
    )
    lines = [
        f"baseline suite: {result.baseline_suite}  "
        f"(threshold {100.0 * result.max_regress:.0f}%)",
        header,
        "-" * len(header),
    ]
    for d in result.deltas:
        if d.missing == "baseline":
            verdict = "new (no baseline)"
            lines.append(
                f"{d.name:<28} {'-':>12} {_ms(d.new_median_s):>12} "
                f"{'-':>9} {'-':>9}  {verdict}"
            )
            continue
        if d.missing == "new":
            lines.append(
                f"{d.name:<28} {_ms(d.base_median_s):>12} {'-':>12} "
                f"{'-':>9} {'-':>9}  MISSING (fail)"
            )
            continue
        if d.inconclusive:
            lines.append(
                f"{d.name:<28} {_ms(d.base_median_s):>12} "
                f"{_ms(d.new_median_s):>12} "
                f"{'-':>9} {'-':>9}  INCONCLUSIVE (fail)"
            )
            continue
        assert d.change is not None and d.allowed is not None
        verdict = "REGRESSED" if d.regressed else "ok"
        lines.append(
            f"{d.name:<28} {_ms(d.base_median_s):>12} "
            f"{_ms(d.new_median_s):>12} {100.0 * d.change:>+8.1f}% "
            f"{100.0 * d.allowed:>8.1f}%  {verdict}"
        )
    regressions = result.regressions
    inconclusives = result.inconclusives
    summary = (
        f"-- {len(result.deltas)} benchmark(s), "
        f"{len(regressions)} regression(s)"
    )
    if inconclusives:
        summary += f", {len(inconclusives)} inconclusive"
    lines.append(summary)
    return "\n".join(lines)


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.3f}ms"
