"""``repro.bench``: the performance-regression harness.

The repository's correctness story (fault campaign, analysis gate, DPOR
model checker) is matched here by a performance story: a registry of
named benchmarks with warmup/repeat/steady-state plumbing, machine-
readable ``BENCH_<suite>.json`` results, and a noise-aware ``compare``
that CI runs as a gating perf-smoke job.  See ``docs/BENCHMARKS.md``.

All timing flows through :mod:`repro.bench.clock` -- the single audited
wall-clock read, enforced by the ``DT006`` determinism lint.
"""

from repro.bench.clock import Clock, perf_clock
from repro.bench.compare import (
    Comparison,
    Delta,
    compare,
    format_comparison,
)
from repro.bench.registry import (
    Benchmark,
    benchmark_names,
    get_benchmark,
    register,
    suite_benchmarks,
    suite_names,
)
from repro.bench.runner import (
    BenchResult,
    SuiteResult,
    format_suite,
    measure,
    run_benchmark,
    run_suite,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    default_baseline_path,
    load_suite,
    suite_from_dict,
    suite_to_dict,
    write_suite,
)
from repro.bench.stats import (
    ONCE,
    RepeatPolicy,
    Stats,
    collect,
    percentile,
    relative_spread,
    summarize,
)

__all__ = [
    "Benchmark",
    "BenchResult",
    "Clock",
    "Comparison",
    "Delta",
    "ONCE",
    "RepeatPolicy",
    "SCHEMA_VERSION",
    "SchemaError",
    "Stats",
    "SuiteResult",
    "benchmark_names",
    "collect",
    "compare",
    "default_baseline_path",
    "format_comparison",
    "format_suite",
    "get_benchmark",
    "load_suite",
    "measure",
    "percentile",
    "perf_clock",
    "register",
    "relative_spread",
    "run_benchmark",
    "run_suite",
    "suite_benchmarks",
    "suite_from_dict",
    "suite_names",
    "suite_to_dict",
    "summarize",
    "write_suite",
]
