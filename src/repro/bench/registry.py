"""The registry of named benchmarks and suites.

A benchmark is a *factory* returning a timed callable: the factory runs
once per benchmark (setup -- building machines, pre-generating address
streams -- is never timed), the returned callable is what the sampler
times.  Benchmarks declare which suites they belong to; a suite is just
a named selection (``smoke`` is the CI gate, ``hotpaths`` the
optimisation-tracking set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.stats import BenchFn, RepeatPolicy

#: Builds the timed callable; runs once, untimed, before sampling.
BenchFactory = Callable[[], BenchFn]


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark."""

    name: str
    factory: BenchFactory
    suites: Tuple[str, ...]
    #: units of work per timed call (refs, events, ...) -> ops/sec
    ops: int = 1
    #: per-benchmark override of the suite-level repeat policy
    policy: Optional[RepeatPolicy] = None


_REGISTRY: Dict[str, Benchmark] = {}


def register(
    name: str,
    suites: Tuple[str, ...],
    ops: int = 1,
    policy: Optional[RepeatPolicy] = None,
) -> Callable[[BenchFactory], BenchFactory]:
    """Decorator registering ``factory`` as benchmark ``name``."""

    def deco(factory: BenchFactory) -> BenchFactory:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} registered twice")
        if not suites:
            raise ValueError(f"benchmark {name!r} belongs to no suite")
        if ops < 1:
            raise ValueError(f"benchmark {name!r}: ops must be positive")
        _REGISTRY[name] = Benchmark(
            name=name, factory=factory, suites=tuple(suites),
            ops=ops, policy=policy,
        )
        return factory

    return deco


def _ensure_loaded() -> None:
    # suites registers on import; deferred so the registry module itself
    # stays importable from suite definitions without a cycle
    from repro.bench import suites as _suites  # noqa: F401


def benchmark_names() -> List[str]:
    """All registered benchmark names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by name (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[name]


def suite_names() -> List[str]:
    """All suite names any benchmark belongs to, sorted."""
    _ensure_loaded()
    names = {s for b in _REGISTRY.values() for s in b.suites}
    return sorted(names)


def suite_benchmarks(suite: str) -> List[Benchmark]:
    """The benchmarks of one suite, in registration-name order."""
    _ensure_loaded()
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if suite in _REGISTRY[name].suites
    ]
