"""The Active Threads runtime: event interpretation and scheduling loop.

The runtime multiplexes user-level threads over the simulated SMP.  It
owns the thread table, the sharing-annotation graph, the per-cpu
performance-counter views, and the timer queue; the scheduling *policy*
(FCFS, LFF, CRT) is pluggable through :class:`repro.sched.base.Scheduler`.

Execution is a deterministic discrete-event simulation: at each step the
cpu with the smallest cycle clock acts (ties to the lowest cpu id), either
stepping its current thread by one yielded event or dispatching a new one.
Two engines implement that contract with bit-identical counters (see
docs/MODEL.md "The event engine"): the quantum-stepped loop below
(``engine="stepped"``, the default) and the event-driven loop in
:mod:`repro.sim.events` (``engine="event"``), which parks idle cpus and
advances simulated time to the next queued event so blocked and sleeping
threads cost no Python work.  Sleep timers, periodic realtime wakeups,
scheduler ticks and quantum expiries all live in one deterministic
:class:`~repro.sim.events.EventQueue` shared by both engines.
A thread runs until it blocks, yields, sleeps or finishes -- the paper's
scheduling interval -- at which point the runtime performs the paper's
context-switch protocol: read the PICs to get the interval's miss count
``n`` (charging the few-instruction read cost), hand ``n`` to the
scheduler for its O(d) priority updates (charging the reported cost), and
charge the ~100-instruction base context switch [33].

Costs the runtime charges to the simulated clock:

====================  =====================================================
``SYNC_COST``         a lock/semaphore/barrier/condvar operation
``CREATE_COST``       ``at_create`` (thread control block + stack setup)
counter read          ``repro.machine.counters.READ_COST_INSTRUCTIONS``
context switch        ``MachineConfig.context_switch_instructions``
scheduler work        whatever the policy reports per operation
====================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Union

import numpy as np

from repro.core.sharing import SharingGraph
from repro.machine.address import Region
from repro.machine.counters import MissCounterView
from repro.machine.smp import Machine
from repro.threads import events as ev
from repro.threads.errors import (
    DeadlockError,
    StepBudgetExceeded,
    SyncError,
    ThreadError,
    find_wait_cycle,
)
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ActiveThread, ThreadState

#: instruction cost of one synchronisation operation (lock/unlock etc.);
#: "within an order of magnitude of a function call cost" [1]
SYNC_COST = 20
#: instruction cost of at_create (control block, stack registration)
CREATE_COST = 200

Body = Union[Generator, Callable[[], Generator]]

#: sync-carrying event classes -> attributes holding their sync objects;
#: the interpreter registers (auto-names) these before observers see the
#: event, so every observer and error message agrees on the name
#: cap on the per-runtime counter-overflow diagnostic trail; the tally
#: (:attr:`Runtime.counter_overflow_suspects`) is unbounded, only the
#: stored messages are
_MAX_COUNTER_DIAGNOSTICS = 8

_SYNC_EVENT_ATTRS = {
    ev.Acquire: ("mutex",),
    ev.Release: ("mutex",),
    ev.SemWait: ("semaphore",),
    ev.SemPost: ("semaphore",),
    ev.BarrierWait: ("barrier",),
    ev.CondWait: ("condition", "mutex"),
    ev.CondSignal: ("condition",),
    ev.CondBroadcast: ("condition",),
}

#: event class -> interpreter method name, in the same precedence order as
#: the historical isinstance chain (matters only for event *subclasses*,
#: which resolve to the first base they satisfy)
_EVENT_HANDLERS = (
    (ev.Touch, "_exec_touch"),
    (ev.Compute, "_exec_compute"),
    (ev.Fetch, "_exec_fetch"),
    (ev.Acquire, "_exec_acquire"),
    (ev.Release, "_exec_release"),
    (ev.SemWait, "_exec_sem_wait"),
    (ev.SemPost, "_exec_sem_post"),
    (ev.BarrierWait, "_exec_barrier_wait"),
    (ev.CondWait, "_exec_cond_wait"),
    (ev.CondSignal, "_exec_cond_signal"),
    (ev.CondBroadcast, "_exec_cond_broadcast"),
    (ev.Join, "_exec_join"),
    (ev.Yield, "_exec_yield"),
    (ev.Sleep, "_exec_sleep"),
)


class Observer:
    """Measurement hook interface; all methods optional no-ops.

    Observers are measurement-only (the paper's simulator role); the
    scheduler never sees them.
    """

    def on_state_declared(self, tid: int, vlines: np.ndarray) -> None:
        """A thread declared ``vlines`` as part of its state."""

    def on_dispatch(self, cpu: int, thread: ActiveThread) -> None:
        """A thread started a scheduling interval."""

    def on_touch(self, cpu: int, thread: ActiveThread, result) -> None:
        """A touch batch completed (``result`` is the E-cache result)."""

    def on_block(
        self, cpu: int, thread: ActiveThread, misses: int, finished: bool
    ) -> None:
        """A scheduling interval ended with ``misses`` E-cache misses."""

    def on_event(self, cpu: int, thread: ActiveThread, event) -> None:
        """A thread yielded ``event``, about to be interpreted.

        Called before the event mutates any runtime state, so the runtime
        is at a consistent point -- the hook the invariant checker uses.
        """

    def on_create(
        self, parent: Optional[ActiveThread], thread: ActiveThread
    ) -> None:
        """``at_create`` registered ``thread`` (``parent`` is the creating
        thread, or ``None`` when created from outside any thread body).

        The creation edge is a happens-before edge: everything the parent
        did before ``at_create`` is ordered before the child's first step
        -- which is what the race sanitizer consumes this hook for.
        """


class Runtime:
    """Interprets thread bodies against a machine under a scheduler."""

    #: the selectable scheduling-loop engines (CLI: ``--engine``)
    ENGINES = ("stepped", "event")

    def __init__(
        self,
        machine: Machine,
        scheduler,
        injector=None,
        controller=None,
        engine: str = "stepped",
        quantum: Optional[int] = None,
    ) -> None:
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}"
            )
        if quantum is not None and quantum <= 0:
            raise ValueError("quantum must be a positive cycle count")
        self.engine = engine
        #: optional time-slice in cycles: arms a QUANTUM_EXPIRE event at
        #: every dispatch; expiry forces a synthetic Yield (both engines)
        self.quantum = quantum
        self.machine = machine
        self.scheduler = scheduler
        #: optional fault injector (see repro.faults): corrupts the hint
        #: paths (annotations, counter readings) and perturbs threads.
        #: The runtime only relies on its duck-typed hook methods.
        self.injector = injector
        #: optional schedule controller (see repro.analysis.mc): gets a
        #: veto before every body step and may force a preemption there,
        #: turning each step boundary into an explorable choice point.
        #: Duck-typed: only ``should_preempt(cpu, thread) -> bool`` is
        #: required.  Like the injector, it can only *rearrange* legal
        #: schedules -- it cannot make the runtime take an illegal step.
        self.controller = controller
        self.graph = SharingGraph()
        self.threads: Dict[int, ActiveThread] = {}
        self.observers: List[Observer] = []
        #: observers that implement the per-event hook; ad-hoc duck-typed
        #: observers (common in tests) may omit on_event entirely
        self._event_observers: List[Observer] = []
        #: observers implementing the thread-creation hook (same contract)
        self._create_observers: List[Observer] = []
        #: per-hook observer lists, filtered at attach time so the stepping
        #: loop never pays for hooks nobody overrides (tracing off means
        #: these are empty and the hot path skips observer work entirely)
        self._touch_observers: List[Observer] = []
        self._dispatch_observers: List[Observer] = []
        self._block_observers: List[Observer] = []
        self._state_observers: List[Observer] = []
        #: per-kind counters for lazily naming anonymous sync objects; a
        #: per-runtime registry (not a class counter) so auto names -- and
        #: trace signatures built from them -- do not depend on how many
        #: objects earlier runs in the same process created
        self._sync_counters: Dict[str, int] = {}
        self._next_tid = 1
        self._live = 0
        self._current: List[Optional[ActiveThread]] = [None] * machine.config.num_cpus
        self._views = [MissCounterView(cpu.counters) for cpu in machine.cpus]
        if injector is not None:
            injector.attach(self)
            self._views = [
                injector.wrap_view(cpu_id, view)
                for cpu_id, view in enumerate(self._views)
            ]
        # deferred import: repro.sim's package init imports the driver,
        # which imports this module (same idiom as run_hardened)
        from repro.sim import events as sim_events

        #: the deterministic event queue shared by both engines: sleep
        #: timers (THREAD_WAKEUP), periodic realtime wakeups, scheduler
        #: ticks and quantum expiries, ordered by (time, seq, tid)
        self.event_queue = sim_events.EventQueue()
        self._event_kinds = sim_events.EventKind
        self._event_engine = None
        #: per-cpu dispatch generation, bumped on every successful
        #: dispatch; lazily invalidates armed QUANTUM_EXPIRE events
        self._dispatch_gens: List[int] = [0] * machine.config.num_cpus
        self._stepping: Optional[ActiveThread] = None
        self.last_touch_lines: Optional[np.ndarray] = None
        self.context_switches = 0
        self.events_executed = 0
        #: THREAD_WAKEUP timers that actually woke a thread -- event-time
        #: progress, the signal the watchdog's stall detector keys on
        self.timer_wakeups = 0
        #: RT_PERIOD_START early wakeups delivered
        self.early_wakeups = 0
        #: QUANTUM_EXPIRE forced preemptions delivered
        self.preemptions = 0
        #: audited count of full (faithful) scheduling-loop iterations;
        #: the event engine's O(events) complexity claim is asserted on
        #: this counter (tests/sim/test_events.py)
        self.loop_steps = 0
        #: audited count of O(1) virtual idle iterations (event engine)
        self.virtual_steps = 0
        #: bumped whenever a scheduler callback runs (pick, ready,
        #: dispatched, blocked, created); the event engine's cached
        #: idle-pick cost certificates are valid while this is unchanged
        self.sched_epoch = 0
        #: intervals whose PIC deltas looked wrapped (see
        #: :class:`~repro.machine.counters.MissCounterView`); the miss
        #: *value* is still clamped by the scheduler -- this tally is what
        #: keeps the wrap from passing silently
        self.counter_overflow_suspects = 0
        #: bounded trail of overflow-suspect diagnostics (first few)
        self.counter_diagnostics: List[str] = []
        #: event class -> bound interpreter method; subclasses are added
        #: lazily by :meth:`_resolve_handler`
        self._handlers: Dict[type, Callable] = {
            cls: getattr(self, name) for cls, name in _EVENT_HANDLERS
        }
        scheduler.attach(self)

    # -- public API used by thread bodies and workloads ---------------------

    def counter_view(self, cpu: int) -> Optional[MissCounterView]:
        """The per-cpu miss-counter view (or ``None`` for a bad cpu id).

        Schedulers consult this at ``thread_blocked`` time to learn
        whether the interval they were just handed was flagged suspect by
        the view (wrapped deltas, stuck-register glitches, mid-interval
        PCR reprograms) -- the value alone cannot carry that, because the
        view clamps impossible readings into the plausible range before
        the scheduler ever sees them.  Under fault injection the returned
        object is the injector's wrapper, which forwards the suspicion
        flags of the real reads underneath.
        """
        if 0 <= cpu < len(self._views):
            return self._views[cpu]
        return None

    def add_observer(self, observer: Observer) -> None:
        """Attach a measurement observer.

        Each hook the observer actually provides (an override of the
        :class:`Observer` no-op, or any method on a duck-typed observer)
        lands it on that hook's dispatch list; the base-class no-ops are
        never called, so idle hooks cost nothing per event.
        """
        self.observers.append(observer)
        if self._provides(observer, "on_event"):
            self._event_observers.append(observer)
        if self._provides(observer, "on_create"):
            self._create_observers.append(observer)
        if self._provides(observer, "on_touch"):
            self._touch_observers.append(observer)
        if self._provides(observer, "on_dispatch"):
            self._dispatch_observers.append(observer)
        if self._provides(observer, "on_block"):
            self._block_observers.append(observer)
        if self._provides(observer, "on_state_declared"):
            self._state_observers.append(observer)

    @staticmethod
    def _provides(observer: Observer, hook: str) -> bool:
        impl = getattr(type(observer), hook, None)
        if impl is None:
            # duck-typed observer: the hook counts only if the instance
            # carries it (e.g. assigned as an attribute)
            return hasattr(observer, hook)
        return impl is not getattr(Observer, hook, None)

    def register_sync(self, obj) -> None:
        """Assign an anonymous sync object its per-runtime auto name.

        Idempotent; explicit names are never overwritten.  Called by the
        event interpreter on first sight and by analysis observers that
        need a stable name before the interpreter branch runs.
        """
        if obj.name is None:
            count = self._sync_counters.get(obj.kind, 0) + 1
            self._sync_counters[obj.kind] = count
            obj.name = f"{obj.kind}-{count}"

    def alloc(self, name: str, size: int) -> Region:
        """Allocate a named region in the shared address space."""
        return self.machine.address_space.allocate(name, size)

    def alloc_lines(self, name: str, num_lines: int) -> Region:
        """Allocate a region spanning exactly ``num_lines`` cache lines."""
        return self.machine.address_space.allocate_lines(name, num_lines)

    def at_create(self, body: Body, name: Optional[str] = None) -> int:
        """Create a thread; returns its tid.

        ``body`` is a generator, or a zero-argument callable producing one.
        The new thread starts READY; the creating cpu (if any) is charged
        :data:`CREATE_COST` instructions.
        """
        gen = body() if callable(body) else body
        tid = self._next_tid
        self._next_tid += 1
        thread = ActiveThread(tid, gen, name=name)
        thread.ready_at = self.machine.time()
        self.threads[tid] = thread
        self._live += 1
        cpu = self._stepping_cpu()
        if cpu is not None:
            self.machine.compute(cpu, CREATE_COST)
        self.sched_epoch += 1
        self._charge(cpu, self.scheduler.thread_created(thread))
        self._charge(cpu, self.scheduler.thread_ready(thread))
        for observer in self._create_observers:
            observer.on_create(self._stepping, thread)
        return tid

    def at_share(self, src_tid: int, dst_tid: int, q: float) -> None:
        """The paper's annotation: fraction ``q`` of ``src_tid``'s state is
        shared with ``dst_tid``.  A hint only; never affects correctness --
        which is exactly why the fault injector is allowed to drop,
        corrupt, or fabricate these edges."""
        edges = [(src_tid, dst_tid, q)]
        if self.injector is not None:
            edges = self.injector.transform_share(src_tid, dst_tid, q)
        for src, dst, coeff in edges:
            self.graph.share(src, dst, coeff)

    def at_self(self) -> int:
        """Tid of the thread whose body is currently executing."""
        if self._stepping is None:
            raise ThreadError("at_self() called outside a thread body")
        return self._stepping.tid

    def declare_state(
        self, tid: int, regions: Sequence[Region]
    ) -> None:
        """Declare the regions making up a thread's state (ground truth for
        the footprint tracer; the scheduler never sees this)."""
        if not regions:
            return
        vlines = np.concatenate([r.lines() for r in regions])
        for observer in self._state_observers:
            observer.on_state_declared(tid, vlines)

    def thread(self, tid: int) -> ActiveThread:
        """Look up a thread by tid."""
        return self.threads[tid]

    # -- event-queue services (docs/MODEL.md "The event engine") -------------

    def at_periodic(
        self, tid: int, period: int, start: Optional[int] = None
    ) -> None:
        """Mark ``tid`` as a periodic (realtime/server) thread.

        Arms an ``RT_PERIOD_START`` event every ``period`` cycles
        (first at ``start``, default one period from now): if the thread
        is sleeping at a period boundary it is woken early, modelling a
        periodic server loop with deadline-driven wakeups.  The early
        wake bumps ``ready_seq`` so the thread's own pending sleep timer
        is lazily invalidated rather than double-firing.
        """
        if period <= 0:
            raise ValueError("period must be a positive cycle count")
        if tid not in self.threads:
            raise ThreadError(f"at_periodic on unknown tid {tid}")
        first = self.machine.time() + period if start is None else start
        self.event_queue.schedule(
            first, self._event_kinds.RT_PERIOD_START, tid, period
        )

    def schedule_tick(
        self,
        period: int,
        callback: Callable[["Runtime", int], None],
        start: Optional[int] = None,
    ) -> None:
        """Arm a periodic ``SCHED_TICK`` callback.

        ``callback(runtime, fire_time)`` runs every ``period`` cycles of
        simulated time (first at ``start``, default one period from now)
        while any thread is alive -- the hook progress samplers and
        periodic diagnostics ride on.
        """
        if period <= 0:
            raise ValueError("period must be a positive cycle count")
        first = self.machine.time() + period if start is None else start
        self.event_queue.schedule(
            first, self._event_kinds.SCHED_TICK, 0, (callback, period)
        )

    # -- the scheduling loop -------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until every thread finishes (or ``max_events`` is hit).

        Dispatches to the engine selected at construction; the event
        engine instance persists across calls so the watchdog's chunked
        supervision resumes parked state exactly.
        """
        if self.engine == "event":
            engine = self._event_engine
            if engine is None:
                from repro.sim.events import EventEngine

                engine = self._event_engine = EventEngine(self)
            engine.run(max_events)
            return
        cpus = self.machine.cpus
        single = len(cpus) == 1
        current = self._current
        step = self._step
        queue = self.event_queue
        heap = queue.heap  # mutated in place by the queue, never rebound
        while self._live > 0:
            if max_events is not None and self.events_executed >= max_events:
                raise StepBudgetExceeded(max_events)
            self.loop_steps += 1
            cpu = 0 if single else self._min_clock_cpu()
            if heap:
                queue.fire_due(self, cpus[cpu].cycles)
            thread = current[cpu]
            if thread is not None:
                step(cpu, thread)
            else:
                dispatched = self._dispatch(cpu)
                if dispatched is None:
                    self._idle(cpu)

    def _min_clock_cpu(self) -> int:
        cpus = self.machine.cpus
        best = 0
        best_cycles = cpus[0].cycles
        for i in range(1, len(cpus)):
            if cpus[i].cycles < best_cycles:
                best, best_cycles = i, cpus[i].cycles
        return best

    def _fire_due(self, now: int) -> None:
        """Fire queued events due at ``now`` (delegates to the queue)."""
        self.event_queue.fire_due(self, now)

    def _idle(self, cpu: int) -> None:
        """Nothing runnable on an idle cpu: advance its clock or detect
        deadlock/termination."""
        clock = self.machine.cycles(cpu)
        busy = [
            self.machine.cycles(i)
            for i, t in enumerate(self._current)
            if t is not None
        ]
        targets = []
        if busy:
            targets.append(min(busy) + 1)
        heap = self.event_queue.heap
        if heap:
            targets.append(heap[0].time)
        if not targets and self.scheduler.has_runnable():
            # Runnable work exists that this cpu will not take (e.g. a
            # thread too hot to steal); skip ahead of the other cpus so the
            # thread's home cpu becomes the scheduling point and claims it
            # from its own heap.
            targets.append(max(p.cycles for p in self.machine.cpus) + 1)
        if targets:
            self.machine.cpus[cpu].cycles = max(clock + 1, min(targets))
            return
        blocked = [t for t in self.threads.values() if t.alive]
        if blocked:
            raise DeadlockError(blocked, cycle=find_wait_cycle(blocked))
        # _live said someone is alive but nobody is; internal inconsistency
        raise ThreadError("scheduler lost track of live threads")

    # -- dispatch / context switch --------------------------------------------

    def _dispatch(self, cpu: int) -> Optional[ActiveThread]:
        self.sched_epoch += 1
        thread, cost = self.scheduler.pick(cpu)
        self._charge(cpu, cost)
        if thread is None:
            return None
        if thread.state is not ThreadState.READY:
            raise ThreadError(f"scheduler picked non-ready {thread}")
        thread.state = ThreadState.RUNNING
        if thread.ready_at is not None:
            waited = max(0, self.machine.cycles(cpu) - thread.ready_at)
            thread.stats.wait_cycles += waited
            thread.stats.max_wait_cycles = max(
                thread.stats.max_wait_cycles, waited
            )
            thread.ready_at = None
        if thread.last_cpu is not None and thread.last_cpu != cpu:
            thread.stats.migrations += 1
        thread.last_cpu = cpu
        self._current[cpu] = thread
        self._charge(cpu, self.scheduler.thread_dispatched(cpu, thread))
        if self.quantum is not None:
            gen = self._dispatch_gens[cpu] + 1
            self._dispatch_gens[cpu] = gen
            self.event_queue.schedule(
                self.machine.cycles(cpu) + self.quantum,
                self._event_kinds.QUANTUM_EXPIRE,
                thread.tid,
                (cpu, thread, gen),
            )
        for observer in self._dispatch_observers:
            observer.on_dispatch(cpu, thread)
        return thread

    def _end_interval(
        self, cpu: int, thread: ActiveThread, finished: bool
    ) -> None:
        """The paper's context-switch protocol (counter read + O(d) updates
        + base switch cost)."""
        view = self._views[cpu]
        misses = view.interval_misses()
        if view.last_overflow_suspect:
            # a wrapped PIC must never be consumed unnoticed: tally it and
            # keep a bounded diagnostic trail for reports/tests
            self.counter_overflow_suspects += 1
            if len(self.counter_diagnostics) < _MAX_COUNTER_DIAGNOSTICS:
                self.counter_diagnostics.append(
                    f"cpu{cpu} interval for {thread.name}: "
                    f"{view.last_overflow_detail}"
                )
        self.machine.compute(cpu, view.read_cost_instructions)
        thread.stats.intervals += 1
        thread.stats.misses += misses
        self.sched_epoch += 1
        self._charge(
            cpu, self.scheduler.thread_blocked(cpu, thread, misses, finished)
        )
        self.machine.compute(
            cpu, self.machine.config.context_switch_instructions
        )
        self.context_switches += 1
        self._current[cpu] = None
        for observer in self._block_observers:
            observer.on_block(cpu, thread, misses, finished)

    def _finish(self, cpu: int, thread: ActiveThread) -> None:
        self._end_interval(cpu, thread, finished=True)
        thread.state = ThreadState.DONE
        self._live -= 1
        self.graph.remove_thread(thread.tid)
        for joiner in thread.joiners:
            self._wake(joiner)
        thread.joiners.clear()

    def _block(self, cpu: int, thread: ActiveThread) -> None:
        thread.state = ThreadState.BLOCKED
        if self.event_queue.log is not None:
            # blocks are synchronous; THREAD_BLOCK is an audit record in
            # the event log, never a scheduled future event
            self.event_queue.emit(
                self.machine.cycles(cpu),
                self._event_kinds.THREAD_BLOCK,
                thread.tid,
            )
        self._end_interval(cpu, thread, finished=False)

    def _wake(self, thread: ActiveThread) -> None:
        thread.pending_mutex = None
        thread.waiting_on = None
        thread.mark_ready()
        thread.ready_at = self.machine.time()
        self.sched_epoch += 1
        self._charge(self._stepping_cpu(), self.scheduler.thread_ready(thread))

    def _charge(self, cpu: Optional[int], instructions: int) -> None:
        if instructions and cpu is not None:
            self.machine.compute(cpu, instructions)

    def _stepping_cpu(self) -> Optional[int]:
        if self._stepping is None:
            return None
        return self._stepping.last_cpu

    # -- event interpretation ---------------------------------------------------

    def _step(self, cpu: int, thread: ActiveThread) -> None:
        if self.injector is not None:
            # May raise InjectedCrash; "delay" stalls the cpu clock only
            # (never the thread's own accounting), "livelock" pins the
            # thread in a yield spin without advancing its body.
            action = self.injector.before_step(cpu, thread)
            if action is not None:
                kind = action[0] if isinstance(action, tuple) else action
                if kind == "delay":
                    self.machine.compute(cpu, action[1])
                elif kind == "livelock":
                    thread.fault_livelocked = True
        if thread.fault_livelocked:
            self.events_executed += 1
            self._execute(cpu, thread, ev.Yield())
            return
        if self.controller is not None and self.controller.should_preempt(
            cpu, thread
        ):
            # Forced preemption: a synthetic Yield, exactly as if the body
            # had yielded one -- the thread goes READY and the scheduler
            # picks again.  The body generator is NOT advanced.
            self.events_executed += 1
            self._execute(cpu, thread, ev.Yield())
            return
        self._stepping = thread
        try:
            event = next(thread.body)
        except StopIteration:
            self._finish(cpu, thread)
            return
        finally:
            self._stepping = None
        self.events_executed += 1
        self._execute(cpu, thread, event)

    def _execute(self, cpu: int, thread: ActiveThread, event) -> None:
        cls = event.__class__
        sync_attrs = _SYNC_EVENT_ATTRS.get(cls)
        if sync_attrs is not None:
            for attr in sync_attrs:
                self.register_sync(getattr(event, attr))
        for observer in self._event_observers:
            observer.on_event(cpu, thread, event)
        handler = self._handlers.get(cls)
        if handler is None:
            handler = self._resolve_handler(cls)
            if handler is None:
                raise ThreadError(
                    f"{thread} yielded unknown event {event!r}"
                )
        handler(cpu, thread, event)

    def _resolve_handler(self, cls) -> Optional[Callable]:
        """Handler lookup for event *subclasses* (exact classes hit the
        dispatch table directly); the result is memoised."""
        for base, handler in _EVENT_HANDLERS:
            if issubclass(cls, base):
                self._handlers[cls] = getattr(self, handler)
                return self._handlers[cls]
        return None

    def _exec_touch(self, cpu: int, thread: ActiveThread, event) -> None:
        result = self.machine.touch(cpu, event.lines, write=event.write)
        thread.stats.refs += result.refs
        if self._touch_observers:
            #: the virtual lines of the touch being reported to observers
            #: (trace recorders read this; see repro.sim.trace)
            self.last_touch_lines = event.lines
            for observer in self._touch_observers:
                observer.on_touch(cpu, thread, result)
            self.last_touch_lines = None

    def _exec_compute(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, event.instructions)
        thread.stats.instructions += event.instructions

    def _exec_fetch(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.fetch(cpu, event.lines)

    def _exec_acquire(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        if not event.mutex.acquire(thread):
            thread.waiting_on = event.mutex
            self._block(cpu, thread)

    def _exec_release(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        woken = event.mutex.release(thread)
        if woken is not None:
            self._stepping = thread  # charge wake bookkeeping here
            self._wake(woken)
            self._stepping = None

    def _exec_sem_wait(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        if not event.semaphore.wait(thread):
            thread.waiting_on = event.semaphore
            self._block(cpu, thread)

    def _exec_sem_post(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        woken = event.semaphore.post()
        if woken is not None:
            self._stepping = thread
            self._wake(woken)
            self._stepping = None

    def _exec_barrier_wait(
        self, cpu: int, thread: ActiveThread, event
    ) -> None:
        self.machine.compute(cpu, SYNC_COST)
        woken = event.barrier.arrive(thread)
        if woken is None:
            thread.waiting_on = event.barrier
            self._block(cpu, thread)
        else:
            self._stepping = thread
            for other in woken:
                self._wake(other)
            self._stepping = None

    def _exec_cond_wait(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        self._cond_wait(cpu, thread, event)

    def _exec_cond_signal(
        self, cpu: int, thread: ActiveThread, event
    ) -> None:
        self.machine.compute(cpu, SYNC_COST)
        self._stepping = thread
        waiter = event.condition.signal()
        if waiter is not None:
            self._cond_resume(waiter)
        self._stepping = None

    def _exec_cond_broadcast(
        self, cpu: int, thread: ActiveThread, event
    ) -> None:
        self.machine.compute(cpu, SYNC_COST)
        self._stepping = thread
        for waiter in event.condition.broadcast():
            self._cond_resume(waiter)
        self._stepping = None

    def _exec_join(self, cpu: int, thread: ActiveThread, event) -> None:
        self.machine.compute(cpu, SYNC_COST)
        target = self.threads.get(event.tid)
        if target is None:
            raise ThreadError(f"join on unknown tid {event.tid}")
        if target.alive:
            target.joiners.append(thread)
            thread.waiting_on = target
            self._block(cpu, thread)

    def _exec_yield(self, cpu: int, thread: ActiveThread, event) -> None:
        thread.mark_ready()
        thread.ready_at = self.machine.cycles(cpu)
        self._end_interval(cpu, thread, finished=False)
        self._stepping = thread
        self.sched_epoch += 1
        self._charge(cpu, self.scheduler.thread_ready(thread))
        self._stepping = None

    def _exec_sleep(self, cpu: int, thread: ActiveThread, event) -> None:
        thread.state = ThreadState.SLEEPING
        self._end_interval(cpu, thread, finished=False)
        # ready_seq rides along so an early wake (RT_PERIOD_START) lazily
        # invalidates this timer instead of double-waking the thread
        self.event_queue.schedule(
            self.machine.cycles(cpu) + event.cycles,
            self._event_kinds.THREAD_WAKEUP,
            thread.tid,
            (thread, thread.ready_seq),
        )

    def _cond_wait(self, cpu: int, thread: ActiveThread, event: ev.CondWait) -> None:
        if event.mutex.owner is not thread:
            raise SyncError(
                f"{thread} waited on {event.condition.label} without holding "
                f"{event.mutex.label}"
            )
        new_owner = event.mutex.release(thread)
        event.condition.add_waiter(thread)
        thread.pending_mutex = event.mutex
        thread.waiting_on = event.condition
        if new_owner is not None:
            self._stepping = thread
            self._wake(new_owner)
            self._stepping = None
        self._block(cpu, thread)

    def _cond_resume(self, waiter: ActiveThread) -> None:
        """A signalled waiter must reacquire its mutex before running."""
        mutex = waiter.pending_mutex
        if mutex is None:
            raise SyncError(f"signalled {waiter} has no pending mutex")
        if mutex.acquire(waiter):
            self._wake(waiter)
        # else: the waiter sits in the mutex queue; Release will wake it.
