"""Structured-parallelism helpers with automatic sharing annotations.

The paper's system "has been used in the Sather compiler and runtime
system": the compiler emits ``at_share`` calls for its structured
constructs so "important sharing information" need not be hand-written at
every site.  This module is that layer for the reproduction's runtime --
fork/join and parallel-map combinators that create the threads *and*
write the annotations their structure implies:

- :func:`fork_join`: children's state is contained in the parent's
  (the mergesort pattern: ``at_share(child, parent, q)``);
- :func:`parallel_map`: one thread per item, siblings annotated by
  declared overlap;
- :class:`TaskGroup`: imperative spawn/join with the same annotation
  discipline.

Everything here reduces to plain ``at_create``/``at_share``/``Join``
calls; nothing bypasses the scheduler.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional, Sequence

from repro.threads.events import Join
from repro.threads.runtime import Runtime


def fork_join(
    runtime: Runtime,
    bodies: Sequence[Callable[[], Generator]],
    share_with_parent: float = 1.0,
    names: Optional[Sequence[str]] = None,
) -> Generator:
    """Spawn ``bodies`` as children of the calling thread and join them.

    Must be iterated from inside a thread body::

        def parent():
            yield from fork_join(runtime, [left_half, right_half])
            ... merge ...

    Each child gets ``at_share(child, parent, share_with_parent)`` -- the
    paper's mergesort annotation ("the state of child threads is fully
    contained in the parent thread's state") with the coefficient
    adjustable for partial containment.  ``share_with_parent = 0``
    suppresses the annotation entirely.
    """
    if not 0.0 <= share_with_parent <= 1.0:
        raise ValueError("share_with_parent must be in [0, 1]")
    parent = runtime.at_self()
    tids: List[int] = []
    for i, body in enumerate(bodies):
        name = names[i] if names else None
        tid = runtime.at_create(body, name=name)
        if share_with_parent > 0.0:
            runtime.at_share(tid, parent, share_with_parent)
        tids.append(tid)
    for tid in tids:
        yield Join(tid)


def parallel_map(
    runtime: Runtime,
    make_body: Callable[[int], Callable[[], Generator]],
    count: int,
    sibling_overlap: float = 0.0,
    overlap_span: int = 1,
    share_with_parent: float = 0.0,
    name_prefix: str = "map",
) -> Generator:
    """One child per index, with declared sibling overlap, then join all.

    ``sibling_overlap`` is the fraction of a child's state shared with a
    sibling at distance 1; it falls off linearly to zero at distance
    ``overlap_span + 1`` (the photo pattern: "the closer the corresponding
    row numbers, the more prefetched state is reused").
    """
    if not 0.0 <= sibling_overlap <= 1.0:
        raise ValueError("sibling_overlap must be in [0, 1]")
    if overlap_span < 1:
        raise ValueError("overlap_span must be at least 1")
    parent = runtime.at_self()
    tids = [
        runtime.at_create(make_body(i), name=f"{name_prefix}-{i}")
        for i in range(count)
    ]
    if sibling_overlap > 0.0:
        for i, tid in enumerate(tids):
            for distance in range(1, overlap_span + 1):
                q = sibling_overlap * (overlap_span + 1 - distance) / (
                    overlap_span
                )
                q = min(1.0, q)
                if i - distance >= 0:
                    runtime.at_share(tid, tids[i - distance], q)
                    runtime.at_share(tids[i - distance], tid, q)
                if i + distance < count:
                    runtime.at_share(tid, tids[i + distance], q)
                    runtime.at_share(tids[i + distance], tid, q)
    if share_with_parent > 0.0:
        for tid in tids:
            runtime.at_share(tid, parent, share_with_parent)
    for tid in tids:
        yield Join(tid)


class TaskGroup:
    """Imperative spawn/join with the fork-join annotation discipline.

    ::

        def parent():
            group = TaskGroup(runtime)
            group.spawn(work_a)
            group.spawn(work_b, share_with_parent=0.5)
            yield from group.join_all()
    """

    def __init__(self, runtime: Runtime):
        self.runtime = runtime
        self.parent = runtime.at_self()
        self.tids: List[int] = []

    def spawn(
        self,
        body: Callable[[], Generator],
        share_with_parent: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Create a child (annotated toward the parent); returns its tid."""
        if not 0.0 <= share_with_parent <= 1.0:
            raise ValueError("share_with_parent must be in [0, 1]")
        tid = self.runtime.at_create(body, name=name)
        if share_with_parent > 0.0:
            self.runtime.at_share(tid, self.parent, share_with_parent)
        self.tids.append(tid)
        return tid

    def join_all(self) -> Generator:
        """Yield Join events for every spawned child, in spawn order."""
        for tid in self.tids:
            yield Join(tid)

    def __len__(self) -> int:
        return len(self.tids)
