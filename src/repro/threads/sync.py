"""Synchronisation objects: mutexes, semaphores, barriers, conditions.

These implement the blocking vocabulary of Active Threads (section 5).
They are runtime-agnostic: each operation updates the object's state and
returns which threads the runtime must wake; the runtime performs the
actual state transitions and scheduler notifications.  All wait queues are
FIFO, and mutex release hands ownership directly to the first waiter
(avoiding convoys and making runs deterministic).

Unnamed objects are numbered lazily by the :class:`~repro.threads.
runtime.Runtime` that first interprets an event on them (see
``Runtime.register_sync``), never by a class-level counter: per-runtime
numbering keeps auto-generated names -- and with them trace signatures
and diagnostics -- identical no matter how many sync objects earlier
tests or runs created in the same process.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.threads.errors import SyncError
from repro.threads.thread import ActiveThread


class SyncObject:
    """Base for the sync vocabulary: a lazily named, kinded object."""

    #: short kind tag used for auto-generated names ("mutex-3")
    kind = "sync"

    def __init__(self, name: Optional[str] = None):
        self.name = name

    @property
    def label(self) -> str:
        """Display name; stable once a runtime has registered the object."""
        return self.name if self.name is not None else f"{self.kind}(unnamed)"


class Mutex(SyncObject):
    """A blocking mutual-exclusion lock with direct handoff."""

    kind = "mutex"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.owner: Optional[ActiveThread] = None
        self._waiters: Deque[ActiveThread] = deque()

    def acquire(self, thread: ActiveThread) -> bool:
        """Try to take the lock; returns False (and queues) if held."""
        if self.owner is None:
            self.owner = thread
            return True
        if self.owner is thread:
            raise SyncError(f"{thread} re-acquired non-recursive {self.label}")
        self._waiters.append(thread)
        return False

    def release(self, thread: ActiveThread) -> Optional[ActiveThread]:
        """Release the lock; returns the waiter that now owns it, if any."""
        if self.owner is not thread:
            raise SyncError(f"{thread} released {self.label} it does not own")
        if self._waiters:
            self.owner = self._waiters.popleft()
            return self.owner
        self.owner = None
        return None

    @property
    def queue_length(self) -> int:
        """Number of threads blocked on the lock."""
        return len(self._waiters)

    @property
    def waiters(self) -> Tuple[ActiveThread, ...]:
        """The blocked threads in handoff order (read-only snapshot).

        Exposed for analysis observers -- the model checker's FIFO
        handoff property shadows this queue to verify that release hands
        the lock to ``waiters[0]``.
        """
        return tuple(self._waiters)


class Semaphore(SyncObject):
    """A counting semaphore with FIFO wakeup and direct handoff."""

    kind = "sem"

    def __init__(self, count: int = 0, name: Optional[str] = None):
        if count < 0:
            raise ValueError("semaphore count must be non-negative")
        super().__init__(name)
        self.count = count
        self._waiters: Deque[ActiveThread] = deque()

    def wait(self, thread: ActiveThread) -> bool:
        """P: returns False (and queues) when the count is zero."""
        if self.count > 0:
            self.count -= 1
            return True
        self._waiters.append(thread)
        return False

    def post(self) -> Optional[ActiveThread]:
        """V: returns the waiter to wake, if any (count unchanged then --
        the permit is handed straight over)."""
        if self._waiters:
            return self._waiters.popleft()
        self.count += 1
        return None

    @property
    def queue_length(self) -> int:
        """Number of threads blocked in P."""
        return len(self._waiters)

    @property
    def waiters(self) -> Tuple[ActiveThread, ...]:
        """The blocked threads in wakeup order (read-only snapshot)."""
        return tuple(self._waiters)


class Barrier(SyncObject):
    """A cyclic barrier for a fixed number of parties."""

    kind = "barrier"

    def __init__(self, parties: int, name: Optional[str] = None):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        super().__init__(name)
        self.parties = parties
        self._waiters: List[ActiveThread] = []
        self.generation = 0

    def arrive(self, thread: ActiveThread) -> Optional[List[ActiveThread]]:
        """Arrive at the barrier.

        Returns ``None`` if the caller must block, or the list of threads
        to wake (the earlier arrivals) when the caller is the last party --
        the caller itself continues without blocking.
        """
        if len(self._waiters) + 1 < self.parties:
            self._waiters.append(thread)
            return None
        woken = self._waiters
        self._waiters = []
        self.generation += 1
        return woken

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return len(self._waiters)

    @property
    def waiters(self) -> Tuple[ActiveThread, ...]:
        """The blocked parties in arrival order (read-only snapshot)."""
        return tuple(self._waiters)


class Condition(SyncObject):
    """A condition variable used with an external mutex."""

    kind = "cond"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._waiters: Deque[ActiveThread] = deque()

    def add_waiter(self, thread: ActiveThread) -> None:
        """Queue a thread (runtime has already released the mutex)."""
        self._waiters.append(thread)

    def signal(self) -> Optional[ActiveThread]:
        """Pop one waiter (it must reacquire the mutex before resuming)."""
        if self._waiters:
            return self._waiters.popleft()
        return None

    def broadcast(self) -> List[ActiveThread]:
        """Pop all waiters."""
        woken = list(self._waiters)
        self._waiters.clear()
        return woken

    @property
    def queue_length(self) -> int:
        """Number of threads waiting on the condition."""
        return len(self._waiters)

    @property
    def waiters(self) -> Tuple[ActiveThread, ...]:
        """The waiting threads in signal order (read-only snapshot)."""
        return tuple(self._waiters)
