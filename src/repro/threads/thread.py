"""Thread objects and their lifecycle states."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, List, Optional


class ThreadState(Enum):
    """Lifecycle of an Active Thread."""

    READY = "ready"  # runnable, waiting for a processor
    RUNNING = "running"  # dispatched on some cpu
    BLOCKED = "blocked"  # waiting on a sync object or join
    SLEEPING = "sleeping"  # timed sleep (tasks-style wake/touch/block)
    DONE = "done"  # body exhausted


@dataclass
class ThreadStats:
    """Per-thread accounting kept by the runtime."""

    intervals: int = 0  # scheduling intervals executed
    misses: int = 0  # E-cache misses across all intervals
    refs: int = 0
    instructions: int = 0
    migrations: int = 0  # dispatches on a cpu different from the last one
    #: cycles spent READY but undispatched (the fairness/starvation metric
    #: behind the paper's section 7 escape-mechanism discussion)
    wait_cycles: int = 0
    max_wait_cycles: int = 0


class ActiveThread:
    """One user-level thread: an identity plus a generator body.

    ``ready_seq`` increments every time the thread becomes READY; scheduler
    heap entries record the sequence number at insertion so stale entries
    (from a previous readiness episode) can be discarded lazily on pop --
    the standard lazy-deletion idiom that keeps heap operations O(log n).
    """

    def __init__(self, tid: int, body: Generator, name: Optional[str] = None):
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.body = body
        self.state = ThreadState.READY
        self.ready_seq = 0
        self.joiners: List["ActiveThread"] = []
        self.last_cpu: Optional[int] = None
        self.stats = ThreadStats()
        #: machine time at which the thread last became READY (for wait
        #: accounting); None while not waiting
        self.ready_at: Optional[int] = None
        #: set when the thread is blocked inside CondWait and must reacquire
        #: the mutex before resuming
        self.pending_mutex = None
        #: the object this thread is blocked on (mutex/semaphore/barrier/
        #: condition, or the ActiveThread it joined); None while not
        #: blocked.  Feeds wait-for cycle reporting in DeadlockError.
        self.waiting_on = None
        #: set by fault injection: the thread spins (yields) forever
        #: without advancing its body, modelling a livelocked thread
        self.fault_livelocked = False

    @property
    def alive(self) -> bool:
        """Whether the thread has not finished."""
        return self.state is not ThreadState.DONE

    def mark_ready(self) -> None:
        """Transition to READY, invalidating older scheduler entries."""
        self.state = ThreadState.READY
        self.ready_seq += 1

    def __repr__(self) -> str:
        return f"<{self.name} tid={self.tid} {self.state.value}>"
