"""Active Threads: the user-level thread runtime (paper section 5, [32][33]).

Threads are "units of (possibly parallel) execution with independent
lifetimes and separate stacks that share the address space"; they block on
the usual synchronisation objects (mutexes, semaphores, barriers,
condition variables) and are scheduled by a pluggable policy.

In this reproduction a thread body is a Python generator that *yields*
:mod:`repro.threads.events` describing its memory and synchronisation
activity; the :class:`repro.threads.runtime.Runtime` interprets those
events against the simulated machine.  This is the Python-feasible
equivalent of Shade forwarding the instruction stream to the paper's cache
simulator -- and the only way to study cache locality from CPython, whose
GIL and lack of placement control make real threads useless for the
purpose (see DESIGN.md).
"""

from repro.threads.errors import DeadlockError, SyncError, ThreadError
from repro.threads.events import (
    Acquire,
    BarrierWait,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Fetch,
    Join,
    Release,
    SemPost,
    SemWait,
    Sleep,
    Touch,
    Yield,
    touch_region,
)
from repro.threads.runtime import Runtime
from repro.threads.sync import Barrier, Condition, Mutex, Semaphore
from repro.threads.thread import ActiveThread, ThreadState

__all__ = [
    "Acquire",
    "ActiveThread",
    "Barrier",
    "BarrierWait",
    "Compute",
    "CondBroadcast",
    "CondSignal",
    "CondWait",
    "Condition",
    "DeadlockError",
    "Fetch",
    "Join",
    "Mutex",
    "Release",
    "Runtime",
    "SemPost",
    "SemWait",
    "Semaphore",
    "Sleep",
    "SyncError",
    "ThreadError",
    "ThreadState",
    "Touch",
    "Yield",
    "touch_region",
]
