"""Events a thread body yields to the runtime.

A thread body is a generator; each yielded event describes one atomic
chunk of activity.  Memory events (:class:`Touch`, :class:`Fetch`) carry
*virtual* cache-line numbers; :class:`Compute` carries an instruction
count; the remaining events are the synchronisation vocabulary of Active
Threads (mutexes, semaphores, barriers, condition variables, join, yield,
and timed sleep -- the last used by the `tasks` benchmark's
wake/touch/block cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.machine.address import Region
    from repro.threads.sync import Barrier, Condition, Mutex, Semaphore


class Event:
    """Marker base class for thread events."""

    __slots__ = ()


@dataclass(frozen=True)
class Touch(Event):
    """Read or write a batch of data lines (virtual line numbers)."""

    lines: np.ndarray
    write: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "lines", np.asarray(self.lines, dtype=np.int64)
        )


@dataclass(frozen=True)
class Fetch(Event):
    """Fetch a batch of instruction lines (for workloads modelling code)."""

    lines: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "lines", np.asarray(self.lines, dtype=np.int64)
        )


@dataclass(frozen=True)
class Compute(Event):
    """Execute ``instructions`` non-memory instructions."""

    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instruction count must be non-negative")


@dataclass(frozen=True)
class Acquire(Event):
    """Acquire a mutex (blocks if held)."""

    mutex: "Mutex"


@dataclass(frozen=True)
class Release(Event):
    """Release a held mutex."""

    mutex: "Mutex"


@dataclass(frozen=True)
class SemWait(Event):
    """Semaphore P operation (blocks at zero)."""

    semaphore: "Semaphore"


@dataclass(frozen=True)
class SemPost(Event):
    """Semaphore V operation."""

    semaphore: "Semaphore"


@dataclass(frozen=True)
class BarrierWait(Event):
    """Wait at a barrier until all parties arrive."""

    barrier: "Barrier"


@dataclass(frozen=True)
class CondWait(Event):
    """Release ``mutex``, wait on ``condition``, reacquire before resuming."""

    condition: "Condition"
    mutex: "Mutex"


@dataclass(frozen=True)
class CondSignal(Event):
    """Wake one waiter of a condition variable."""

    condition: "Condition"


@dataclass(frozen=True)
class CondBroadcast(Event):
    """Wake all waiters of a condition variable."""

    condition: "Condition"


@dataclass(frozen=True)
class Join(Event):
    """Block until thread ``tid`` finishes (no-op if it already has)."""

    tid: int


@dataclass(frozen=True)
class Yield(Event):
    """Voluntarily end the scheduling interval; stay runnable."""


@dataclass(frozen=True)
class Sleep(Event):
    """Block for ``cycles`` simulated cycles, then become runnable."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("sleep duration must be positive")


def touch_region(
    region: "Region",
    write: bool = False,
    start_line: int = 0,
    count: Optional[int] = None,
) -> Touch:
    """A :class:`Touch` sweeping (part of) a region, line by line."""
    if count is None:
        count = region.num_lines - start_line
    return Touch(lines=region.line_slice(start_line, count), write=write)
