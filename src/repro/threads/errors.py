"""Exceptions raised by the thread runtime."""

from __future__ import annotations


class ThreadError(Exception):
    """Base class for thread-runtime errors."""


class SyncError(ThreadError):
    """Misuse of a synchronisation object (e.g. releasing an unowned
    mutex, waiting on a condition without holding its mutex)."""


class DeadlockError(ThreadError):
    """Every cpu is idle, no thread is runnable or sleeping, yet live
    threads remain blocked."""

    def __init__(self, blocked: list) -> None:
        names = ", ".join(str(t) for t in blocked)
        super().__init__(f"deadlock: blocked threads remain: {names}")
        self.blocked = blocked
