"""Exceptions raised by the thread runtime, and wait-for diagnostics.

The error hierarchy doubles as the runtime's hardening surface: the
fault-injection campaign (see :mod:`repro.faults`) asserts that every
induced failure surfaces as one of these typed, diagnosable exceptions
rather than a silent hang or a corrupted result.
"""

from __future__ import annotations

from typing import List, Optional


class ThreadError(Exception):
    """Base class for thread-runtime errors."""


class SyncError(ThreadError):
    """Misuse of a synchronisation object (e.g. releasing an unowned
    mutex, waiting on a condition without holding its mutex)."""


class StepBudgetExceeded(ThreadError):
    """``Runtime.run`` hit its ``max_events`` budget before completion.

    A subclass of :class:`ThreadError` so legacy callers that caught the
    generic error keep working; the watchdog catches this specifically to
    checkpoint progress and decide between extending the budget and
    declaring a livelock.  The runtime is left in a consistent state and
    ``run`` may be called again with a larger budget to continue.
    """

    def __init__(self, max_events: int) -> None:
        super().__init__(f"exceeded max_events={max_events}")
        self.max_events = max_events


class InvariantViolation(ThreadError):
    """An internal runtime/scheduler invariant does not hold.

    Raised by :class:`repro.faults.invariants.InvariantChecker` and
    :meth:`repro.sched.heap.PriorityHeap.validate`.  Any occurrence is a
    bug in the runtime or scheduler, never in the workload: sharing
    annotations and counter readings are hints and must not be able to
    break these invariants no matter how corrupted they are.
    """


class HeapCorruption(InvariantViolation):
    """A scheduler priority heap's structural invariants do not hold.

    Raised by :meth:`repro.sched.heap.PriorityHeap.validate` when the
    array violates the heap order, an entry's sort key disagrees with its
    recorded priority, or the per-thread entry-count back-map drifts from
    the heap contents.  A subclass of :class:`InvariantViolation` (and
    never a bare ``AssertionError``) so callers can catch heap corruption
    specifically while generic invariant handling keeps working.
    """


class WatchdogTimeout(ThreadError):
    """The watchdog gave up on a run: livelock, starvation, or an
    exhausted step budget.

    Carries the watchdog's checkpoint history and the partial results of
    threads that did complete, so a hung run still yields a diagnosis
    instead of nothing.
    """

    def __init__(
        self,
        message: str,
        checkpoints: Optional[List[dict]] = None,
        partial=None,
        stalled: Optional[list] = None,
    ) -> None:
        super().__init__(message)
        #: progress snapshots taken at every step-budget boundary
        self.checkpoints = checkpoints or []
        #: result signature entries (name, refs, instructions, state) of
        #: every thread, including the ones that DID finish
        self.partial = partial if partial is not None else ()
        #: threads that made no progress across the final budget window
        self.stalled = stalled or []


def find_wait_cycle(blocked: list) -> Optional[list]:
    """Follow thread -> resource -> owner links to find a wait-for cycle.

    Each blocked thread records what it waits on (``thread.waiting_on``):
    a mutex (whose ``owner`` is the next thread in the chain), another
    thread (a join target), or an ownerless object (semaphore, barrier,
    condition) at which the chain ends.  Returns the threads forming the
    first cycle found, in chain order, or ``None`` when no ownership cycle
    exists (e.g. a barrier that will never fill).
    """
    for start in blocked:
        chain: list = []
        seen: dict = {}
        thread = start
        while thread is not None:
            resource = getattr(thread, "waiting_on", None)
            if resource is None:
                break
            if id(thread) in seen:
                return chain[seen[id(thread)]:]
            seen[id(thread)] = len(chain)
            chain.append(thread)
            if hasattr(resource, "ready_seq"):  # a join target (thread)
                thread = resource
            else:
                thread = getattr(resource, "owner", None)
    return None


def _describe_resource(resource) -> str:
    if hasattr(resource, "ready_seq"):  # an ActiveThread join target
        return f"join({resource.name})"
    name = getattr(resource, "label", None) or getattr(
        resource, "name", repr(resource)
    )
    owner = getattr(resource, "owner", None)
    if owner is not None:
        return f"{name} (held by {owner.name})"
    return name


class DeadlockError(ThreadError):
    """Every cpu is idle, no thread is runnable or sleeping, yet live
    threads remain blocked.

    When the blockage forms an ownership cycle (mutexes and joins), the
    message spells out the actual wait-for chain -- thread -> resource ->
    owner -> ... -> thread -- rather than just listing the casualties.
    """

    def __init__(self, blocked: list, cycle: Optional[list] = None) -> None:
        if cycle:
            hops = []
            for thread in cycle:
                hops.append(thread.name)
                hops.append(_describe_resource(thread.waiting_on))
            hops.append(cycle[0].name)
            message = "deadlock: wait-for cycle: " + " -> ".join(hops)
        else:
            names = ", ".join(str(t) for t in blocked)
            message = f"deadlock: blocked threads remain: {names}"
        super().__init__(message)
        self.blocked = blocked
        #: the threads forming the detected wait-for cycle (None if the
        #: blockage has no ownership cycle, e.g. an unfillable barrier)
        self.cycle = cycle
