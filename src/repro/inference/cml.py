"""A Cache-Miss-Lookaside-style device (after Bershad et al. [5]).

The real CML buffer sits between the cache and memory and records a miss
history at page granularity in a small, fixed-size hardware table.  This
simulation attaches one device per processor E-cache:

- every E-cache miss appends a :class:`PageMissRecord` (page number plus
  the thread the OS last told the device about) to a bounded ring;
- software drains the ring at context switches -- the same moment the
  paper's runtime reads the PICs.

Fixed capacity is the honest hardware constraint: under miss bursts the
ring overwrites its oldest entries and the software sees a *sample* of
the miss stream, so inference built on it must tolerate loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.machine.processor import Processor


@dataclass(frozen=True)
class PageMissRecord:
    """One CML entry: the missing page and the thread running at the time."""

    page: int
    tid: int


class CMLBuffer:
    """Bounded per-processor page-miss history.

    Configured for user-mode misses only (the PCR-style user/supervisor
    selection of section 2.2): supervisor-mode traffic -- the scheduler's
    own data structures -- is invisible, or every thread would appear to
    share the kernel's pages.
    """

    def __init__(self, cpu: Processor, lines_per_page: int, capacity: int = 256,
                 machine=None):
        if capacity <= 0:
            raise ValueError("the device needs at least one entry")
        self.capacity = capacity
        self.lines_per_page = lines_per_page
        self._machine = machine
        self._ring: Deque[PageMissRecord] = deque(maxlen=capacity)
        self._current_tid: Optional[int] = None
        self.recorded = 0
        self.dropped = 0
        cpu.l2.on_install(self._on_miss_lines)

    def set_current_thread(self, tid: Optional[int]) -> None:
        """OS-side: tell the device whose misses it is now seeing."""
        self._current_tid = tid

    def _on_miss_lines(self, plines: np.ndarray) -> None:
        if self._current_tid is None:
            return  # idle / untracked traffic (e.g. setup-phase touches)
        if self._machine is not None and self._machine.kernel_mode:
            return  # supervisor-mode traffic: not monitored
        tid = self._current_tid
        lpp = self.lines_per_page
        for page in np.unique(plines // lpp).tolist():
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(PageMissRecord(int(page), tid))
            self.recorded += 1

    def drain(self) -> List[PageMissRecord]:
        """Software-side: read and clear the ring (context-switch time)."""
        entries = list(self._ring)
        self._ring.clear()
        return entries

    def __len__(self) -> int:
        return len(self._ring)
