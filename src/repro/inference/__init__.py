"""Runtime sharing inference (the paper's section 7 future work).

"It is even more attractive to identify state sharing patterns entirely
at runtime to handle, for instance, the existing unmodified POSIX and
Java Threads application bases.  Bershad et al. suggested the use of a
Cache Miss Lookaside buffer (CML), an inexpensive hardware device placed
between the cache and main memory, to detect conflicts by recording a
miss history at a page granularity [5] ...  perhaps with the use of a
related hardware device combined with the VM techniques, some sharing
patterns could be inferred without user intervention."

This package builds exactly that:

- :mod:`repro.inference.cml` -- a CML-like device attached to each
  processor's E-cache, recording a bounded per-page miss history tagged
  with the thread that was running;
- :mod:`repro.inference.infer` -- an observer that, at context switches,
  correlates threads' page-miss histories and feeds inferred
  ``at_share`` coefficients into the same dependency graph user
  annotations use.

The ablation bench (``bench_ablation_inference.py``) measures how much of
the user-annotation benefit the inference recovers on annotation-driven
workloads, with zero programmer involvement.
"""

from repro.inference.cml import CMLBuffer, PageMissRecord
from repro.inference.infer import SharingInference

__all__ = ["CMLBuffer", "PageMissRecord", "SharingInference"]
