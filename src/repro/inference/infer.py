"""Inferring ``at_share`` coefficients from CML page-miss histories.

The inference keeps a bounded page *signature* per thread -- the set of
pages the CML recently saw it miss on.  At each context switch it drains
the blocking cpu's CML, updates the blocker's signature, and compares it
against the signatures of threads that share at least one page (found
through an inverted page->threads index, so the cost scales with the
pages actually drained, not the thread count).

For two threads a and b with signatures P(a), P(b), the paper's
coefficient q_ab = "the portion of a's state shared with b" is estimated
as ``|P(a) & P(b)| / |P(a)|``, smoothed exponentially across switches to
ride out CML sampling loss.  Estimates above ``min_q`` are written into
the *same* dependency graph user annotations populate, so the unmodified
LFF/CRT machinery consumes them -- "some sharing patterns could be
inferred without user intervention" (section 7).

This is an estimate of *page*-granularity sharing; false sharing within a
page inflates q, which is the known cost of CML granularity the paper
inherits from [5].

A miss-only device has a visibility problem: once one thread reloads a
shared page, its partners hit on it and the sharing never reaches the
CML.  The paper anticipates the fix -- "repeated trial runs with judicial
unmapping of pages at the context switch time may be another viable
alternative for identifying shared pages" -- implemented here as the
*probe*: at each context switch the inference invalidates a small random
sample of just-missed pages, so the next thread to touch them takes a
recordable miss.  ``probe_pages`` bounds the per-switch cost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set

import numpy as np

from repro.inference.cml import CMLBuffer
from repro.threads.runtime import Observer, Runtime


class _Signature:
    """A bounded, recency-ordered page set."""

    def __init__(self, max_pages: int):
        self.max_pages = max_pages
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def add(self, page: int) -> None:
        if page in self._pages:
            self._pages.move_to_end(page)
        else:
            self._pages[page] = None
            if len(self._pages) > self.max_pages:
                self._pages.popitem(last=False)

    def pages(self) -> Set[int]:
        return set(self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages


class SharingInference(Observer):
    """Observer that turns CML histories into dependency-graph edges."""

    def __init__(
        self,
        runtime: Runtime,
        capacity: int = 256,
        signature_pages: int = 64,
        min_q: float = 0.2,
        min_pages: int = 2,
        smoothing: float = 0.5,
        probe_pages: int = 2,
        max_out_degree: int = 8,
        seed: int = 0,
    ):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if probe_pages < 0:
            raise ValueError("probe_pages must be non-negative")
        self.runtime = runtime
        self.signature_pages = signature_pages
        self.min_q = min_q
        self.min_pages = min_pages
        self.smoothing = smoothing
        self.probe_pages = probe_pages
        self.max_out_degree = max_out_degree
        self._rng = np.random.default_rng(seed)
        self.probes = 0
        lpp = runtime.machine.vm.lines_per_page
        self.devices = [
            CMLBuffer(cpu, lpp, capacity=capacity, machine=runtime.machine)
            for cpu in runtime.machine.cpus
        ]
        self._signatures: Dict[int, _Signature] = {}
        # inverted index: page -> tids whose signature holds it
        self._page_owners: Dict[int, Set[int]] = {}
        # smoothed q estimates, (src, dst) -> value
        self._estimates: Dict[tuple, float] = {}
        # peak smoothed estimate ever seen per pair; unlike _estimates
        # this survives _forget, so post-run corroboration (the repair
        # engine) can still see what the estimator believed about
        # threads that have since finished
        self._peak: Dict[tuple, float] = {}
        # last value actually written to the graph, (src, dst) -> value
        self._written: Dict[tuple, float] = {}
        self.edges_written = 0
        runtime.add_observer(self)

    # -- observer hooks --------------------------------------------------------

    def on_dispatch(self, cpu: int, thread) -> None:
        self.devices[cpu].set_current_thread(thread.tid)

    def on_block(self, cpu: int, thread, misses: int, finished: bool) -> None:
        device = self.devices[cpu]
        device.set_current_thread(None)
        records = device.drain()
        touched_pages = set()
        for record in records:
            self._observe(record.tid, record.page)
            touched_pages.add(record.page)
        if finished:
            self._forget(thread.tid)
        else:
            self._update_edges(thread.tid)
        self._probe(cpu, touched_pages)

    def _probe(self, cpu: int, pages: Set[int]) -> None:
        """The paper's "judicial unmapping": invalidate a sampled page so
        the next thread touching it takes a miss the CML can record."""
        if not self.probe_pages or not pages:
            return
        lpp = self.runtime.machine.vm.lines_per_page
        chosen = self._rng.choice(
            sorted(pages), size=min(self.probe_pages, len(pages)),
            replace=False,
        )
        for page in chosen.tolist():
            lines = np.arange(page * lpp, (page + 1) * lpp, dtype=np.int64)
            self.runtime.machine.cpus[cpu].hierarchy.invalidate(lines)
            # the unmap itself costs a TLB shootdown's worth of work
            self.runtime.machine.compute(cpu, 50)
            self.probes += 1

    # -- signature bookkeeping ----------------------------------------------------

    def _observe(self, tid: int, page: int) -> None:
        signature = self._signatures.get(tid)
        if signature is None:
            signature = _Signature(self.signature_pages)
            self._signatures[tid] = signature
        before = len(signature)
        had = page in signature
        signature.add(page)
        if not had:
            self._page_owners.setdefault(page, set()).add(tid)
            if len(signature) == before:  # an old page was evicted
                self._rebuild_owner_entries(tid, signature)

    def _rebuild_owner_entries(self, tid: int, signature: _Signature) -> None:
        current = signature.pages()
        for page, owners in list(self._page_owners.items()):
            if tid in owners and page not in current:
                owners.discard(tid)
                if not owners:
                    del self._page_owners[page]

    def _forget(self, tid: int) -> None:
        signature = self._signatures.pop(tid, None)
        if signature is not None:
            for page in signature.pages():
                owners = self._page_owners.get(page)
                if owners is not None:
                    owners.discard(tid)
                    if not owners:
                        del self._page_owners[page]
        for key in [k for k in self._estimates if tid in k]:
            del self._estimates[key]
        for key in [k for k in self._written if tid in k]:
            del self._written[key]

    # -- edge inference ----------------------------------------------------------

    def _update_edges(self, tid: int) -> None:
        signature = self._signatures.get(tid)
        if signature is None or len(signature) < self.min_pages:
            return
        my_pages = signature.pages()
        # candidates: threads sharing at least one page with us
        candidates: Set[int] = set()
        for page in my_pages:
            candidates |= self._page_owners.get(page, set())
        candidates.discard(tid)
        for other in sorted(candidates):
            other_sig = self._signatures.get(other)
            if other_sig is None or len(other_sig) < self.min_pages:
                continue
            other_pages = other_sig.pages()
            overlap = len(my_pages & other_pages)
            # q_ab: the portion of a's state shared with b, both directions
            self._emit(tid, other, overlap / len(my_pages))
            self._emit(other, tid, overlap / len(other_pages))

    def _emit(self, src: int, dst: int, sample: float) -> None:
        key = (src, dst)
        previous = self._estimates.get(key, 0.0)
        value = (1 - self.smoothing) * previous + self.smoothing * sample
        self._estimates[key] = value
        if value > self._peak.get(key, 0.0):
            self._peak[key] = value
        if value >= self.min_q:
            last = self._written.get(key)
            if last is not None and abs(value - last) < 0.1:
                return  # hysteresis: avoid re-annotating on every switch
            if (
                last is None
                and self.runtime.graph.out_degree(src) >= self.max_out_degree
            ):
                return  # keep O(d) context-switch cost bounded
            src_thread = self.runtime.threads.get(src)
            dst_thread = self.runtime.threads.get(dst)
            if (
                src_thread is None
                or dst_thread is None
                or not src_thread.alive
                or not dst_thread.alive
            ):
                return
            self.runtime.at_share(src, dst, min(1.0, value))
            self._written[key] = value
            self.edges_written += 1

    # -- introspection -----------------------------------------------------------

    def estimate(self, src: int, dst: int) -> float:
        """Current smoothed q estimate for an ordered pair."""
        return self._estimates.get((src, dst), 0.0)

    def final_estimates(self) -> Dict[tuple, float]:
        """Peak smoothed estimate per ordered pair, for corroboration.

        Includes estimates that stayed below ``min_q`` (never written to
        the graph) and pairs whose threads have finished: the repair
        engine cross-checks synthesized fixes against these before
        promoting a suggestion to a patch.
        """
        return dict(self._peak)

    def signature_size(self, tid: int) -> int:
        """Pages currently in a thread's signature."""
        signature = self._signatures.get(tid)
        return 0 if signature is None else len(signature)
